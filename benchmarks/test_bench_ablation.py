"""Ablation benchmarks (beyond the paper's figures).

These sweeps probe the design choices documented in DESIGN.md: the
connection-grid size and the alpha/beta weighting of the scheduling objective.
"""

from repro.experiments.ablation import run_grid_ablation, run_weight_ablation


def test_bench_grid_size_ablation(benchmark, small_settings):
    rows = benchmark.pedantic(
        run_grid_ablation,
        kwargs={"assay": "RA30", "grid_sizes": ((4, 4), (5, 5), (6, 6)), "settings": small_settings},
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Grid-size ablation (RA30) ===")
    print(f"{'grid':<8}{'tE':>6}{'ne':>5}{'nv':>5}{'area':>7}")
    for row in rows:
        print(f"{row.label:<8}{row.execution_time:>6}{row.num_edges:>5}{row.num_valves:>5}{row.compact_area:>7}")

    assert rows, "at least one grid size must be synthesizable"
    # The schedule is independent of the grid, so tE is constant across rows.
    assert len({row.execution_time for row in rows}) == 1


def test_bench_objective_weight_ablation(benchmark, small_settings):
    rows = benchmark.pedantic(
        run_weight_ablation,
        kwargs={"assay": "PCR", "betas": (0.0, 1.0, 20.0), "settings": small_settings},
        rounds=1,
        iterations=1,
    )
    print()
    print("=== Objective-weight ablation (PCR, exact scheduler) ===")
    print(f"{'beta':<10}{'tE':>6}{'gap-time':>10}{'ne':>5}{'nv':>5}")
    for row in rows:
        print(f"{row.label:<10}{row.execution_time:>6}{row.cross_device_gap:>10}{row.num_edges:>5}{row.num_valves:>5}")

    assert len(rows) == 3
    # Objective (6): increasing the storage weight never increases the
    # cross-device gap time it penalizes.
    gaps = [row.cross_device_gap for row in rows]
    assert gaps[0] >= gaps[1] >= gaps[2]


def test_bench_heuristic_router_throughput(benchmark):
    """Micro-benchmark: route a mid-size random assay (placement + routing)."""
    from repro.archsyn.router import HeuristicSynthesizer, SynthesisConfig
    from repro.devices.device import default_device_library
    from repro.graph.generators import RandomAssayConfig, random_assay
    from repro.scheduling.list_scheduler import ListScheduler

    graph = random_assay(RandomAssayConfig(num_operations=40, seed=99))
    library = default_device_library(num_mixers=4)
    schedule = ListScheduler(library).schedule(graph)

    def run():
        return HeuristicSynthesizer(SynthesisConfig(grid_rows=5, grid_cols=5)).synthesize(schedule)

    architecture = benchmark(run)
    assert architecture.validate() == []
