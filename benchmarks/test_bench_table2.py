"""Table 2: scheduling, architectural synthesis and physical design results.

Regenerates every column of the paper's Table 2 (t_E, solver runtime, grid,
n_e, n_v, d_r, d_e, d_p) for the six evaluation assays and prints the table
next to the paper's reference values.
"""

from repro.experiments.table2 import PAPER_TABLE2, format_table2, run_table2


def test_bench_table2_full_flow(benchmark, settings):
    rows = benchmark.pedantic(run_table2, args=(settings,), rounds=1, iterations=1)

    print()
    print("=== Table 2 (measured) ===")
    print(format_table2(rows))
    print()
    print("=== Table 2 (paper reference) ===")
    header = f"{'Assay':<8}{'|O|':>5}{'tE':>7}{'G':>6}{'ne':>5}{'nv':>5}{'dr':>8}{'de':>8}{'dp':>8}"
    print(header)
    for name, ref in PAPER_TABLE2.items():
        print(
            f"{name:<8}{ref['|O|']:>5}{ref['tE']:>7}{ref['G']:>6}{ref['ne']:>5}{ref['nv']:>5}"
            f"{ref['dr']:>8}{ref['de']:>8}{ref['dp']:>8}"
        )

    assert len(rows) == 6
    for row in rows:
        assert row.metrics.execution_time > 0
        assert row.metrics.num_edges > 0
        # The reproduced completion times stay in the same range as the paper.
        assert 0.4 <= row.execution_time_vs_paper() <= 2.5


def test_bench_table2_scheduling_only(benchmark, settings):
    """Scheduling-stage timing in isolation (the paper's t_s column)."""
    from repro.graph.library import assay_by_name
    from repro.synthesis.flow import build_library, _build_scheduler

    def schedule_all():
        makespans = {}
        for name in ("RA30", "IVD", "PCR"):
            config = settings.flow_config(name)
            graph = assay_by_name(name)
            scheduler, _engine = _build_scheduler(config, build_library(config), graph)
            makespans[name] = scheduler.schedule(graph).makespan
        return makespans

    makespans = benchmark.pedantic(schedule_all, rounds=1, iterations=1)
    print()
    print("scheduling-only makespans:", makespans)
    assert all(value > 0 for value in makespans.values())
