"""Fig. 8: edge and valve ratios of the synthesized architectures.

The paper's claim: architectural synthesis keeps only a fraction of the
connection grid's edges/valves (all ratios < 1, half of them close to 0).
"""

from repro.experiments.fig8 import PAPER_FIG8, format_fig8, run_fig8


def test_bench_fig8_edge_valve_ratios(benchmark, settings):
    points = benchmark.pedantic(run_fig8, args=(settings,), rounds=1, iterations=1)

    print()
    print("=== Fig. 8 (measured) ===")
    print(format_fig8(points))
    print()
    print("=== Fig. 8 (paper, read off the bar chart) ===")
    for name, ref in PAPER_FIG8.items():
        print(f"{name:<8} edge {ref['edge']:.2f}  valve {ref['valve']:.2f}")

    assert len(points) == 6
    for point in points:
        # The headline property of Fig. 8 holds: every ratio is below 1.
        assert point.edge_ratio < 1.0
        assert point.valve_ratio < 1.0
    # The small assays use far less of the grid than the large ones, matching
    # the paper's "half of them are even close to 0" observation.
    small = [p for p in points if p.assay in ("IVD", "PCR")]
    large = [p for p in points if p.assay in ("RA100", "RA70", "CPA")]
    assert max(p.edge_ratio for p in small) < min(p.edge_ratio for p in large)
