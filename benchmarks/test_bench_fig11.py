"""Fig. 11: execution snapshots of the synthesized RA30 chip.

The paper shows two snapshots: (a) a transportation path moving a sample into
a channel segment for caching, and (b) a later transport running while the
cached sample stays in its segment.  The benchmark replays the synthesized
RA30 chip and extracts equivalent snapshots.
"""

from repro.experiments.fig11 import run_fig11


def test_bench_fig11_execution_snapshots(benchmark, small_settings):
    snapshots = benchmark.pedantic(
        run_fig11, kwargs={"settings": small_settings, "assay": "RA30"}, rounds=1, iterations=1
    )

    print()
    for snap in snapshots:
        print(f"=== Fig. 11 snapshot at t = {snap.time} s "
              f"({snap.storing_segments} caching, {snap.transporting_segments} transporting) ===")
        print(snap.ascii_art)
        print()

    assert len(snapshots) == 2
    # Snapshot (a): at least one segment is caching a fluid sample.
    assert snapshots[0].storing_segments >= 1
    # Snapshot (b): a transport happens while a sample stays cached elsewhere.
    assert snapshots[1].storing_segments >= 1
    assert snapshots[1].transporting_segments >= 1
