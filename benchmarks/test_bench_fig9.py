"""Fig. 9: storage-aware optimization vs. execution-time-only scheduling.

Compares execution time, channel segments and valves for RA30 / IVD / PCR
under the two scheduling objectives, as in the paper's Fig. 9.
"""

from repro.experiments.fig9 import format_fig9, run_fig9


def test_bench_fig9_storage_optimization(benchmark, small_settings):
    rows = benchmark.pedantic(run_fig9, args=(small_settings,), rounds=1, iterations=1)

    print()
    print("=== Fig. 9 (measured) ===")
    print(format_fig9(rows))

    assert [row.assay for row in rows] == ["RA30", "IVD", "PCR"]
    for row in rows:
        # Execution times stay comparable (the paper accepts a slight increase
        # for RA30 in exchange for the resource savings).
        assert row.execution_time_overhead <= 1.25
    # In aggregate the storage-aware flow never needs more channel resources,
    # and at least one assay improves strictly.
    assert sum(r.edges_with_storage for r in rows) <= sum(r.edges_only for r in rows)
    assert sum(r.valves_with_storage for r in rows) <= sum(r.valves_only for r in rows)
    assert any(r.edge_saving > 0 or r.valve_saving > 0 for r in rows)
