"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation and
prints the corresponding rows/series, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section in one go.  The ``fast`` settings are
used so the full suite completes in a few minutes on a laptop; pass
``--paper-scale`` to use the exact engines with paper-like time limits.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentSettings


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks with the exact (slow) engines instead of the fast settings",
    )


@pytest.fixture(scope="session")
def settings(request) -> ExperimentSettings:
    fast = not request.config.getoption("--paper-scale")
    return ExperimentSettings(fast=fast)


@pytest.fixture(scope="session")
def small_settings(settings) -> ExperimentSettings:
    return ExperimentSettings(fast=settings.fast, assays=["RA30", "IVD", "PCR"])
