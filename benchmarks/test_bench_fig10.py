"""Fig. 10: distributed channel storage vs. dedicated storage unit.

For every assay the execution-time and valve ratios of the proposed
architecture to the conventional dedicated-storage baseline are reported;
values below 1 mean the distributed-channel-storage chip wins.  The paper
reports an execution-time reduction of up to 28% (RA100).
"""

from repro.experiments.fig10 import format_fig10, run_fig10


def test_bench_fig10_dedicated_storage_comparison(benchmark, settings):
    rows = benchmark.pedantic(run_fig10, args=(settings,), rounds=1, iterations=1)

    print()
    print("=== Fig. 10 (measured) ===")
    print(format_fig10(rows))
    best = min(rows, key=lambda r: r.execution_time_ratio)
    print(f"best execution-time improvement: {best.assay} "
          f"{best.execution_improvement:.0%} (paper: RA100 ~28%)")

    assert len(rows) == 6
    for row in rows:
        # The proposed flow is never slower than the dedicated-storage baseline.
        assert row.execution_time_ratio <= 1.0
    # The storage-heavy assays benefit substantially (double-digit speed-up),
    # reproducing the shape of the paper's Fig. 10.
    assert best.execution_improvement >= 0.10
