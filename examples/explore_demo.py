"""Design-space exploration walkthrough (the ``repro.explore`` API).

Demonstrates the subsystem the ``repro explore`` CLI subcommand wraps:

1. a declarative :class:`ExplorationSpec` over two workload families (the
   paper's PCR and a seeded synthetic assay) and three config axes;
2. a cold exhaustive exploration — watch the scheduling-solve counter stay
   *below* the number of evaluated configs (stage sharing at work);
3. the successive-halving strategy pruning Pareto-dominated configs after
   paying only for the cheap scheduling stage;
4. resume: re-running against the persisted state file skips every
   already-evaluated candidate.

Run with::

    PYTHONPATH=src python examples/explore_demo.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.batch.cache import ResultCache
from repro.explore import (
    ExplorationEngine,
    ExplorationSpec,
    format_exploration_report,
    is_dominance_consistent,
)

SPEC_PAYLOAD = {
    "name": "explore-demo",
    "workloads": [
        {"assay": "PCR"},
        {"generator": "random_assay", "num_operations": 20, "seed": 7,
         "id": "ra20"},
    ],
    "axes": {
        "num_mixers": [2, 3],
        "pitch": [5.0, 6.0, 7.0],
        "storage_segment_length": [3.0, 4.0],
    },
    # The list scheduler keeps the demo solver-free and instant.
    "base": {"ilp_operation_limit": 0},
    "objectives": ["makespan", "storage_cells", "device_count"],
    "strategy": "exhaustive",
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-explore-demo-"))
    cache_dir = workdir / "cache"
    state_path = workdir / "explore_state.json"

    # 1-2. Cold exhaustive exploration: 24 candidates, but only
    # 2 workloads × 2 mixer counts = 4 scheduling solves.
    spec = ExplorationSpec.from_payload(dict(SPEC_PAYLOAD))
    engine = ExplorationEngine(
        spec, cache=ResultCache(cache_dir=cache_dir), state_path=state_path
    )
    report = engine.run()
    print("=== cold exhaustive exploration ===")
    print(format_exploration_report(report))
    assert report.scheduling_solves < report.evaluated
    assert is_dominance_consistent(report.frontier.entries(), spec.objectives)

    # 3. Successive halving on a fresh cache: the cheap scheduling pass
    # covers all 24 candidates, then only the cheap-nondominated survivors
    # pay for architecture synthesis and physical design.
    halving = ExplorationSpec.from_payload(
        dict(SPEC_PAYLOAD, name="explore-demo-halving",
             strategy="successive-halving")
    )
    halving_report = ExplorationEngine(halving, cache=ResultCache()).run()
    print("\n=== successive halving (fresh cache) ===")
    print(format_exploration_report(halving_report))
    assert halving_report.evaluated < halving_report.candidate_count

    # 4. Resume: same spec, same state file — nothing is re-evaluated.
    resumed = ExplorationEngine(
        ExplorationSpec.from_payload(dict(SPEC_PAYLOAD)),
        cache=ResultCache(cache_dir=cache_dir),
        state_path=state_path,
    ).run()
    print("\n=== resumed run (same state file) ===")
    print(format_exploration_report(resumed))
    assert resumed.resumed and resumed.scheduling_solves == 0

    print(f"\nstate + cache kept under {workdir}")


if __name__ == "__main__":
    main()
