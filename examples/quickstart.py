"""Quickstart: synthesize a biochip for the PCR mixing stage.

Runs the complete flow of the paper — scheduling & binding with storage
minimization, architectural synthesis with distributed channel storage, and
iterative physical compression — on the classic PCR sequencing graph, then
prints a human-readable report and writes an SVG of the chip layout.

Run with:  python examples/quickstart.py
"""

from pathlib import Path

from repro import FlowConfig, synthesize
from repro.graph import build_pcr
from repro.physical import layout_to_svg
from repro.synthesis.report import result_report


def main() -> None:
    # 1. Describe the assay: the PCR mixing stage (8 samples, 7 mixing ops).
    assay = build_pcr(mix_time=80)

    # 2. Configure the flow: two mixers, 10 s transport time, a 4x4
    #    connection grid and completion-time-priority objective weights.
    config = FlowConfig(num_mixers=2, transport_time=10, grid_rows=4, grid_cols=4)

    # 3. Run schedule -> architecture -> layout.
    result = synthesize(assay, config)

    # 4. Inspect the result.
    print(result_report(result))
    print()
    print("schedule (operation, device, start, end):")
    for op_id, device, start, end in result.schedule.as_table():
        print(f"  {op_id:<4} {device:<8} {start:>5} {end:>5}")

    storage = result.architecture.storage_segments()
    print()
    if storage:
        print("fluid samples cached in channel segments:")
        for edge, (start, end) in storage:
            a, b = sorted(edge)
            print(f"  segment {a}--{b}: [{start} s, {end} s)")
    else:
        print("this schedule needed no intermediate storage")

    # 5. Export the compact layout as an SVG drawing.
    out = Path(__file__).with_name("quickstart_chip.svg")
    layout_to_svg(result.physical.compact_layout, out)
    print(f"\ncompact layout written to {out}")


if __name__ == "__main__":
    main()
