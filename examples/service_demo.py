"""Demo of the long-running synthesis service (``repro serve``).

Launches a real server subprocess on an ephemeral port, then talks to it
with the blocking :class:`repro.service.ServiceClient` exactly the way an
evaluation harness would:

1. submit a small batch manifest (``POST /jobs``) and poll it to
   completion — every stage *runs*;
2. submit a pitch sweep over the same assay — scheduling and architecture
   are *replayed* from the server's hot cache, only the physical-design
   points execute;
3. gracefully shut the server down (``POST /shutdown``), which flushes the
   cache to disk, then restart it on the same ``--cache-dir`` and resubmit
   the original manifest — all three stages replay from the persisted
   artifacts, demonstrating restart resume.

Run with:  PYTHONPATH=src python examples/service_demo.py
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import ServiceClient  # noqa: E402

MANIFEST = {"jobs": [{"assay": "PCR", "config": {"ilp_operation_limit": 0}}]}
SWEEP = {
    "assay": "PCR",
    "base": {"ilp_operation_limit": 0},
    "sweep": {"pitch": [5.0, 6.0, 7.0]},
}


def start_server(cache_dir: Path) -> "tuple[subprocess.Popen, ServiceClient]":
    """Launch ``repro serve`` on an ephemeral port and wait until it is up."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(cache_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # The first stdout line announces the bound port.
    line = process.stdout.readline()
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"unexpected server banner: {line!r}")
    client = ServiceClient(port=int(match.group(1)))
    for _ in range(100):
        try:
            client.healthz()
            break
        except OSError:
            time.sleep(0.05)
    return process, client


def show(label: str, status: dict) -> None:
    stages = status.get("summary", {}).get("stages", {})
    trail = ", ".join(
        f"{name}: {row['ran']} ran / {row['replayed']} replayed / {row['shared']} shared"
        for name, row in stages.items()
    )
    print(f"{label}: {status['status']}" + (f"  [{trail}]" if trail else ""))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as tmp:
        cache_dir = Path(tmp) / "cache"

        print("== starting server ==")
        process, client = start_server(cache_dir)
        try:
            print("healthz:", json.dumps(client.healthz()["jobs"]))

            print("\n== 1. cold batch: every stage runs ==")
            job = client.submit(MANIFEST)
            show(f"job {job}", client.wait(job))

            print("\n== 2. warm sweep: schedule + archsyn replayed from the hot cache ==")
            sweep_job = client.submit(SWEEP)
            show(f"job {sweep_job}", client.wait(sweep_job))
            result = client.result(sweep_job)
            for row in result["jobs"]:
                print(f"   {row['id']}: compact dims {row['metrics']['dp']}")

            print("\n== 3. graceful shutdown (flushes artifacts to disk) ==")
            client.shutdown()
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.terminate()
            process.wait(timeout=30)

        print("\n== 4. restarted server resumes from the persisted stages ==")
        process, client = start_server(cache_dir)
        try:
            job = client.submit(MANIFEST)
            show(f"job {job}", client.wait(job))
            client.shutdown()
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.terminate()
            process.wait(timeout=30)
    print("\ndemo complete")


if __name__ == "__main__":
    main()
