"""Regenerate the paper's complete evaluation section from the command line.

Prints Table 2, Fig. 8, Fig. 9 and Fig. 10 with the same rows/series as the
paper (measured on this reproduction's engines).  Use ``--full`` to run the
exact engines with longer solver time limits.

Run with:  python examples/paper_evaluation.py [--full]
"""

import argparse

from repro.experiments import ExperimentSettings, run_fig8, run_fig9, run_fig10, run_table2
from repro.experiments.fig8 import format_fig8
from repro.experiments.fig9 import format_fig9
from repro.experiments.fig10 import format_fig10
from repro.experiments.table2 import format_table2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the exact engines with paper-like time limits")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel workers for the assay syntheses (default 1; "
                        "see examples/batch_evaluation.py for the full batch-engine flow)")
    args = parser.parse_args()

    settings = ExperimentSettings(fast=not args.full, max_workers=max(1, args.workers))

    print("=" * 72)
    print("Table 2: scheduling, architectural synthesis and physical design")
    print("=" * 72)
    print(format_table2(run_table2(settings)))

    print()
    print("=" * 72)
    print("Fig. 8: edge / valve ratios versus the full connection grid")
    print("=" * 72)
    print(format_fig8(run_fig8(settings)))

    small = ExperimentSettings(fast=settings.fast, assays=["RA30", "IVD", "PCR"],
                               max_workers=settings.max_workers)
    print()
    print("=" * 72)
    print("Fig. 9: execution-time-only vs. execution-time + storage objective")
    print("=" * 72)
    print(format_fig9(run_fig9(small)))

    print()
    print("=" * 72)
    print("Fig. 10: distributed channel storage vs. dedicated storage unit")
    print("=" * 72)
    rows = run_fig10(settings)
    print(format_fig10(rows))
    best = min(rows, key=lambda r: r.execution_time_ratio)
    print(f"\nlargest execution-time improvement: {best.assay} "
          f"({best.execution_improvement:.0%}; the paper reports ~28% for RA100)")


if __name__ == "__main__":
    main()
