"""Transport or store?  Distributed channel storage vs. a dedicated storage unit.

Reproduces the paper's core comparison (Fig. 10) on a single assay of your
choice: the same storage-aware schedule is realized once with distributed
channel storage (the proposed architecture) and once against a conventional
dedicated storage unit whose single port queues simultaneous accesses.

Run with:  python examples/dedicated_vs_distributed.py [assay]
           (assay defaults to RA30; any of RA100, RA70, CPA, RA30, IVD, PCR)
"""

import sys

from repro import FlowConfig, synthesize
from repro.graph import assay_by_name
from repro.storagebaseline import DedicatedStorageRetiming, compare_with_dedicated_storage
from repro.scheduling.transport import peak_storage_demand


def main() -> None:
    assay_name = sys.argv[1] if len(sys.argv) > 1 else "RA30"
    graph = assay_by_name(assay_name)
    config = FlowConfig.paper_defaults_for(assay_name)
    result = synthesize(graph, config)

    comparison = compare_with_dedicated_storage(result.schedule, result.architecture)
    retimed = DedicatedStorageRetiming().retime(result.schedule)

    print(f"=== {assay_name}: distributed channel storage vs. dedicated storage unit ===")
    print(f"operations: {len(graph.device_operations())}, "
          f"peak simultaneous storage demand: {peak_storage_demand(result.schedule)} samples")
    print()
    print(f"{'':32}{'distributed':>14}{'dedicated':>14}")
    print(f"{'execution time (s)':32}{comparison.proposed_execution_time:>14}"
          f"{comparison.baseline_execution_time:>14}")
    print(f"{'valves (switches + storage)':32}{comparison.proposed_valves:>14}"
          f"{comparison.baseline_valves:>14}")
    print(f"{'channel segments':32}{result.architecture.num_edges:>14}"
          f"{comparison.baseline.num_edges:>14}")
    print()
    print(f"execution-time ratio : {comparison.execution_time_ratio:.2f} "
          f"({comparison.execution_time_improvement:.0%} faster with channel caching)")
    print(f"valve ratio          : {comparison.valve_ratio:.2f}")
    print()
    print("why the dedicated unit loses:")
    print(f"  * every cached sample makes a round trip to the unit "
          f"({retimed.stored_samples} samples in this schedule)")
    print(f"  * its port serializes accesses — total queueing delay "
          f"{retimed.total_queueing_delay} s")
    print(f"  * the unit itself needs {comparison.baseline.storage_unit_valves} extra valves "
          f"for {comparison.baseline.storage_cells} cells")


if __name__ == "__main__":
    main()
