"""Replay a synthesized chip and print execution snapshots (paper Fig. 11).

Synthesizes the RA30 random assay, replays the resulting chip with the
discrete-event simulator, and renders ASCII snapshots of the moments when a
fluid sample is cached in a channel segment while other transports continue.

Run with:  python examples/snapshot_replay.py
"""

from repro import FlowConfig, synthesize
from repro.graph import assay_by_name
from repro.simulation import ChipSimulator, render_snapshot_ascii


def main() -> None:
    graph = assay_by_name("RA30")
    result = synthesize(graph, FlowConfig.paper_defaults_for("RA30"))

    simulator = ChipSimulator(result.schedule, result.architecture)
    simulation = simulator.run()
    print(f"replayed {simulation.total_transports} transports and "
          f"{simulation.total_storage_intervals} caching intervals "
          f"over {simulation.makespan} s — conflicts: {len(simulation.problems)}")

    # Pick the first caching interval and show the chip before, during and
    # right after it (the Fig. 11 style of view).
    storage_windows = sorted(window for _edge, window in result.architecture.storage_segments())
    if not storage_windows:
        print("this schedule needed no channel storage; nothing to snapshot")
        return
    start, end = storage_windows[0]
    for time in (max(0, start - 5), (start + end) // 2, min(simulation.makespan, end + 5)):
        snapshot = simulator.snapshot(time)
        print()
        print(render_snapshot_ascii(snapshot))
        for line in snapshot.describe()[1:]:
            print("   " + line)

    busiest = sorted(
        simulation.segment_utilization().items(), key=lambda item: item[1], reverse=True
    )[:5]
    print()
    print("busiest channel segments (fraction of the makespan in use):")
    for edge, utilization in busiest:
        a, b = sorted(edge)
        print(f"  {a}--{b}: {utilization:.0%}")


if __name__ == "__main__":
    main()
