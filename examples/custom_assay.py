"""Define a custom assay protocol, save it to JSON and synthesize a chip.

The scenario is a small drug-screening protocol: two drug candidates are each
mixed with a cell sample, incubated products are combined with a reporter
reagent, and each mixture is optically read out.  The example shows

* how to build a sequencing graph programmatically,
* how to persist/reload it as JSON (the on-disk protocol format),
* how to pick a device library with both mixers and detectors, and
* how to query storage requirements and device utilization of the result.

Run with:  python examples/custom_assay.py
"""

from pathlib import Path

from repro import FlowConfig, synthesize
from repro.graph import SequencingGraph, Operation, OperationType, load_graph, save_graph
from repro.scheduling import binding_summary
from repro.scheduling.transport import peak_storage_demand, storage_requirements
from repro.synthesis.report import result_report


def build_screening_assay() -> SequencingGraph:
    graph = SequencingGraph(name="drug-screen")
    graph.add_input("cells_a", label="cell sample A")
    graph.add_input("cells_b", label="cell sample B")
    graph.add_input("drug_1", label="drug candidate 1")
    graph.add_input("drug_2", label="drug candidate 2")
    graph.add_input("reporter", label="reporter reagent")

    # Stage 1: expose each cell sample to each drug candidate.
    exposures = []
    for cells in ("cells_a", "cells_b"):
        for drug in ("drug_1", "drug_2"):
            op_id = f"mix_{cells[-1]}_{drug[-1]}"
            graph.add_mix(op_id, duration=90, label=f"expose {cells} to {drug}")
            graph.add_edge(cells, op_id)
            graph.add_edge(drug, op_id)
            exposures.append(op_id)

    # Stage 2: add the reporter reagent to every exposure product.
    reported = []
    for exposure in exposures:
        op_id = f"report_{exposure}"
        graph.add_mix(op_id, duration=60, label=f"add reporter to {exposure}")
        graph.add_edge(exposure, op_id)
        graph.add_edge("reporter", op_id)
        reported.append(op_id)

    # Stage 3: optical readout of every reported mixture.
    for mixture in reported:
        op_id = f"read_{mixture}"
        graph.add_operation(Operation(op_id, OperationType.DETECT, 30, label=f"read {mixture}"))
        graph.add_edge(mixture, op_id)
    return graph


def main() -> None:
    assay = build_screening_assay()

    # Persist the protocol and reload it — the JSON file is the interchange
    # format a wet-lab user would author or export.
    protocol_path = Path(__file__).with_name("drug_screen_protocol.json")
    save_graph(assay, protocol_path)
    assay = load_graph(protocol_path)
    print(f"protocol with {len(assay.device_operations())} operations saved to {protocol_path}")

    config = FlowConfig(
        num_mixers=3,
        num_detectors=1,
        transport_time=10,
        grid_rows=5,
        grid_cols=5,
    )
    result = synthesize(assay, config)

    print()
    print(result_report(result))
    print()
    print("device utilization:")
    for line in binding_summary(result.schedule):
        print("  " + line)

    requirements = storage_requirements(result.schedule)
    print()
    print(f"intermediate products cached in channels: {len(requirements)} "
          f"(at most {peak_storage_demand(result.schedule)} at the same time)")
    for req in requirements:
        print(f"  {req.sample.sample_id}: cached for {req.duration} s")


if __name__ == "__main__":
    main()
