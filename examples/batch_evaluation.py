"""The paper evaluation as ONE parallel batch, replacing the serial loop.

``examples/paper_evaluation.py`` regenerates the paper's tables and figures
by synthesizing each assay one after another.  This example produces the
same per-assay results through the batch engine instead:

* all jobs (the six Table 2 assays plus the Fig. 9 time-only variants) are
  described up front and fanned out over worker processes;
* results land in a content-addressed cache, so running this script twice
  with ``--cache-dir`` finishes the second time without a single solver
  invocation;
* the report aggregates per-job makespan, grid size and wall-clock stats.

Run with:  python examples/batch_evaluation.py [--workers N] [--cache-dir DIR]
"""

import argparse

from repro.batch import BatchSynthesisEngine, ResultCache, format_batch_report
from repro.experiments import ExperimentSettings
from repro.experiments.common import PAPER_ASSAY_ORDER, SMALL_ASSAY_ORDER, assay_job


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="process fan-out for cache misses (default 4)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist results here; a re-run becomes pure cache hits")
    parser.add_argument("--full", action="store_true",
                        help="use the exact engines with paper-like time limits")
    args = parser.parse_args()

    settings = ExperimentSettings(fast=not args.full)

    # The whole evaluation, declared as data: six storage-aware syntheses
    # (Table 2 / Fig. 8 / Fig. 10) plus the three time-only runs of Fig. 9.
    jobs = [assay_job(name, settings) for name in PAPER_ASSAY_ORDER]
    jobs += [assay_job(name, settings, storage_aware=False) for name in SMALL_ASSAY_ORDER]

    cache = ResultCache(cache_dir=args.cache_dir)
    engine = BatchSynthesisEngine(max_workers=args.workers, cache=cache)
    report = engine.run(jobs)

    print(format_batch_report(report))
    print()
    print(f"total makespan across the batch: {report.total_makespan} s")
    hits, lookups = cache.stats.hits, cache.stats.lookups
    if hits == lookups and lookups:
        print("warm cache: every job was served without running a solver")


if __name__ == "__main__":
    main()
