"""The paper evaluation as ONE parallel batch, replacing the serial loop.

``examples/paper_evaluation.py`` regenerates the paper's tables and figures
by synthesizing each assay one after another.  This example produces the
same per-assay results through the stage-granular batch engine instead:

* all jobs (the six Table 2 assays plus the Fig. 9 time-only variants) are
  described up front and fanned out over worker processes;
* every stage's artifact lands in a content-addressed cache, so running
  this script twice with ``--cache-dir`` finishes the second time without a
  single solver invocation;
* the report aggregates per-job makespan, grid size, wall-clock stats and
  the per-stage ran/replayed/shared breakdown.

After the evaluation the script demonstrates a **warm sweep**: a pitch ×
channel-spacing grid over PCR.  Those knobs only feed the physical-design
stage, so the sweep reuses the schedule and architecture the evaluation
just computed — the stage lines show zero scheduling solves, however many
grid points there are (the CLI equivalent is ``repro sweep spec.json``).

Run with:  python examples/batch_evaluation.py [--workers N] [--cache-dir DIR]
"""

import argparse

from repro.batch import (
    BatchSynthesisEngine,
    ResultCache,
    expand_sweep,
    format_batch_report,
)
from repro.experiments import ExperimentSettings
from repro.experiments.common import PAPER_ASSAY_ORDER, SMALL_ASSAY_ORDER, assay_job


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4,
                        help="process fan-out for cache misses (default 4)")
    parser.add_argument("--cache-dir", default=None,
                        help="persist results here; a re-run becomes pure cache hits")
    parser.add_argument("--full", action="store_true",
                        help="use the exact engines with paper-like time limits")
    args = parser.parse_args()

    settings = ExperimentSettings(fast=not args.full)

    # The whole evaluation, declared as data: six storage-aware syntheses
    # (Table 2 / Fig. 8 / Fig. 10) plus the three time-only runs of Fig. 9.
    jobs = [assay_job(name, settings) for name in PAPER_ASSAY_ORDER]
    jobs += [assay_job(name, settings, storage_aware=False) for name in SMALL_ASSAY_ORDER]

    cache = ResultCache(cache_dir=args.cache_dir)
    engine = BatchSynthesisEngine(max_workers=args.workers, cache=cache)
    report = engine.run(jobs)

    print(format_batch_report(report))
    print()
    print(f"total makespan across the batch: {report.total_makespan} s")
    hits, lookups = cache.stats.hits, cache.stats.lookups
    if hits == lookups and lookups:
        print("warm cache: every job was served without running a solver")

    # Warm sweep: the grid varies only physical-design knobs, so every point
    # replays the schedule + architecture computed for PCR above and only the
    # layout stage runs (look for "stage schedule: 0 ran" in the report).
    base = settings.flow_config("PCR").to_dict()
    sweep_jobs = expand_sweep({
        "assay": "PCR",
        "id": "PCR-sweep",
        "base": {k: v for k, v in base.items()
                 if k not in ("pitch", "min_channel_spacing")},
        "sweep": {"pitch": [4.0, 5.0, 6.0], "min_channel_spacing": [1.0, 2.0]},
    })
    print()
    print(f"warm sweep: {len(sweep_jobs)} physical-design points over PCR")
    print(format_batch_report(engine.run(sweep_jobs)))


if __name__ == "__main__":
    main()
