"""Setuptools shim.

All project metadata lives in ``pyproject.toml`` (PEP 621, including the
package layout and the ``highs`` extra carrying scipy); this file only
exists so that ``pip install -e .`` also works on environments whose
setuptools/pip lack PEP 660 editable-wheel support (no ``wheel`` package
installed).
"""

from setuptools import setup

setup()
