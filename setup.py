"""Setuptools entry point.

The pyproject.toml carries the project metadata; this file exists so that
``pip install -e .`` also works on environments whose setuptools/pip lack
PEP 660 editable-wheel support (no ``wheel`` package installed).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Synthesis of flow-based microfluidic biochips with distributed "
        "channel storage (DAC 2017 reproduction)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
