"""Benchmark telemetry: the ``repro bench`` subcommand.

Runs the small benchmark fixtures (RA30 / IVD / PCR by default, the same
assays the golden regression pins cover) cold through the batch engine,
times a tiny design-space exploration (the ``repro explore`` hot path), and
writes a machine-readable ``BENCH_9.json`` so the performance trajectory of
the repository has data points a CI job can collect and compare across
commits:

* per-experiment wall time and makespan,
* per-stage solver invocations (the in-process counters of
  :mod:`repro.synthesis.pipeline` — cache replays excluded by design),
* which solver backend produced each exact stage, whether the portfolio
  had to fall back, and whether the solve consumed a warm start,
* the exploration smoke's wall time, candidate counts, and frontier size,
* an *anytime* branch-and-bound probe: IVD at ``--solver
  branch-and-bound`` under a deliberately tiny time budget, recording the
  makespan the warm-started backend delivers within it — the quantity the
  warm-start work moves (the seed backend returned a makespan of 520 at
  any budget; the warm-started one returns the optimal 280 immediately),
* a two-replica throughput probe: an in-process cache daemon plus two
  synthesis-service replicas on the ``shared`` cache backend, each running
  one of two overlapping solver-free PCR pitch sweeps — recording combined
  jobs/s and the total number of scheduling solves the pair performed
  (exactly one: the pitch axis never touches the schedule stage, so
  cross-process single-flight must let one replica's solve serve both),
* a verify-throughput probe: trials/s of the vectorized fault-free and
  masked fault-path Monte-Carlo kernels on a solver-free PCR schedule,
  each against the scalar reference engine (``REPRO_MC_SCALAR=1``)
  measured in the same run — with a byte-identity check between the fast
  and scalar reports, so throughput can never be bought with a changed
  number,
* an instrumentation-overhead probe: the golden trio run cold and
  solver-free through the batch engine, timed in aggregated samples with
  and without an installed trace recorder (modes interleaved, best-of per
  side — load spikes never survive a minimum), recording each assay's
  span summaries and the aggregate overhead percentage the flight
  recorder costs (CI asserts it stays under 3%),
* a ``delta`` section against the most recent previous ``BENCH_*.json``
  found next to the output file, so a regression is visible in the payload
  itself, not only after downloading two artifacts — including per-assay
  schedule-stage wall times, the B&B probe's speedup over the previous
  file's IVD schedule stage, and the verify probe's in-run speedups.

The file name carries the PR sequence number of the benchmark format
(``BENCH_9``) rather than a timestamp, so CI artifact uploads of different
commits are directly comparable — and the repository commits each sequence
point, making the checked-in ``BENCH_9.json`` the trajectory's next
recorded entry.  The payload also embeds :data:`repro.keys.KEY_VERSION` — a
bump there invalidates every cache, so wall-time regressions across a bump
are expected and the comparison tooling can tell the two apart.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.batch.cache import ResultCache
from repro.batch.engine import BatchSynthesisEngine
from repro.batch.jobs import BatchJob
from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.keys import KEY_VERSION
from repro.synthesis.config import FlowConfig
from repro.synthesis.pipeline import reset_stage_invocations, stage_invocations

#: The small fixtures: cheap enough for every CI run, and exactly the
#: assays whose results the golden regression tests pin.
DEFAULT_ASSAYS = ("RA30", "IVD", "PCR")

#: Format version of the BENCH_*.json payload (independent of the file
#: name, which tracks the PR that introduced or last evolved the
#: telemetry).  v2 added the exploration smoke and the delta section; v3
#: added ``warm_start_used`` per stage, the anytime branch-and-bound probe
#: (``bb_probe``), and schedule-stage wall times in the delta; v4 added the
#: two-replica shared-cache throughput record (``replica``) and a first
#: (stage-timing) Monte-Carlo verification probe; v5 reshapes
#: ``verify_probe`` into a throughput probe: trials/s of the vectorized
#: fault-free and masked fault kernels against the scalar reference engine
#: measured in the same run, surfaced as ``delta.verify_probe``; v6 adds
#: the instrumentation-overhead probe (``obs_probe``): the golden trio
#: traced vs untraced, interleaved and best-of-three, with the traced
#: runs' span summaries embedded and the aggregate overhead surfaced as
#: ``delta.obs_probe``.
BENCH_FORMAT = 6

#: Time budget of the anytime branch-and-bound probe.  Deliberately tiny:
#: the probe measures solution *quality under a budget*, not proof time —
#: pure interval-propagation B&B cannot close IVD's optimality proof (the
#: resource contention that forces the 280 makespan is invisible to
#: interval bounds), but the warm-started search returns the optimum as its
#: incumbent from the first node, so any budget suffices to collect it.
BB_PROBE_TIME_LIMIT_S = 0.1

#: The tiny exploration the bench times: two workload families × four
#: configs, solver-free (list scheduler + heuristic synthesis) so the smoke
#: measures the exploration machinery, not an ILP.
EXPLORE_SMOKE_SPEC: Dict[str, Any] = {
    "name": "bench-explore-smoke",
    "workloads": [
        {"assay": "PCR"},
        {"generator": "random_assay", "num_operations": 12, "seed": 5, "id": "ra12"},
    ],
    "axes": {"num_mixers": [2, 3], "pitch": [5.0, 6.0]},
    "base": {"ilp_operation_limit": 0},
    "objectives": ["makespan", "storage_cells", "device_count"],
    "strategy": "successive-halving",
}

#: The two overlapping pitch sweeps of the two-replica throughput probe:
#: six points each, three shared.  Solver-free (``ilp_operation_limit: 0``)
#: so the probe measures cache/claim machinery and replica plumbing, not an
#: ILP — and pitch-only, so the whole pair of sweeps contains exactly one
#: distinct scheduling problem.
REPLICA_SWEEP_PITCHES = (
    [5.0, 6.0, 7.0, 8.0, 9.0, 10.0],
    [8.0, 9.0, 10.0, 11.0, 12.0, 13.0],
)

#: Trial counts of the Monte-Carlo verify-throughput probe: the
#: vectorized fault-free path is timed over 4096 uniform-jitter trials and
#: the masked fault path over 1024 fault-injected trials, each against the
#: scalar reference engine (``REPRO_MC_SCALAR=1``) measured in the same
#: run — a relative quantity, robust to runner speed.
VERIFY_PROBE_FAULT_FREE_TRIALS = 4096
VERIFY_PROBE_FAULT_TRIALS = 1024

#: Speedup floors the CI bench job (and the committed-trajectory tests)
#: assert on the verify-throughput probe.
VERIFY_PROBE_FAULT_FREE_FLOOR = 10.0
VERIFY_PROBE_FAULT_FLOOR = 3.0

#: Ceiling the CI bench job asserts on the instrumentation-overhead
#: probe's aggregate ``overhead_pct``: the flight recorder must cost the
#: golden trio less than this, measured traced-vs-untraced in the same
#: run with the two modes interleaved (best-of per side, so a load spike
#: on a shared runner cannot masquerade as tracing overhead).
OBS_PROBE_OVERHEAD_CEILING_PCT = 3.0

#: Timed samples per side (traced / untraced) of the overhead probe, and
#: how many times each sample runs the whole assay list back to back.
#: One sample is big enough (tens of milliseconds) that timer jitter is
#: negligible against it, and taking the *minimum* over samples discards
#: load spikes entirely — the instrumentation cost is an additive term
#: present even in the fastest sample, so the minimum never hides it.
OBS_PROBE_SAMPLES = 5
OBS_PROBE_REPS = 5

#: Measurement attempts of the overhead probe.  The true cost is well
#: under 1%, far below the scheduler noise of a busy runner, so a
#: reading above the ceiling is re-measured rather than trusted: noise
#: does not reproduce, a genuine regression (the ceiling sits at ~8x
#: the measured span cost) fails every attempt.
OBS_PROBE_ATTEMPTS = 5


def build_bench_parser() -> argparse.ArgumentParser:
    """Argument surface of the ``repro bench`` subcommand."""
    from repro.cli import _add_solver_argument

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the small benchmark fixtures cold and write "
        "machine-readable telemetry (wall time, solver invocations, backend "
        "used per stage) to a JSON file for the perf trajectory.",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_9.json"),
        help="output JSON path (default BENCH_9.json)",
    )
    parser.add_argument(
        "--assays", nargs="+", default=list(DEFAULT_ASSAYS),
        choices=sorted(PAPER_ASSAYS),
        help=f"assays to benchmark (default {' '.join(DEFAULT_ASSAYS)})",
    )
    parser.add_argument(
        "--no-explore", action="store_true",
        help="skip the design-space-exploration smoke timing",
    )
    parser.add_argument(
        "--no-bb-probe", action="store_true",
        help="skip the anytime branch-and-bound probe",
    )
    parser.add_argument(
        "--no-replica", action="store_true",
        help="skip the two-replica shared-cache throughput probe",
    )
    parser.add_argument(
        "--no-verify-probe", action="store_true",
        help="skip the Monte-Carlo verification probe",
    )
    parser.add_argument(
        "--no-obs-probe", action="store_true",
        help="skip the instrumentation-overhead probe",
    )
    parser.add_argument(
        "--bb-time-limit", type=float, default=BB_PROBE_TIME_LIMIT_S,
        help="time budget of the anytime branch-and-bound probe in seconds "
        f"(default {BB_PROBE_TIME_LIMIT_S})",
    )
    parser.add_argument(
        "--time-limit", type=float, default=20.0,
        help="ILP time limit per solve in seconds (default 20, the golden-"
        "regression setting)",
    )
    _add_solver_argument(parser)
    return parser


def _bench_config(assay: str, time_limit_s: float, solver: Optional[str]) -> FlowConfig:
    """Paper-default config for ``assay`` under the bench time limit."""
    from repro.synthesis.config import apply_solver_override

    config = FlowConfig.paper_defaults_for(assay)
    config.ilp_time_limit_s = time_limit_s
    config.archsyn_time_limit_s = time_limit_s
    return apply_solver_override(config, solver)


def run_experiment(assay: str, time_limit_s: float, solver: Optional[str]) -> Dict[str, Any]:
    """Run one assay cold and return its telemetry record.

    Every experiment gets a fresh engine and a fresh memory-only cache so
    the numbers measure real solves, never replays; the stage-invocation
    counters are snapshotted around the run to prove it.
    """
    job = BatchJob(assay, assay_by_name(assay), _bench_config(assay, time_limit_s, solver))
    engine = BatchSynthesisEngine(max_workers=1, cache=ResultCache())
    reset_stage_invocations()
    start = time.perf_counter()
    report = engine.run([job])
    wall_time_s = time.perf_counter() - start
    invocations = stage_invocations()
    outcome = report.outcomes[0]
    record: Dict[str, Any] = {
        "assay": assay,
        "ok": outcome.ok,
        "error": outcome.error,
        "wall_time_s": round(wall_time_s, 4),
        "solver_invocations": invocations,
        "stages": [
            {
                "stage": execution.stage,
                "action": execution.action,
                "wall_time_s": round(execution.wall_time_s, 4),
                "backend": execution.backend,
                "fallback_used": execution.fallback_used,
                "warm_start_used": execution.warm_start_used,
            }
            for execution in outcome.stages
        ],
    }
    schedule_wall = _schedule_stage_wall(record)
    if schedule_wall is not None:
        record["schedule_stage_s"] = schedule_wall
    if outcome.ok:
        metrics = outcome.metrics()
        record["makespan"] = metrics.execution_time
        record["scheduler_engine"] = metrics.scheduler_engine
        record["synthesis_engine"] = metrics.synthesis_engine
    return record


def _schedule_stage_wall(record: Any) -> Optional[float]:
    """Wall time of a record's executed schedule stage, if present."""
    if not isinstance(record, dict):
        return None
    for row in record.get("stages") or []:
        if (
            isinstance(row, dict)
            and row.get("stage") == "schedule"
            and row.get("action") == "ran"
            and isinstance(row.get("wall_time_s"), (int, float))
        ):
            return float(row["wall_time_s"])
    return None


def run_bb_probe(time_limit_s: float) -> Dict[str, Any]:
    """The anytime branch-and-bound probe: IVD under a tiny budget.

    The dependency-free branch-and-bound backend cannot *prove* IVD's
    optimality — its interval-propagation bound never sees the device
    contention that forces the 280 makespan, so the proof tree is
    exponential no matter how fast a node is.  What the vectorized,
    warm-started backend *can* do — and the seed could not at any budget —
    is deliver the optimal schedule immediately: the list-heuristic warm
    start seeds the incumbent, so the solve returns makespan 280 within
    whatever budget it is given.  The probe pins exactly that: solution
    quality at a budget a whole sweep can afford, an order of magnitude
    below one exact HiGHS solve.
    """
    record = run_experiment("IVD", time_limit_s, "branch-and-bound")
    record["solver"] = "branch-and-bound"
    record["time_limit_s"] = time_limit_s
    return record


def run_explore_smoke() -> Dict[str, Any]:
    """Time the tiny cold exploration and return its telemetry record.

    A fresh memory-only cache, so the smoke pays its real solves — the
    point is tracking the exploration machinery's overhead (candidate
    enumeration, cheap triage, frontier updates) along the trajectory.
    """
    from repro.explore import ExplorationEngine, ExplorationSpec

    spec = ExplorationSpec.from_payload(dict(EXPLORE_SMOKE_SPEC))
    engine = ExplorationEngine(spec, cache=ResultCache())
    start = time.perf_counter()
    try:
        report = engine.run()
    except Exception as exc:  # noqa: BLE001 - telemetry must not crash bench
        return {
            "name": spec.name,
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "wall_time_s": round(time.perf_counter() - start, 4),
        }
    # The smoke is a fixed, solver-free fixture: *any* failed candidate
    # means breakage, so ok demands a clean sweep, not merely "not all
    # candidates failed".
    return {
        "name": spec.name,
        "ok": report.evaluated > 0 and report.failed == 0,
        "error": None,
        "wall_time_s": round(time.perf_counter() - start, 4),
        "candidates": report.candidate_count,
        "evaluated": report.evaluated,
        "failed": report.failed,
        "frontier_size": len(report.frontier),
        "scheduling_solves": report.scheduling_solves,
        "strategy": spec.strategy,
    }


def _count_schedule_runs(result_payload: Any) -> int:
    """Schedule-stage solves actually *executed* inside one result payload.

    Counts the per-job stage rows with ``stage == "schedule"`` and
    ``action == "ran"`` — replayed and shared rows are exactly the ones the
    cache saved, so they do not count.
    """
    if not isinstance(result_payload, dict):
        return 0
    runs = 0
    for job in result_payload.get("jobs") or []:
        if _schedule_stage_wall(job) is not None:
            runs += 1
    return runs


def run_replica_throughput() -> Dict[str, Any]:
    """Two-replica throughput probe: overlapping sweeps over a shared cache.

    Boots an in-process :class:`~repro.service.CacheDaemon` plus two
    :class:`~repro.service.SynthesisService` replicas on ``--cache-backend
    shared`` (all on ephemeral ports and daemon threads), submits one of the
    two overlapping solver-free PCR pitch sweeps to each replica, waits for
    both, and records the combined throughput in jobs/s.  The quantity the
    record pins is ``scheduling_solves``: both sweeps agree on every
    schedule-stage input, so cross-process single-flight must leave exactly
    *one* schedule row marked ``ran`` across both result payloads — one
    replica solved it, the daemon's claim protocol handed it to the other.
    Any failure (daemon, replica, job, or count mismatch) is reported in the
    record, never raised: telemetry must not crash the bench.
    """
    import asyncio
    import threading

    from repro.service import (
        CacheDaemon,
        CacheDaemonConfig,
        ServiceClient,
        ServiceConfig,
        SynthesisService,
    )

    start = time.perf_counter()

    def _failure(error: str) -> Dict[str, Any]:
        return {
            "ok": False,
            "error": error,
            "replicas": 2,
            "wall_time_s": round(time.perf_counter() - start, 4),
        }

    daemon = CacheDaemon(CacheDaemonConfig(port=0))
    daemon_thread = threading.Thread(
        target=lambda: asyncio.run(daemon.serve_forever()),
        name="bench-cache-daemon",
        daemon=True,
    )
    daemon_thread.start()
    services: List[Any] = []
    try:
        if not daemon.ready.wait(timeout=10.0):
            return _failure("cache daemon did not become ready")
        for index in range(2):
            service = SynthesisService(
                ServiceConfig(
                    port=0,
                    workers=2,
                    cache_backend="shared",
                    cache_addr=f"127.0.0.1:{daemon.bound_port}",
                )
            )
            thread = threading.Thread(
                target=lambda s=service: asyncio.run(s.serve_forever()),
                name=f"bench-replica-{index}",
                daemon=True,
            )
            thread.start()
            services.append((service, thread))
            if not service.ready.wait(timeout=10.0):
                return _failure(f"replica {index} did not become ready")
        clients = [ServiceClient(port=service.bound_port) for service, _ in services]
        try:
            job_ids = [
                client.submit(
                    {
                        "assay": "PCR",
                        "base": {"ilp_operation_limit": 0},
                        "sweep": {"pitch": pitches},
                    }
                )
                for client, pitches in zip(clients, REPLICA_SWEEP_PITCHES)
            ]
            statuses = [
                client.wait(job_id, timeout=120.0)
                for client, job_id in zip(clients, job_ids)
            ]
            wall_time_s = time.perf_counter() - start
            for status in statuses:
                if status.get("status") != "done":
                    return _failure(
                        f"replica job ended {status.get('status')}: {status.get('error')}"
                    )
            results = [
                client.result(job_id) for client, job_id in zip(clients, job_ids)
            ]
        except Exception as exc:  # noqa: BLE001 - telemetry must not crash bench
            return _failure(f"{type(exc).__name__}: {exc}")
        jobs = sum(len(result.get("jobs") or []) for result in results)
        solves = sum(_count_schedule_runs(result) for result in results)
        expected_jobs = sum(len(pitches) for pitches in REPLICA_SWEEP_PITCHES)
        ok = jobs == expected_jobs and solves == 1
        return {
            "ok": ok,
            "error": None
            if ok
            else f"expected {expected_jobs} jobs / 1 scheduling solve, "
            f"got {jobs} jobs / {solves} solves",
            "replicas": 2,
            "jobs": jobs,
            "wall_time_s": round(wall_time_s, 4),
            "jobs_per_s": round(jobs / wall_time_s, 2) if wall_time_s > 0 else None,
            "scheduling_solves": solves,
            "overlap_points": len(
                set(REPLICA_SWEEP_PITCHES[0]) & set(REPLICA_SWEEP_PITCHES[1])
            ),
        }
    finally:
        for service, thread in services:
            try:
                ServiceClient(port=service.bound_port, timeout=5.0).shutdown()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            thread.join(timeout=10.0)
        daemon.request_shutdown_threadsafe()
        daemon_thread.join(timeout=10.0)


def run_verify_probe() -> Dict[str, Any]:
    """Verify-throughput probe: vectorized vs scalar Monte-Carlo replay.

    Times the :class:`~repro.simulation.montecarlo.MonteCarloEngine`
    directly (no synthesis pipeline around it) on a solver-free PCR
    schedule, twice per configuration: once with the default fast kernels
    and once with the scalar reference forced via ``REPRO_MC_SCALAR=1``.
    Two configurations cover both fast paths — 4096 fault-free
    uniform-jitter trials (the vectorized path) and 1024 fault-injected
    trials (the masked path).  Each row records trials/s for both engines
    and their ratio; because the baseline is measured in the same run on
    the same machine, the speedup is meaningful on any runner.  ``ok``
    additionally demands that each fast report's ``as_dict()`` payload is
    byte-identical to the scalar engine's — the probe must never buy
    throughput with a changed number.
    """
    import os

    from repro.devices.device import default_device_library
    from repro.graph.library import build_pcr
    from repro.scheduling.list_scheduler import ListScheduler, ListSchedulerConfig
    from repro.simulation.montecarlo import MonteCarloConfig, MonteCarloEngine

    start = time.perf_counter()

    def _one_run(schedule, library, config, scalar: bool):
        saved = os.environ.pop("REPRO_MC_SCALAR", None)
        if scalar:
            os.environ["REPRO_MC_SCALAR"] = "1"
        try:
            engine = MonteCarloEngine(schedule, library, config)
            t0 = time.perf_counter()
            report = engine.run()
            return report, time.perf_counter() - t0
        finally:
            os.environ.pop("REPRO_MC_SCALAR", None)
            if saved is not None:
                os.environ["REPRO_MC_SCALAR"] = saved

    def _timed_pair(schedule, library, config):
        # Two untimed warmups per engine (first-touch page faults, lazy
        # imports, allocator arenas — the vectorized path takes a few runs
        # to plateau), then three timed rounds with the engines
        # *interleaved* — fast, scalar, fast, scalar, ... — so a load
        # spike on a shared runner lands on both sides of the ratio
        # instead of skewing whichever engine happened to be running.
        # Best-of-three per side: the probe is a ratio, not a soak.
        for _ in range(2):
            _one_run(schedule, library, config, scalar=False)
            _one_run(schedule, library, config, scalar=True)
        fast_best: Optional[float] = None
        scalar_best: Optional[float] = None
        fast_report = scalar_report = None
        for _ in range(3):
            fast_report, elapsed = _one_run(schedule, library, config, scalar=False)
            fast_best = elapsed if fast_best is None else min(fast_best, elapsed)
            scalar_report, elapsed = _one_run(schedule, library, config, scalar=True)
            scalar_best = (
                elapsed if scalar_best is None else min(scalar_best, elapsed)
            )
        return fast_report, fast_best, scalar_report, scalar_best

    try:
        library = default_device_library(num_mixers=2)
        schedule = ListScheduler(
            library, ListSchedulerConfig(transport_time=10)
        ).schedule(build_pcr())
        probes = {
            "fault_free": MonteCarloConfig(
                trials=VERIFY_PROBE_FAULT_FREE_TRIALS,
                seed=11,
                jitter="uniform",
                jitter_spread=0.2,
                wash_time=12,
            ),
            "fault": MonteCarloConfig(
                trials=VERIFY_PROBE_FAULT_TRIALS,
                seed=11,
                jitter="uniform",
                jitter_spread=0.2,
                fault_rate=0.3,
                channel_fault_rate=0.1,
                wash_time=12,
            ),
        }
        record: Dict[str, Any] = {
            "deterministic_makespan": schedule.makespan,
        }
        ok = True
        error: Optional[str] = None
        for name, config in probes.items():
            fast_report, fast_s, scalar_report, scalar_s = _timed_pair(
                schedule, library, config
            )
            identical = fast_report.as_dict() == scalar_report.as_dict()
            record[name] = {
                "trials": config.trials,
                "trials_per_s": round(config.trials / fast_s, 1),
                "scalar_trials_per_s": round(config.trials / scalar_s, 1),
                "speedup": round(scalar_s / fast_s, 2),
                "report_identical": identical,
                "makespan_p50": fast_report.makespan_p50,
                "makespan_p99": fast_report.makespan_p99,
                "recovery_rate": round(fast_report.recovery_rate, 6),
            }
            if not identical:
                ok = False
                error = f"{name}: vectorized and scalar reports differ"
            elif fast_report.makespan_p50 < schedule.makespan:
                ok = False
                error = f"{name}: sampled median below the deterministic makespan"
    except Exception as exc:  # noqa: BLE001 - telemetry must not crash bench
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "wall_time_s": round(time.perf_counter() - start, 4),
        }
    record["ok"] = ok
    record["error"] = error
    record["wall_time_s"] = round(time.perf_counter() - start, 4)
    return record


def run_obs_probe(
    assays: List[str], time_limit_s: float, solver: Optional[str]
) -> Dict[str, Any]:
    """Instrumentation-overhead probe: benchmarked assays traced vs untraced.

    Runs the benchmarked assays (the golden trio RA30 / IVD / PCR under
    the defaults the CI assertion pins) cold through the batch engine in
    aggregated timed samples — one sample runs the whole assay list
    :data:`OBS_PROBE_REPS` times back to back — once per sample under an
    installed :class:`~repro.obs.TraceRecorder` (every span the flight
    recorder emits on this path is live: batch, stage, cache-tier) and
    once without (the zero-cost-when-disabled path).  The runs are
    *solver-free* (``ilp_operation_limit = 0``): the ILP inner loop
    carries no instrumentation at all, so including a ~1 s HiGHS solve
    would only add ±% wall-time noise around an unchanged additive cost —
    the solver-free pipeline is the instrumented surface itself, which
    makes this the *conservative* measurement (the same absolute span
    cost divided by the smallest wall time it can be hidden in).

    :data:`OBS_PROBE_SAMPLES` samples per side, modes interleaved in
    alternating order so drift lands on both sides, best-of per side:
    a load spike never survives a minimum, while the instrumentation
    cost — an additive term present even in the fastest sample — always
    does.  The record embeds each assay's per-stage span summaries (the
    same summaries ``--json`` outputs carry) and the aggregate
    ``overhead_pct`` over the two minima — the number the CI bench job
    asserts below :data:`OBS_PROBE_OVERHEAD_CEILING_PCT`.  A reading
    above the ceiling is re-measured (up to :data:`OBS_PROBE_ATTEMPTS`
    attempts, every reading kept in ``attempt_overheads_pct``): the true
    cost sits ~8x below the ceiling, so an over-ceiling reading on a
    busy runner is scheduler noise, which does not reproduce — while a
    genuine regression fails every attempt.  ``ok`` demands identical
    makespans between the two modes: instrumentation must never change a
    result, only observe it.
    """
    from repro.obs import TraceRecorder, install_recorder
    from repro.obs.trace import uninstall_recorder

    start = time.perf_counter()

    def _config(assay: str) -> FlowConfig:
        config = _bench_config(assay, time_limit_s, solver)
        config.ilp_operation_limit = 0
        return config

    def _one_run(assay: str):
        job = BatchJob(assay, assay_by_name(assay), _config(assay))
        engine = BatchSynthesisEngine(max_workers=1, cache=ResultCache())
        outcome = engine.run([job]).outcomes[0]
        makespan = outcome.metrics().execution_time if outcome.ok else None
        return outcome.ok, makespan

    def _sample(traced: bool):
        token = install_recorder(TraceRecorder()) if traced else None
        makespans: Dict[str, Any] = {}
        all_ok = True
        t0 = time.perf_counter()
        try:
            for _ in range(OBS_PROBE_REPS):
                for assay in assays:
                    run_ok, makespan = _one_run(assay)
                    all_ok = all_ok and run_ok
                    makespans[assay] = makespan
        finally:
            if token is not None:
                uninstall_recorder(token)
        return time.perf_counter() - t0, makespans, all_ok

    record: Dict[str, Any] = {
        "samples": OBS_PROBE_SAMPLES,
        "reps": OBS_PROBE_REPS,
        "solver_free": True,
        "assays": {},
    }
    ok = True
    error: Optional[str] = None
    try:
        # One dedicated traced run per assay collects the span summaries
        # (and doubles as warmup: imports, allocator arenas).
        for assay in assays:
            rec = TraceRecorder()
            token = install_recorder(rec)
            try:
                run_ok, makespan = _one_run(assay)
            finally:
                uninstall_recorder(token)
            ok = ok and run_ok
            record["assays"][assay] = {
                "makespan": makespan,
                "spans": rec.stage_summaries(),
            }
        _sample(traced=False)  # untraced warmup
        attempts: List[Any] = []
        for _ in range(OBS_PROBE_ATTEMPTS):
            traced_best: Optional[float] = None
            untraced_best: Optional[float] = None
            traced_makespans: Dict[str, Any] = {}
            untraced_makespans: Dict[str, Any] = {}
            for index in range(OBS_PROBE_SAMPLES):
                # Alternate which mode goes first so slow machine drift
                # lands on both sides of the ratio instead of one.
                order = (True, False) if index % 2 == 0 else (False, True)
                for traced in order:
                    elapsed, makespans, all_ok = _sample(traced)
                    ok = ok and all_ok
                    if traced:
                        traced_makespans = makespans
                        traced_best = (
                            elapsed
                            if traced_best is None
                            else min(traced_best, elapsed)
                        )
                    else:
                        untraced_makespans = makespans
                        untraced_best = (
                            elapsed
                            if untraced_best is None
                            else min(untraced_best, elapsed)
                        )
            overhead = (
                round((traced_best / untraced_best - 1.0) * 100.0, 2)
                if traced_best and untraced_best
                else None
            )
            attempts.append(overhead)
            if overhead is not None and overhead < OBS_PROBE_OVERHEAD_CEILING_PCT:
                break
        if traced_makespans != untraced_makespans:
            ok = False
            error = (
                f"traced makespans {traced_makespans} != "
                f"untraced {untraced_makespans}"
            )
        record["traced_best_s"] = round(traced_best or 0.0, 4)
        record["untraced_best_s"] = round(untraced_best or 0.0, 4)
        record["overhead_pct"] = attempts[-1]
        record["attempt_overheads_pct"] = attempts
        record["overhead_ceiling_pct"] = OBS_PROBE_OVERHEAD_CEILING_PCT
    except Exception as exc:  # noqa: BLE001 - telemetry must not crash bench
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "wall_time_s": round(time.perf_counter() - start, 4),
        }
    if ok and error is None and not all(
        row["spans"] for row in record["assays"].values()
    ):
        ok = False
        error = "a traced run produced no span summaries"
    record["ok"] = ok
    record["error"] = error
    record["wall_time_s"] = round(time.perf_counter() - start, 4)
    return record


def previous_bench_file(out: Path) -> Optional[Path]:
    """The most recent earlier ``BENCH_*.json`` next to ``out``, if any.

    "Earlier" means a lower sequence number than the output file's own, so
    running the current bench never diffs against a *future* format.  An
    output name that does not match ``BENCH_<n>.json`` has no position in
    the sequence, so it gets no baseline at all (rather than guessing one
    and possibly diffing against a newer format); files next to ``out``
    that do not match the pattern are likewise ignored.
    """
    pattern = re.compile(r"BENCH_(\d+)\.json$")
    own = pattern.fullmatch(out.name)
    if own is None:
        return None
    found: List[Any] = []
    for path in out.parent.glob("BENCH_*.json"):
        if path.name == out.name:
            continue
        match = pattern.fullmatch(path.name)
        if not match:
            continue
        sequence = int(match.group(1))
        if sequence >= int(own.group(1)):
            continue
        found.append((sequence, path))
    return max(found)[1] if found else None


def _experiment_walls(payload: Dict[str, Any]) -> Optional[Dict[str, float]]:
    """Assay → wall time of a payload, or ``None`` when malformed."""
    experiments = payload.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        return None
    walls: Dict[str, float] = {}
    for record in experiments:
        if not isinstance(record, dict):
            return None
        assay, wall = record.get("assay"), record.get("wall_time_s")
        if not isinstance(assay, str) or not isinstance(wall, (int, float)):
            return None
        walls[assay] = float(wall)
    return walls


def bench_delta(payload: Dict[str, Any], previous_path: Path) -> Optional[Dict[str, Any]]:
    """Compare this run's payload against a previous ``BENCH_*.json``.

    Returns ``{"against", "wall_time_s", "experiments": {assay: {...}}}``
    with signed differences (new − old).  The headline ``wall_time_s`` sums
    only the assays *present on both sides* — never ``totals.wall_time_s``
    (its composition changed across formats: format 2 folds the explore
    smoke in, format 1 had no smoke) and never a lopsided assay set (a
    ``--assays RA30`` rerun next to a three-assay baseline must not book
    the two missing assays as a 25-second improvement).  When both
    payloads carry an explore record its wall time is diffed separately as
    ``explore_wall_time_s``.  Per-assay rows additionally diff the
    schedule-stage wall time when both sides executed the stage.  When the
    payload carries a ``bb_probe`` record, ``bb_probe`` compares its
    schedule-stage wall against the baseline — the previous file's own
    probe, or (for a pre-format-3 previous file) its exact IVD schedule
    stage — and reports the speedup factor.  When both payloads carry a
    ``replica`` record with a numeric ``jobs_per_s`` (format 4+), the
    throughputs are diffed as ``replica`` — a pre-format-4 baseline simply
    gets no replica comparison.  ``None`` when the previous file is
    unreadable (a broken old artifact must not fail the current bench).
    """
    try:
        previous = json.loads(previous_path.read_text())
        old_experiments = {
            record["assay"]: record for record in previous.get("experiments", [])
        }
    except (OSError, ValueError, KeyError, TypeError):
        return None
    delta: Dict[str, Any] = {"against": previous_path.name, "experiments": {}}
    new_walls = _experiment_walls(payload)
    old_walls = _experiment_walls(previous)
    if new_walls is not None and old_walls is not None:
        common = sorted(set(new_walls) & set(old_walls))
        if common:
            delta["wall_time_s"] = round(
                sum(new_walls[a] for a in common)
                - sum(old_walls[a] for a in common),
                4,
            )
    new_explore = payload.get("explore")
    old_explore = previous.get("explore")
    if (
        isinstance(new_explore, dict)
        and isinstance(old_explore, dict)
        and isinstance(new_explore.get("wall_time_s"), (int, float))
        and isinstance(old_explore.get("wall_time_s"), (int, float))
    ):
        delta["explore_wall_time_s"] = round(
            new_explore["wall_time_s"] - old_explore["wall_time_s"], 4
        )
    for record in payload["experiments"]:
        old = old_experiments.get(record["assay"])
        if not isinstance(old, dict):
            continue
        row: Dict[str, Any] = {}
        if isinstance(old.get("wall_time_s"), (int, float)):
            row["wall_time_s"] = round(record["wall_time_s"] - old["wall_time_s"], 4)
        if record.get("makespan") is not None and isinstance(
            old.get("makespan"), (int, float)
        ):
            row["makespan"] = record["makespan"] - old["makespan"]
        new_schedule = _schedule_stage_wall(record)
        old_schedule = _schedule_stage_wall(old)
        if new_schedule is not None and old_schedule is not None:
            row["schedule_stage_s"] = round(new_schedule - old_schedule, 4)
        if row:
            delta["experiments"][record["assay"]] = row

    probe = payload.get("bb_probe")
    probe_wall = _schedule_stage_wall(probe)
    baseline_wall = _schedule_stage_wall(previous.get("bb_probe"))
    baseline_source = "bb_probe"
    if baseline_wall is None:
        # A pre-format-3 baseline has no probe; its exact IVD schedule
        # stage (HiGHS under the default portfolio) is the stage wall the
        # probe is meant to undercut, so it serves as the comparison point.
        baseline_wall = _schedule_stage_wall(old_experiments.get("IVD"))
        baseline_source = "IVD"
    if probe_wall is not None and baseline_wall is not None and probe_wall > 0:
        delta["bb_probe"] = {
            "schedule_stage_s": probe_wall,
            "baseline_schedule_stage_s": baseline_wall,
            "baseline_source": baseline_source,
            "speedup": round(baseline_wall / probe_wall, 2),
            "makespan": probe.get("makespan"),
        }

    verify_probe = payload.get("verify_probe")
    # The verify-throughput baseline is the scalar engine measured in the
    # same run (same machine, same load), so the delta surfaces this run's
    # own ratios rather than a cross-file wall-time diff.
    if isinstance(verify_probe, dict) and verify_probe.get("ok"):
        delta["verify_probe"] = {
            "fault_free_speedup": verify_probe["fault_free"]["speedup"],
            "fault_speedup": verify_probe["fault"]["speedup"],
            "baseline_source": "in-run scalar engine",
        }

    obs_probe = payload.get("obs_probe")
    # Like the verify probe, the overhead baseline is the untraced engine
    # measured in the same run, so the delta surfaces this run's own
    # aggregate rather than a cross-file wall-time diff.
    if isinstance(obs_probe, dict) and obs_probe.get("ok"):
        delta["obs_probe"] = {
            "overhead_pct": obs_probe.get("overhead_pct"),
            "baseline_source": "in-run untraced engine",
        }

    new_replica = payload.get("replica")
    old_replica = previous.get("replica")
    # A pre-format-4 baseline has no replica record: skip the comparison
    # rather than inventing one (BENCH_6 and earlier simply carry no
    # multi-replica data point).
    if (
        isinstance(new_replica, dict)
        and isinstance(old_replica, dict)
        and isinstance(new_replica.get("jobs_per_s"), (int, float))
        and isinstance(old_replica.get("jobs_per_s"), (int, float))
    ):
        delta["replica"] = {
            "jobs_per_s": round(
                new_replica["jobs_per_s"] - old_replica["jobs_per_s"], 2
            ),
            "baseline_jobs_per_s": float(old_replica["jobs_per_s"]),
        }
    return delta


def run_bench(argv: List[str]) -> int:
    """The ``repro bench`` subcommand; returns a process exit code."""
    parser = build_bench_parser()
    args = parser.parse_args(argv)

    experiments = [
        run_experiment(assay, args.time_limit, args.solver) for assay in args.assays
    ]
    totals: Dict[str, int] = {}
    for record in experiments:
        for stage, count in record["solver_invocations"].items():
            totals[stage] = totals.get(stage, 0) + count
    explore_record = None if args.no_explore else run_explore_smoke()
    bb_record = None if args.no_bb_probe else run_bb_probe(args.bb_time_limit)
    replica_record = None if args.no_replica else run_replica_throughput()
    verify_record = None if args.no_verify_probe else run_verify_probe()
    obs_record = (
        None
        if args.no_obs_probe
        else run_obs_probe(args.assays, args.time_limit, args.solver)
    )
    failed = sum(1 for r in experiments if not r["ok"])
    if explore_record is not None and not explore_record["ok"]:
        failed += 1
    if bb_record is not None and not bb_record["ok"]:
        failed += 1
    if replica_record is not None and not replica_record["ok"]:
        failed += 1
    if verify_record is not None and not verify_record["ok"]:
        failed += 1
    if obs_record is not None and not obs_record["ok"]:
        failed += 1
    payload = {
        "bench_format": BENCH_FORMAT,
        "key_version": KEY_VERSION,
        "solver": args.solver,  # None = each config's default (portfolio)
        "time_limit_s": args.time_limit,
        "experiments": experiments,
        "explore": explore_record,
        "bb_probe": bb_record,
        "replica": replica_record,
        "verify_probe": verify_record,
        "obs_probe": obs_record,
        "totals": {
            "wall_time_s": round(
                sum(r["wall_time_s"] for r in experiments)
                + (explore_record["wall_time_s"] if explore_record else 0.0),
                4,
            ),
            "solver_invocations": totals,
            "failed": failed,
        },
    }
    previous = previous_bench_file(args.out)
    if previous is not None:
        payload["delta"] = bench_delta(payload, previous)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    for record in experiments:
        status = f"tE={record.get('makespan')}" if record["ok"] else f"FAILED: {record['error']}"
        backends = {
            s["stage"]: s["backend"] for s in record["stages"] if s["backend"] is not None
        }
        backend_note = f" backends={backends}" if backends else ""
        print(f"{record['assay']:<8} {status} {record['wall_time_s']:.2f}s{backend_note}")
    if explore_record is not None:
        if explore_record["ok"]:
            print(
                f"explore  frontier={explore_record['frontier_size']} "
                f"evaluated={explore_record['evaluated']}/{explore_record['candidates']} "
                f"solves={explore_record['scheduling_solves']} "
                f"{explore_record['wall_time_s']:.2f}s"
            )
        else:
            print(f"explore  FAILED: {explore_record['error']}")
    if bb_record is not None:
        if bb_record["ok"]:
            print(
                f"bb-probe tE={bb_record.get('makespan')} "
                f"budget={bb_record['time_limit_s']}s "
                f"schedule={bb_record.get('schedule_stage_s', 0.0):.3f}s"
            )
        else:
            print(f"bb-probe FAILED: {bb_record['error']}")
    if replica_record is not None:
        if replica_record["ok"]:
            print(
                f"replica  jobs/s={replica_record['jobs_per_s']} "
                f"jobs={replica_record['jobs']} "
                f"solves={replica_record['scheduling_solves']} "
                f"{replica_record['wall_time_s']:.2f}s"
            )
        else:
            print(f"replica  FAILED: {replica_record['error']}")
    if verify_record is not None:
        if verify_record["ok"]:
            ff, fl = verify_record["fault_free"], verify_record["fault"]
            print(
                f"verify   fault-free={ff['trials_per_s']:.0f}/s "
                f"({ff['speedup']}x) fault={fl['trials_per_s']:.0f}/s "
                f"({fl['speedup']}x) {verify_record['wall_time_s']:.2f}s"
            )
        else:
            print(f"verify   FAILED: {verify_record['error']}")
    if obs_record is not None:
        if obs_record["ok"]:
            print(
                f"obs      overhead={obs_record['overhead_pct']:+.2f}% "
                f"(ceiling {obs_record['overhead_ceiling_pct']:.0f}%) "
                f"{obs_record['wall_time_s']:.2f}s"
            )
        else:
            print(f"obs      FAILED: {obs_record['error']}")
    if payload.get("delta"):
        total_delta = payload["delta"].get("wall_time_s")
        note = (
            f"{total_delta:+.2f}s experiments wall"
            if total_delta is not None
            else "n/a"
        )
        probe_delta = payload["delta"].get("bb_probe")
        if probe_delta is not None:
            note += f", bb-probe {probe_delta['speedup']}x vs {probe_delta['baseline_source']}"
        replica_delta = payload["delta"].get("replica")
        if replica_delta is not None:
            note += f", replica {replica_delta['jobs_per_s']:+.2f} jobs/s"
        print(f"delta vs {payload['delta']['against']}: {note}")
    print(f"bench telemetry written to {args.out}")
    if failed:
        print(f"{failed} experiment(s) failed", file=sys.stderr)
        return 1
    return 0
