"""Benchmark telemetry: the ``repro bench`` subcommand.

Runs the small benchmark fixtures (RA30 / IVD / PCR by default, the same
assays the golden regression pins cover) cold through the batch engine and
writes a machine-readable ``BENCH_4.json`` so the performance trajectory of
the repository finally has data points a CI job can collect and compare
across commits:

* per-experiment wall time and makespan,
* per-stage solver invocations (the in-process counters of
  :mod:`repro.synthesis.pipeline` — cache replays excluded by design),
* which solver backend produced each exact stage and whether the portfolio
  had to fall back.

The file name carries the PR sequence number of the benchmark format
(``BENCH_4``) rather than a timestamp, so CI artifact uploads of different
commits are directly comparable.  The payload also embeds
:data:`repro.keys.KEY_VERSION` — a bump there invalidates every cache, so
wall-time regressions across a bump are expected and the comparison tooling
can tell the two apart.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.batch.cache import ResultCache
from repro.batch.engine import BatchSynthesisEngine
from repro.batch.jobs import BatchJob
from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.keys import KEY_VERSION
from repro.synthesis.config import FlowConfig
from repro.synthesis.pipeline import reset_stage_invocations, stage_invocations

#: The small fixtures: cheap enough for every CI run, and exactly the
#: assays whose results the golden regression tests pin.
DEFAULT_ASSAYS = ("RA30", "IVD", "PCR")

#: Format version of the BENCH_4.json payload (independent of the file
#: name, which tracks the PR that introduced the telemetry).
BENCH_FORMAT = 1


def build_bench_parser() -> argparse.ArgumentParser:
    """Argument surface of the ``repro bench`` subcommand."""
    from repro.cli import _add_solver_argument

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the small benchmark fixtures cold and write "
        "machine-readable telemetry (wall time, solver invocations, backend "
        "used per stage) to a JSON file for the perf trajectory.",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_4.json"),
        help="output JSON path (default BENCH_4.json)",
    )
    parser.add_argument(
        "--assays", nargs="+", default=list(DEFAULT_ASSAYS),
        choices=sorted(PAPER_ASSAYS),
        help=f"assays to benchmark (default {' '.join(DEFAULT_ASSAYS)})",
    )
    parser.add_argument(
        "--time-limit", type=float, default=20.0,
        help="ILP time limit per solve in seconds (default 20, the golden-"
        "regression setting)",
    )
    _add_solver_argument(parser)
    return parser


def _bench_config(assay: str, time_limit_s: float, solver: Optional[str]) -> FlowConfig:
    """Paper-default config for ``assay`` under the bench time limit."""
    from repro.synthesis.config import apply_solver_override

    config = FlowConfig.paper_defaults_for(assay)
    config.ilp_time_limit_s = time_limit_s
    config.archsyn_time_limit_s = time_limit_s
    return apply_solver_override(config, solver)


def run_experiment(assay: str, time_limit_s: float, solver: Optional[str]) -> Dict[str, Any]:
    """Run one assay cold and return its telemetry record.

    Every experiment gets a fresh engine and a fresh memory-only cache so
    the numbers measure real solves, never replays; the stage-invocation
    counters are snapshotted around the run to prove it.
    """
    job = BatchJob(assay, assay_by_name(assay), _bench_config(assay, time_limit_s, solver))
    engine = BatchSynthesisEngine(max_workers=1, cache=ResultCache())
    reset_stage_invocations()
    start = time.perf_counter()
    report = engine.run([job])
    wall_time_s = time.perf_counter() - start
    invocations = stage_invocations()
    outcome = report.outcomes[0]
    record: Dict[str, Any] = {
        "assay": assay,
        "ok": outcome.ok,
        "error": outcome.error,
        "wall_time_s": round(wall_time_s, 4),
        "solver_invocations": invocations,
        "stages": [
            {
                "stage": execution.stage,
                "action": execution.action,
                "wall_time_s": round(execution.wall_time_s, 4),
                "backend": execution.backend,
                "fallback_used": execution.fallback_used,
            }
            for execution in outcome.stages
        ],
    }
    if outcome.ok:
        metrics = outcome.metrics()
        record["makespan"] = metrics.execution_time
        record["scheduler_engine"] = metrics.scheduler_engine
        record["synthesis_engine"] = metrics.synthesis_engine
    return record


def run_bench(argv: List[str]) -> int:
    """The ``repro bench`` subcommand; returns a process exit code."""
    parser = build_bench_parser()
    args = parser.parse_args(argv)

    experiments = [
        run_experiment(assay, args.time_limit, args.solver) for assay in args.assays
    ]
    totals: Dict[str, int] = {}
    for record in experiments:
        for stage, count in record["solver_invocations"].items():
            totals[stage] = totals.get(stage, 0) + count
    payload = {
        "bench_format": BENCH_FORMAT,
        "key_version": KEY_VERSION,
        "solver": args.solver,  # None = each config's default (portfolio)
        "time_limit_s": args.time_limit,
        "experiments": experiments,
        "totals": {
            "wall_time_s": round(sum(r["wall_time_s"] for r in experiments), 4),
            "solver_invocations": totals,
            "failed": sum(1 for r in experiments if not r["ok"]),
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    for record in experiments:
        status = f"tE={record.get('makespan')}" if record["ok"] else f"FAILED: {record['error']}"
        backends = {
            s["stage"]: s["backend"] for s in record["stages"] if s["backend"] is not None
        }
        backend_note = f" backends={backends}" if backends else ""
        print(f"{record['assay']:<8} {status} {record['wall_time_s']:.2f}s{backend_note}")
    print(f"bench telemetry written to {args.out}")
    failed = payload["totals"]["failed"]
    if failed:
        print(f"{failed} experiment(s) failed", file=sys.stderr)
        return 1
    return 0
