"""Hierarchical tracing with cross-process and cross-HTTP propagation.

One :class:`TraceRecorder` records one run (a CLI invocation, or one
service job): every :func:`span` opened while the recorder is installed
lands in it as a closed interval on the monotonic clock, with a parent
pointer that reconstructs the job → stage → solver attempt → kernel
hierarchy.  The recorder is installed in a :class:`contextvars.ContextVar`
— it follows ``asyncio`` tasks and ``asyncio.to_thread`` dispatches
automatically, and crosses hard boundaries explicitly:

* **Process boundaries** (ProcessPool stage workers, ``verify_workers``
  shards): the parent serializes :func:`current_context`, the worker
  builds a child :class:`TraceRecorder` seeded with it, and ships its
  finished spans back for :meth:`TraceRecorder.absorb`.  Linux's
  ``CLOCK_MONOTONIC`` is machine-wide, so child timestamps land on the
  parent's timeline without adjustment.
* **HTTP hops** (service submissions, cache-daemon claims): the caller
  sends :data:`TRACE_HEADER` with the serialized context; the far side
  either records into a child recorder (service jobs) or stores the
  claimant's context so a later waiter can link its claim-wait span to
  the trace that is doing the work (cache daemon).

Everything is zero-cost-when-disabled: with no recorder installed,
:func:`span` returns a shared no-op without allocating.  Exports are
Chrome trace-event JSON (``{"traceEvents": [...]}``), loadable in
Perfetto and ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: HTTP header carrying a serialized :class:`SpanContext` across hops.
TRACE_HEADER = "x-repro-trace"


_ID_RNG: Optional[random.Random] = None
_ID_RNG_PID: Optional[int] = None


def _new_id() -> str:
    """A 16-hex-digit random id (``PYTHONHASHSEED``-independent).

    Ids come from a per-process :class:`random.Random` seeded from
    ``os.urandom`` — an order of magnitude cheaper per id than ``uuid4``
    (which takes the urandom syscall on *every* call), and span creation
    is the flight recorder's hottest allocation.  The generator is keyed
    to the pid so a forked ProcessPool worker reseeds instead of
    replaying its parent's id stream.
    """
    global _ID_RNG, _ID_RNG_PID
    pid = os.getpid()
    if _ID_RNG is None or _ID_RNG_PID != pid:
        _ID_RNG = random.Random(int.from_bytes(os.urandom(16), "big"))
        _ID_RNG_PID = pid
    return f"{_ID_RNG.getrandbits(64):016x}"


@dataclass(frozen=True)
class SpanContext:
    """The portable coordinates of a span: ``(trace_id, span_id)``.

    This is what crosses process and HTTP boundaries — enough for the far
    side to parent its spans under ours and for a waiter to name the
    trace that holds a claim.
    """

    trace_id: str
    span_id: str

    def serialize(self) -> str:
        """Wire form: ``"<trace_id>:<span_id>"`` (header-safe ASCII)."""
        return f"{self.trace_id}:{self.span_id}"

    @classmethod
    def deserialize(cls, raw: Optional[str]) -> Optional["SpanContext"]:
        """Parse the wire form; ``None`` on anything malformed.

        Propagation must never take a run down: a corrupt header simply
        yields an unlinked trace.
        """
        if not raw or not isinstance(raw, str):
            return None
        parts = raw.strip().split(":")
        if len(parts) != 2 or not all(p and p.isalnum() for p in parts):
            return None
        return cls(trace_id=parts[0], span_id=parts[1])


@dataclass
class Span:
    """One closed (or still-open) interval on the run's timeline."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_s: float
    end_s: Optional[float] = None
    category: str = "repro"
    attributes: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    @property
    def duration_s(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def context(self) -> SpanContext:
        """This span's portable coordinates, for propagation."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, **attributes: Any) -> None:
        """Attach attributes (phase timings, counters) to the span."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form, for crossing process boundaries."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "category": self.category,
            "attributes": dict(self.attributes),
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span shipped back from a worker process."""
        return cls(
            name=payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_s=payload["start_s"],
            end_s=payload.get("end_s"),
            category=payload.get("category", "repro"),
            attributes=dict(payload.get("attributes", {})),
            pid=payload.get("pid", 0),
            tid=payload.get("tid", 0),
        )


class _NoopSpan:
    """The shared do-nothing span yielded while tracing is disabled."""

    __slots__ = ()

    #: Mirrors :attr:`Span.context`; ``None`` signals "nothing to link".
    context = None

    def set(self, **attributes: Any) -> None:
        """Discard attributes; keeps call sites branch-free."""


_NOOP_SPAN = _NoopSpan()


class TraceRecorder:
    """Collects one run's spans; thread-safe, exportable as Chrome JSON.

    ``parent`` seeds the recorder with a foreign :class:`SpanContext`:
    the recorder adopts that trace id and parents its root spans under
    the foreign span, which is how worker processes and service jobs
    join the trace of whoever dispatched them.
    """

    def __init__(self, parent: Optional[SpanContext] = None) -> None:
        self.trace_id = parent.trace_id if parent else _new_id()
        self._root_parent = parent.span_id if parent else None
        self._spans: List[Span] = []
        self._open = 0
        self._lock = threading.Lock()
        #: Wall-clock anchor paired with a monotonic reading, exported as
        #: metadata so a trace can be aligned to real time after the fact.
        self.anchor_wall_s = time.time()
        self.anchor_mono_s = time.perf_counter()

    # ------------------------------------------------------------- recording
    def begin(
        self,
        name: str,
        parent: Optional[Span],
        category: str,
        attributes: Dict[str, Any],
    ) -> Span:
        """Open a span under ``parent`` (or the recorder's root parent).

        ``attributes`` is adopted, not copied — :func:`span` builds a
        fresh dict from its keyword arguments, and this is the hottest
        allocation site the recorder has.
        """
        new = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=parent.span_id if parent is not None else self._root_parent,
            start_s=time.perf_counter(),
            category=category,
            attributes=attributes,
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        with self._lock:
            self._open += 1
        return new

    def finish(self, opened: Span) -> None:
        """Close ``opened`` and file it with the recorder."""
        opened.end_s = time.perf_counter()
        with self._lock:
            self._open -= 1
            self._spans.append(opened)

    def absorb(self, payloads: List[Dict[str, Any]]) -> None:
        """File spans recorded in a worker process (already finished)."""
        rebuilt = [Span.from_dict(p) for p in payloads]
        with self._lock:
            self._spans.extend(rebuilt)

    # --------------------------------------------------------------- queries
    @property
    def open_spans(self) -> int:
        """Spans begun but not yet finished (0 after a clean run)."""
        with self._lock:
            return self._open

    def spans(self) -> List[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def serialized_spans(self) -> List[Dict[str, Any]]:
        """Finished spans as dicts, for shipping across a process hop."""
        return [s.to_dict() for s in self.spans()]

    def stage_summaries(self) -> List[Dict[str, Any]]:
        """Per-stage span digests (category ``"stage"``), start order.

        The compact form embedded in job payloads and bench records: one
        row per stage span with its duration and attributes, no ids.
        """
        stages = sorted(
            (s for s in self.spans() if s.category == "stage"),
            key=lambda s: s.start_s,
        )
        return [
            {
                "name": s.name,
                "duration_s": round(s.duration_s, 6),
                **{k: v for k, v in sorted(s.attributes.items())},
            }
            for s in stages
        ]

    # --------------------------------------------------------------- exports
    def chrome_trace(self) -> Dict[str, Any]:
        """The run as a Chrome trace-event document (Perfetto-loadable).

        Spans become complete (``"ph": "X"``) events with microsecond
        timestamps on the shared monotonic timeline; trace/span ids ride
        in ``args`` so cross-trace links stay inspectable.
        """
        events: List[Dict[str, Any]] = []
        for s in sorted(self.spans(), key=lambda s: s.start_s):
            end_s = s.end_s if s.end_s is not None else s.start_s
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": round(s.start_s * 1e6, 3),
                    "dur": round((end_s - s.start_s) * 1e6, 3),
                    "pid": s.pid,
                    "tid": s.tid,
                    "args": {
                        **s.attributes,
                        "trace_id": s.trace_id,
                        "span_id": s.span_id,
                        "parent_id": s.parent_id or "",
                    },
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "anchor_wall_s": self.anchor_wall_s,
                "anchor_mono_s": self.anchor_mono_s,
            },
        }

    def write(self, path: Union[str, Path]) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        Path(path).write_text(
            json.dumps(self.chrome_trace(), indent=2, sort_keys=True)
        )


_RECORDER: ContextVar[Optional[TraceRecorder]] = ContextVar(
    "repro_trace_recorder", default=None
)
_CURRENT: ContextVar[Optional[Span]] = ContextVar(
    "repro_trace_current_span", default=None
)


def install_recorder(new: Optional[TraceRecorder]) -> object:
    """Install ``new`` as the ambient recorder; returns a reset token.

    Installation is per-:mod:`contextvars` context, so concurrent service
    jobs each see their own recorder.  Pass the returned token to
    ``uninstall_recorder`` to restore the previous state.
    """
    return _RECORDER.set(new)


def uninstall_recorder(token: object) -> None:
    """Undo an :func:`install_recorder` using its token."""
    _RECORDER.reset(token)  # type: ignore[arg-type]


def recorder() -> Optional[TraceRecorder]:
    """The ambient recorder, or ``None`` while tracing is disabled."""
    return _RECORDER.get()


def tracing_enabled() -> bool:
    """True when a recorder is installed in the current context."""
    return _RECORDER.get() is not None


def current_context() -> Optional[SpanContext]:
    """The active span's portable coordinates, for propagation.

    Falls back to a recorder-level context (trace id with no span) when
    tracing is on but no span is open, and ``None`` when disabled.
    """
    active = _CURRENT.get()
    if active is not None:
        return active.context
    rec = _RECORDER.get()
    if rec is None:
        return None
    return SpanContext(trace_id=rec.trace_id, span_id=rec._root_parent or "root")


@contextmanager
def span(
    name: str, category: str = "repro", **attributes: Any
) -> Iterator[Any]:
    """Open a child span of the current one; no-op while disabled.

    The disabled path allocates nothing and touches two context
    variables — cheap enough to leave call sites unguarded everywhere,
    which is the zero-cost-when-disabled contract.
    """
    rec = _RECORDER.get()
    if rec is None:
        yield _NOOP_SPAN
        return
    opened = rec.begin(name, _CURRENT.get(), category, attributes)
    token = _CURRENT.set(opened)
    try:
        yield opened
    finally:
        _CURRENT.reset(token)
        rec.finish(opened)


def validate_chrome_trace(document: Dict[str, Any]) -> List[str]:
    """Structural problems of an exported trace document (empty = ok).

    The checker CI's ``obs-smoke`` job runs over ``--trace-out`` output:
    every event must be a closed complete event with a non-negative
    duration, and every non-root parent pointer must resolve to another
    event in the same document.
    """
    problems: List[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    ids = set()
    for event in events:
        args = event.get("args", {})
        ids.add(args.get("span_id"))
    for event in events:
        name = event.get("name", "<unnamed>")
        if event.get("ph") != "X":
            problems.append(f"{name}: not a complete event (ph != 'X')")
        if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
            problems.append(f"{name}: missing or negative duration")
        parent = event.get("args", {}).get("parent_id")
        if parent and parent not in ids:
            problems.append(f"{name}: dangling parent span {parent}")
    return problems
