"""Flight recorder for the synthesis stack: tracing, metrics, logging.

The package is the repository's single observability surface, built on
nothing beyond the stdlib so it is importable in every execution context
the flow reaches (CLI runs, ``repro serve`` worker threads, ProcessPool
stage workers, Monte-Carlo shard processes, the asyncio cache daemon):

* :mod:`repro.obs.trace` — hierarchical spans (job → stage → solver
  attempt → B&B search / MC shard) on a per-run :class:`TraceRecorder`,
  with context propagation across process boundaries and HTTP hops and a
  Chrome trace-event JSON export loadable in Perfetto;
* :mod:`repro.obs.metrics` — a small counter/gauge/histogram registry
  rendered in Prometheus text-exposition format by ``GET /metrics`` on
  the service and the cache daemon, and embedded as a ``metrics`` block
  in ``--json`` reports;
* :mod:`repro.obs.logs` — named stdlib loggers per subsystem behind the
  ``--log-level``/``--log-json`` CLI flags.

Instrumentation is zero-cost-when-disabled: :func:`span` is a no-op
context manager until a recorder is installed, and nothing in this
package ever contributes to a cache key (observability steers how runs
are *watched*, never what they compute — the same contract as
``RUNTIME_ADVICE_FIELDS``).
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    render_prometheus,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    SpanContext,
    TraceRecorder,
    current_context,
    install_recorder,
    recorder,
    span,
    tracing_enabled,
)

__all__ = [
    "TRACE_HEADER",
    "Span",
    "SpanContext",
    "TraceRecorder",
    "MetricsRegistry",
    "configure_logging",
    "current_context",
    "get_logger",
    "get_registry",
    "install_recorder",
    "recorder",
    "render_prometheus",
    "span",
    "tracing_enabled",
]
