"""Counter/gauge/histogram registry with Prometheus text exposition.

One process-wide :class:`MetricsRegistry` (reachable via
:func:`get_registry`) accumulates the stack's operational counters —
stage wall-time histograms, cache hits per tier, single-flight claim
waits and takeovers, service queue depth, solver nodes expanded,
warm-start hits, Monte-Carlo trials — and renders them two ways:

* :func:`render_prometheus` — the text exposition format
  (``text/plain; version=0.0.4``) served by ``GET /metrics`` on both the
  synthesis service and the cache daemon;
* :meth:`MetricsRegistry.snapshot` — a JSON-ready dict embedded as the
  ``metrics`` block of ``--json`` batch reports.

Metrics are always on: an increment is a dict update under one lock,
cheap enough to never need gating, and — unlike tracing — the registry
carries no per-run state, so there is nothing to install or tear down.
Everything here is stdlib-only by design.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets (seconds), a decade around typical stage
#: and solver wall times.  Cumulative ``le`` rendering adds ``+Inf``.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(key: _LabelKey) -> str:
    """``{k="v",...}`` or the empty string for an unlabeled sample."""
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock
        self._series: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0.0 if never touched)."""
        with self._lock:
            return self._series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[_LabelKey, float]]:
        """All series, sorted by label key for stable rendering."""
        with self._lock:
            return sorted(self._series.items())


class Gauge(Counter):
    """A value that can go both ways (queue depths, entry counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the labeled series with ``value``."""
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Move the labeled series by ``amount`` (negative allowed)."""
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.inc(-amount, **labels)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets))
        self._lock = lock
        #: label key -> (per-bucket counts, +Inf count, sum)
        self._series: Dict[_LabelKey, Tuple[List[int], List[int], List[float]]] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into every bucket it falls under."""
        key = _label_key(labels)
        with self._lock:
            if key not in self._series:
                self._series[key] = ([0] * len(self.buckets), [0], [0.0])
            counts, inf_count, total = self._series[key]
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            inf_count[0] += 1
            total[0] += float(value)

    def snapshot_series(
        self,
    ) -> List[Tuple[_LabelKey, List[int], int, float]]:
        """``(labels, cumulative bucket counts, count, sum)`` per series."""
        with self._lock:
            # Bucket counts are stored cumulatively (every observation
            # increments all covering buckets), so they render as-is.
            return [
                (key, list(counts), inf_count[0], total[0])
                for key, (counts, inf_count, total) in sorted(
                    self._series.items()
                )
            ]


class MetricsRegistry:
    """Names → metric objects; the process's single source of truth.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the metric, later calls return the same object, so any
    module can reach its instruments without import-order ceremony.
    Re-registering a name as a different kind is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            created = factory()
            self._metrics[name] = created
            return created

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(
            name, lambda: Counter(name, help_text, threading.Lock()), "counter"
        )

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(
            name, lambda: Gauge(name, help_text, threading.Lock()), "gauge"
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the named histogram."""
        return self._get_or_create(
            name,
            lambda: Histogram(name, help_text, threading.Lock(), buckets),
            "histogram",
        )

    def metrics(self) -> List[Any]:
        """All registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view: the ``metrics`` block of ``--json`` reports."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                series = []
                for key, _cumulative, count, total in metric.snapshot_series():
                    series.append(
                        {
                            "labels": dict(key),
                            "count": count,
                            "sum": round(total, 6),
                        }
                    )
                out[metric.name] = {"type": metric.kind, "series": series}
            else:
                out[metric.name] = {
                    "type": metric.kind,
                    "series": [
                        {"labels": dict(key), "value": value}
                        for key, value in metric.samples()
                    ],
                }
        return out


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    ``# HELP``/``# TYPE`` headers per metric, one sample line per series,
    histograms expanded into cumulative ``_bucket{le=...}`` samples plus
    ``_sum`` and ``_count``.  Served with content type
    ``text/plain; version=0.0.4`` by the HTTP endpoints.
    """
    registry = registry if registry is not None else get_registry()
    lines: List[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, cumulative, count, total in metric.snapshot_series():
                for bound, bucket_count in zip(metric.buckets, cumulative):
                    bucket_key = key + (("le", _format_value(bound)),)
                    lines.append(
                        f"{metric.name}_bucket{_format_labels(bucket_key)} "
                        f"{bucket_count}"
                    )
                inf_key = key + (("le", "+Inf"),)
                lines.append(
                    f"{metric.name}_bucket{_format_labels(inf_key)} {count}"
                )
                lines.append(
                    f"{metric.name}_sum{_format_labels(key)} "
                    f"{_format_value(total)}"
                )
                lines.append(f"{metric.name}_count{_format_labels(key)} {count}")
        else:
            for key, value in metric.samples():
                lines.append(
                    f"{metric.name}{_format_labels(key)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n"


#: Prometheus content type of the exposition endpoints.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


# --------------------------------------------------------------------------
# Pre-declared instruments.  Declaring them here (instead of at each call
# site) keeps names and help strings in one reviewable table; modules
# import these helpers rather than minting strings ad hoc.
# --------------------------------------------------------------------------

def stage_wall_histogram() -> Histogram:
    """Stage wall-time distribution, labeled by stage and action."""
    return _REGISTRY.histogram(
        "repro_stage_wall_seconds",
        "Wall time of pipeline stage executions, by stage and action.",
    )


def cache_hits_counter() -> Counter:
    """Cache hits split by serving tier (memory/disk/shared)."""
    return _REGISTRY.counter(
        "repro_cache_hits_total", "Result-cache hits, by serving tier."
    )


def cache_misses_counter() -> Counter:
    """Lookups that fell through every tier."""
    return _REGISTRY.counter(
        "repro_cache_misses_total", "Result-cache lookups that missed every tier."
    )


def claim_counter() -> Counter:
    """Single-flight claim lifecycle events (claims/waits/takeovers)."""
    return _REGISTRY.counter(
        "repro_claims_total",
        "Single-flight claim events, by event kind.",
    )


def solver_nodes_counter() -> Counter:
    """Branch-and-bound nodes expanded."""
    return _REGISTRY.counter(
        "repro_solver_nodes_expanded_total",
        "Branch-and-bound search nodes expanded.",
    )


def warm_start_counter() -> Counter:
    """Warm starts offered to and used by solver backends."""
    return _REGISTRY.counter(
        "repro_warm_start_hits_total",
        "Solver invocations that seeded their search from a warm start.",
    )


def mc_trials_counter() -> Counter:
    """Monte-Carlo verification trials executed."""
    return _REGISTRY.counter(
        "repro_mc_trials_total", "Monte-Carlo verification trials executed."
    )


def jobs_counter() -> Counter:
    """Jobs processed, by final state."""
    return _REGISTRY.counter(
        "repro_jobs_total", "Synthesis jobs processed, by final state."
    )


def daemon_events_counter() -> Counter:
    """Cache-daemon store and claim lifecycle events.

    The daemon's ``GET /stats`` payload is a per-instance view over this
    counter (see :class:`repro.service.cachedaemon.DaemonStats`), so the
    JSON endpoint and the Prometheus exposition can never disagree.
    """
    return _REGISTRY.counter(
        "repro_cachedaemon_events_total",
        "Cache-daemon store and claim events, by event kind.",
    )


def daemon_entries_gauge() -> Gauge:
    """Cache-daemon live object counts (entries, claims)."""
    return _REGISTRY.gauge(
        "repro_cachedaemon_entries",
        "Cache-daemon live stored entries and claim records, by kind.",
    )


def queue_depth_gauge() -> Gauge:
    """Service job queue depth, by lifecycle state."""
    return _REGISTRY.gauge(
        "repro_service_queue_depth", "Service jobs currently held, by state."
    )
