"""Named stdlib loggers per subsystem behind one configuration call.

The logger taxonomy hangs off the ``repro`` root:

* ``repro.service`` — synthesis service lifecycle and job lines;
* ``repro.cachedaemon`` — daemon startup/shutdown, claims, evictions;
* ``repro.batch`` — batch engine runs and tier execution;
* ``repro.cache`` — result-cache flushes and tier degradation;
* ``repro.singleflight`` — cross-process claim negotiation;
* ``repro.solver`` — backend selection and fallback events;
* ``repro.verify`` — Monte-Carlo verification runs;
* ``repro.obs`` — the observability layer itself (trace exports).

:func:`get_logger` hands out children of that root; modules log freely
and stay silent until :func:`configure_logging` attaches a handler —
exactly the stdlib contract, so embedding applications can route
``repro.*`` records through their own logging setup instead.  The CLI's
``--log-level``/``--log-json`` flags call :func:`configure_logging`;
``--log-json`` swaps the human formatter for one-object-per-line JSON
(``ts``/``level``/``logger``/``message``), grep- and ingest-friendly.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

#: The root of the taxonomy; every repository logger is a child of it.
ROOT_LOGGER = "repro"

#: ``--log-level`` choices, mapped onto the stdlib levels.
LOG_LEVELS = ("debug", "info", "warning", "error")


def get_logger(name: str) -> logging.Logger:
    """The subsystem logger ``repro.<name>`` (idempotent, stdlib-backed)."""
    if name.startswith(ROOT_LOGGER):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ``ts``, ``level``, ``logger``, ``message``.

    Exceptions are flattened into an ``exc`` string so every line stays a
    single parseable object.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


def configure_logging(
    level: str = "warning",
    json_lines: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Attach one handler to the ``repro`` root at ``level``.

    Idempotent: handlers previously attached by this function are
    replaced, not stacked, so tests and long-lived processes can
    reconfigure freely.  Returns the configured root logger.  Records
    never propagate past ``repro`` — the host application's root logger
    stays untouched.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(LOG_LEVELS)}"
        )
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        formatter = logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"
        )
        formatter.converter = time.gmtime
        handler.setFormatter(formatter)
    root.addHandler(handler)
    return root
