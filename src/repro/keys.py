"""Shared content-addressing primitives: key version, digests, seeds.

Every content-addressed key in the repository — the run-level key of
:func:`repro.batch.cache.cache_key` and the per-stage keys of
:class:`repro.synthesis.pipeline.SynthesisPipeline` — embeds the single
:data:`KEY_VERSION` constant below, and every disk-cache entry is wrapped in
an envelope carrying it.  Bump it exactly once per incompatible change of
any cached payload's semantics; stale disk entries from an older version are
then ignored (treated as misses and dropped), never unpickled into the
wrong shape.

The module deliberately has no repro-internal imports so every layer
(graph generators, the router, the batch cache) can use it without cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Version of all content-addressed cache keys and disk-entry envelopes.
#: v1: run-level keys over (graph, config) pairs (PR 1).
#: v2: staged pipeline — per-stage keys, artifact payloads, FlowConfig.seed.
#: v3: solver backends — scheduler_backend/archsyn_backend/mip_rel_gap join
#:     the stage config slices, and stage artifacts carry backend identity.
#: v4: stochastic verification — the verify_* FlowConfig fields, the
#:     optional verify stage, and simulation problems in artifact payloads.
#: v5: aggregated verification reports — VerificationArtifact payloads now
#:     carry a TrialAggregate (and elide per-trial detail on large runs),
#:     so v4 pickles must not unpickle into the new report shape; also
#:     excludes runtime-advice fields (verify_workers) from run-level keys.
KEY_VERSION = 5


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of a JSON-serializable payload.

    The payload is serialized with sorted keys and no whitespace, so dicts
    hash equal regardless of insertion order and the digest is stable across
    processes and Python versions (unlike built-in ``hash()``, which is
    randomized per process).
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def derive_job_id(payload: Any, sequence: int) -> str:
    """Derive the id of one synthesis-service job from its manifest body.

    The id is ``job-<digest12>-<sequence>``: a 12-hex-digit prefix of the
    manifest's :func:`stable_digest` (version-stamped, so a
    :data:`KEY_VERSION` bump renames every job id together with every cache
    key) plus the server-assigned submission sequence number.  The digest
    prefix makes identical submissions *recognizable* — two clients posting
    the same sweep see ids sharing a prefix — while the sequence keeps every
    submission individually addressable, so re-posting a manifest yields a
    fresh job whose stages replay from cache rather than a collision.
    """
    digest = stable_digest({"version": KEY_VERSION, "manifest": payload})
    return f"job-{digest[:12]}-{sequence}"


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 63-bit sub-seed from ``root_seed`` for ``label``.

    Lets one root seed fan out into independent, reproducible streams (one
    per generated assay, one for router tie-breaking) without the streams
    correlating.  Uses SHA-256 rather than ``hash()`` so the derivation is
    identical in every worker process.
    """
    blob = f"{root_seed}:{label}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1
