"""Device insertion (step 2 of the physical design, dimension ``d_e``).

Devices are much larger than a grid node.  Inserting them stretches every
column and row that hosts a device by the device footprint, and shifts the
channel polylines accordingly so connectivity is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.archsyn.architecture import ChipArchitecture
from repro.devices.device import DeviceLibrary
from repro.physical.geometry import Point, Rect
from repro.physical.layout import ChannelShape, DeviceShape, PhysicalLayout


def insert_devices(
    layout: PhysicalLayout,
    architecture: ChipArchitecture,
    library: DeviceLibrary,
) -> PhysicalLayout:
    """Return a new layout with device rectangles inserted.

    Every canvas column (x coordinate) that hosts at least one device is
    widened by the widest device footprint in it minus one pitch slot, and
    analogously for rows.  Node positions and channel polylines are shifted
    to keep the topology; devices are drawn centered on their node.
    """
    if not layout.node_positions:
        return layout

    device_at_node: Dict[str, str] = {
        node: device for device, node in architecture.placement.items()
    }

    # Group coordinates.
    xs = sorted({p.x for p in layout.node_positions.values()})
    ys = sorted({p.y for p in layout.node_positions.values()})

    extra_width: Dict[float, float] = {x: 0.0 for x in xs}
    extra_height: Dict[float, float] = {y: 0.0 for y in ys}
    for node_id, position in layout.node_positions.items():
        device_id = device_at_node.get(node_id)
        if device_id is None or device_id not in library:
            continue
        width, height = library.device(device_id).footprint
        extra_width[position.x] = max(extra_width[position.x], max(0.0, width - 1.0))
        extra_height[position.y] = max(extra_height[position.y], max(0.0, height - 1.0))

    # Cumulative shifts: every coordinate moves right/up by the extra space
    # consumed by device columns/rows to its left/below.
    def shifted(value: float, extras: Dict[float, float], ordered: List[float]) -> float:
        shift = 0.0
        for coordinate in ordered:
            if coordinate < value:
                shift += extras[coordinate]
            elif coordinate == value:
                shift += extras[coordinate] / 2.0
        return value + shift

    new_positions = {
        node_id: Point(
            x=shifted(p.x, extra_width, xs),
            y=shifted(p.y, extra_height, ys),
        )
        for node_id, p in layout.node_positions.items()
    }

    new_channels: List[ChannelShape] = []
    for channel in layout.channels:
        a, b = sorted(channel.edge)
        new_channels.append(
            ChannelShape(
                edge=channel.edge,
                points=[new_positions[a], new_positions[b]],
                min_length=channel.min_length,
                is_storage=channel.is_storage,
                bends=channel.bends,
            )
        )

    devices: List[DeviceShape] = []
    for device_id, node_id in architecture.placement.items():
        if node_id not in new_positions:
            # A device with no used channel around it still occupies space.
            continue
        if device_id in library:
            width, height = library.device(device_id).footprint
        else:
            width, height = (2, 2)
        center = new_positions[node_id]
        devices.append(
            DeviceShape(
                device_id=device_id,
                node_id=node_id,
                rect=Rect(center.x - width / 2.0, center.y - height / 2.0, float(width), float(height)),
            )
        )

    return PhysicalLayout(
        devices=devices,
        channels=new_channels,
        node_positions=new_positions,
        pitch=layout.pitch,
    )
