"""Iterative layout compression (step 3 of the physical design, ``d_p``).

Following the paper's Fig. 7, the expanded layout is compressed one unit at a
time, alternating between the horizontal and vertical dimension.  A
compression step uniformly scales the coordinate being compressed; it is
accepted only while all constraints still hold:

* adjacent parallel channels keep at least one channel pitch of spacing
  (approximated by a minimum spacing between distinct node coordinates),
* device rectangles do not overlap,
* every storage segment keeps enough channel length to hold its fluid
  sample — when straight-line distance falls short, serpentine bends are
  inserted, each bend contributing two extra pitch lengths.

The loop terminates when neither dimension can shrink any further.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.physical.geometry import Point, Rect
from repro.physical.layout import ChannelShape, DeviceShape, PhysicalLayout


@dataclass
class CompressionConfig:
    """Constraints honoured while compressing."""

    min_channel_spacing: float = 1.0
    #: Channel length (in layout units) needed to cache one fluid sample.
    storage_segment_length: float = 3.0
    #: Extra channel length obtained per inserted bend.
    bend_length_gain: float = 2.0
    #: Hard cap on iterations as a safety net.
    max_iterations: int = 200


@dataclass
class CompressionResult:
    """Outcome of :func:`compress_layout`."""

    layout: PhysicalLayout
    iterations: int
    inserted_bends: int
    initial_dimensions: Tuple[int, int]
    final_dimensions: Tuple[int, int]

    @property
    def area_reduction(self) -> float:
        initial = self.initial_dimensions[0] * self.initial_dimensions[1]
        final = self.final_dimensions[0] * self.final_dimensions[1]
        if initial <= 0:
            return 0.0
        return 1.0 - final / initial


def compress_layout(layout: PhysicalLayout, config: Optional[CompressionConfig] = None) -> CompressionResult:
    """Iteratively compress a layout; returns the compact layout and metrics."""
    config = config or CompressionConfig()
    current = _copy_layout(layout)
    initial_dims = current.dimensions()

    iterations = 0
    shrink_x_possible = True
    shrink_y_possible = True
    while (shrink_x_possible or shrink_y_possible) and iterations < config.max_iterations:
        progressed = False
        if shrink_x_possible:
            candidate = _shrink_axis(current, axis="x", config=config)
            if candidate is not None:
                current = candidate
                progressed = True
            else:
                shrink_x_possible = False
        if shrink_y_possible:
            candidate = _shrink_axis(current, axis="y", config=config)
            if candidate is not None:
                current = candidate
                progressed = True
            else:
                shrink_y_possible = False
        iterations += 1
        if not progressed:
            break

    inserted = _insert_bends(current, config)
    final_dims = current.dimensions()
    return CompressionResult(
        layout=current,
        iterations=iterations,
        inserted_bends=inserted,
        initial_dimensions=initial_dims,
        final_dimensions=final_dims,
    )


# ---------------------------------------------------------------- internals
def _copy_layout(layout: PhysicalLayout) -> PhysicalLayout:
    return PhysicalLayout(
        devices=[DeviceShape(d.device_id, Rect(d.rect.x, d.rect.y, d.rect.width, d.rect.height), d.node_id)
                 for d in layout.devices],
        channels=[ChannelShape(c.edge, list(c.points), c.min_length, c.is_storage, c.bends, c.extra_length)
                  for c in layout.channels],
        node_positions=dict(layout.node_positions),
        pitch=layout.pitch,
    )


def _axis_values(layout: PhysicalLayout, axis: str) -> List[float]:
    values = {getattr(p, axis) for p in layout.node_positions.values()}
    return sorted(values)


def _shrink_axis(layout: PhysicalLayout, axis: str, config: CompressionConfig) -> Optional[PhysicalLayout]:
    """Try to remove one unit of slack along ``axis``; None when impossible."""
    values = _axis_values(layout, axis)
    if len(values) < 2:
        return None

    # Required spacing between consecutive coordinate groups: at least the
    # channel spacing, plus room for the devices anchored at those groups.
    device_extent: Dict[float, float] = {}
    for device in layout.devices:
        node_point = layout.node_positions[device.node_id]
        coordinate = getattr(node_point, axis)
        extent = device.rect.width if axis == "x" else device.rect.height
        device_extent[coordinate] = max(device_extent.get(coordinate, 0.0), extent)

    gaps = []
    shrinkable = False
    for left, right in zip(values, values[1:]):
        gap = right - left
        required = max(
            config.min_channel_spacing,
            device_extent.get(left, 0.0) / 2.0 + device_extent.get(right, 0.0) / 2.0 + config.min_channel_spacing,
        )
        gaps.append((left, right, gap, required))
        if gap > required + 1e-9:
            shrinkable = True
    if not shrinkable:
        return None

    # Shrink every over-wide gap by one unit (or down to its requirement).
    new_coordinate = {values[0]: values[0]}
    position = values[0]
    for left, right, gap, required in gaps:
        new_gap = max(required, gap - 1.0)
        position = new_coordinate[left] + new_gap
        new_coordinate[right] = position

    compressed = _copy_layout(layout)
    for node_id, point in compressed.node_positions.items():
        old = getattr(point, axis)
        updated = new_coordinate[old]
        compressed.node_positions[node_id] = (
            Point(updated, point.y) if axis == "x" else Point(point.x, updated)
        )
    for device in compressed.devices:
        node_point = compressed.node_positions[device.node_id]
        device.rect = Rect(
            node_point.x - device.rect.width / 2.0,
            node_point.y - device.rect.height / 2.0,
            device.rect.width,
            device.rect.height,
        )
    for channel in compressed.channels:
        a, b = sorted(channel.edge)
        channel.points = [compressed.node_positions[a], compressed.node_positions[b]]

    # Reject the move if it makes devices collide.
    for i, dev_a in enumerate(compressed.devices):
        for dev_b in compressed.devices[i + 1 :]:
            if dev_a.rect.intersects(dev_b.rect):
                return None
    return compressed


def _insert_bends(layout: PhysicalLayout, config: CompressionConfig) -> int:
    """Add serpentine bends to storage segments that became too short."""
    inserted = 0
    for channel in layout.channels:
        if not channel.is_storage:
            continue
        channel.min_length = max(channel.min_length, config.storage_segment_length)
        deficit = channel.length_deficit()
        if deficit <= 1e-9:
            continue
        bends_needed = math.ceil(deficit / config.bend_length_gain)
        channel.bends += bends_needed
        # Bends are represented logically (the polyline keeps its endpoints);
        # the added length is accounted for in the channel's effective length.
        channel.extra_length += bends_needed * config.bend_length_gain
        inserted += bends_needed
    return inserted
