"""Minimal SVG export of a physical layout (no external dependencies).

Useful for visually inspecting synthesized chips, e.g. to reproduce the style
of the paper's Fig. 11 snapshots.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Set, Union

from repro.archsyn.grid import EdgeId
from repro.physical.layout import PhysicalLayout

_SCALE = 10.0
_MARGIN = 20.0


def layout_to_svg(
    layout: PhysicalLayout,
    path: Optional[Union[str, Path]] = None,
    highlight_edges: Optional[Iterable[EdgeId]] = None,
) -> str:
    """Render the layout to an SVG string (and optionally write it to a file).

    ``highlight_edges`` are drawn in blue — the convention the paper uses for
    segments currently transporting or storing fluid samples.
    """
    highlighted: Set[EdgeId] = set(highlight_edges or [])
    box = layout.bounding_box()
    width = box.width * _SCALE + 2 * _MARGIN
    height = box.height * _SCALE + 2 * _MARGIN

    def sx(value: float) -> float:
        return (value - box.x) * _SCALE + _MARGIN

    def sy(value: float) -> float:
        # SVG y grows downward; flip so the layout reads like the paper's figures.
        return height - ((value - box.y) * _SCALE + _MARGIN)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]

    for channel in layout.channels:
        color = "#1f6fd6" if channel.edge in highlighted else "#888888"
        stroke = 4 if channel.edge in highlighted else 2
        points = " ".join(f"{sx(p.x):.1f},{sy(p.y):.1f}" for p in channel.points)
        dash = ' stroke-dasharray="6,3"' if channel.is_storage else ""
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="{stroke}"{dash}/>'
        )
        if channel.bends:
            mid = channel.points[len(channel.points) // 2]
            parts.append(
                f'<text x="{sx(mid.x):.1f}" y="{sy(mid.y) - 4:.1f}" font-size="9" fill="#555">'
                f"{channel.bends} bend(s)</text>"
            )

    for node_id, point in layout.node_positions.items():
        parts.append(
            f'<circle cx="{sx(point.x):.1f}" cy="{sy(point.y):.1f}" r="3" fill="#444444"/>'
        )

    for device in layout.devices:
        rect = device.rect
        parts.append(
            f'<rect x="{sx(rect.x):.1f}" y="{sy(rect.y2):.1f}" width="{rect.width * _SCALE:.1f}" '
            f'height="{rect.height * _SCALE:.1f}" fill="#ffd27f" stroke="#b07400" stroke-width="1.5"/>'
        )
        center = rect.center
        parts.append(
            f'<text x="{sx(center.x):.1f}" y="{sy(center.y):.1f}" font-size="10" text-anchor="middle" '
            f'fill="#333">{device.device_id}</text>'
        )

    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg)
    return svg
