"""Physical layout data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.archsyn.architecture import ChipArchitecture
from repro.archsyn.grid import EdgeId
from repro.physical.geometry import Point, Rect, bounding_box_of_points, polyline_length


@dataclass
class DeviceShape:
    """A device rectangle on the canvas."""

    device_id: str
    rect: Rect
    node_id: str


@dataclass
class ChannelShape:
    """A routed channel segment: a polyline with a required minimum length.

    ``min_length`` is non-zero for segments that cache a fluid sample; the
    compression stage must keep the polyline at least that long (inserting
    bends when the straight-line distance shrinks below it).
    """

    edge: EdgeId
    points: List[Point]
    min_length: float = 0.0
    is_storage: bool = False
    bends: int = 0
    #: Extra channel length contributed by serpentine bends.
    extra_length: float = 0.0

    @property
    def length(self) -> float:
        return polyline_length(self.points) + self.extra_length

    def length_deficit(self) -> float:
        """How much length is missing versus the storage requirement."""
        return max(0.0, self.min_length - self.length)


@dataclass
class PhysicalLayout:
    """Devices + channel segments on a canvas, with dimension accounting."""

    devices: List[DeviceShape] = field(default_factory=list)
    channels: List[ChannelShape] = field(default_factory=list)
    node_positions: Dict[str, Point] = field(default_factory=dict)
    #: Channel pitch (minimum spacing between parallel channels), layout units.
    pitch: float = 5.0

    # ------------------------------------------------------------- accessors
    def device(self, device_id: str) -> DeviceShape:
        for shape in self.devices:
            if shape.device_id == device_id:
                return shape
        raise KeyError(f"device {device_id!r} is not in the layout")

    def channel(self, edge: EdgeId) -> ChannelShape:
        for shape in self.channels:
            if shape.edge == edge:
                return shape
        raise KeyError(f"edge {sorted(edge)} is not in the layout")

    # ------------------------------------------------------------ dimensions
    def bounding_box(self) -> Rect:
        rects = [d.rect for d in self.devices]
        points = [p for c in self.channels for p in c.points]
        points.extend(self.node_positions.values())
        box_points = bounding_box_of_points(points)
        if rects:
            return Rect.bounding(rects + [box_points])
        return box_points

    def dimensions(self) -> Tuple[int, int]:
        """(width, height) of the layout, rounded up to whole layout units."""
        box = self.bounding_box()
        return (int(round(box.width)), int(round(box.height)))

    def area(self) -> float:
        box = self.bounding_box()
        return box.area

    def total_channel_length(self) -> float:
        return sum(c.length for c in self.channels)

    def total_bends(self) -> int:
        return sum(c.bends for c in self.channels)

    # ------------------------------------------------------------ validation
    def validate(self) -> List[str]:
        """Check geometric sanity: device overlaps and storage-length deficits."""
        problems: List[str] = []
        for i, dev_a in enumerate(self.devices):
            for dev_b in self.devices[i + 1 :]:
                if dev_a.rect.intersects(dev_b.rect):
                    problems.append(
                        f"devices {dev_a.device_id!r} and {dev_b.device_id!r} overlap"
                    )
        for channel in self.channels:
            if channel.length_deficit() > 1e-6:
                problems.append(
                    f"storage segment {sorted(channel.edge)} is too short: "
                    f"{channel.length:.1f} < required {channel.min_length:.1f}"
                )
        return problems


def layout_from_architecture(
    architecture: ChipArchitecture,
    pitch: float = 5.0,
    storage_min_length: float = 3.0,
) -> PhysicalLayout:
    """Scale the architecture onto a canvas (step 1, dimension ``d_r``).

    Only *used* nodes and edges appear; unused grid resources have already
    been removed by architectural synthesis.  Each grid step spans one channel
    pitch.
    """
    layout = PhysicalLayout(pitch=pitch)
    used_nodes = architecture.used_nodes()
    if not used_nodes:
        return layout

    rows = sorted({architecture.grid.node(n).row for n in used_nodes})
    cols = sorted({architecture.grid.node(n).col for n in used_nodes})
    row_offset = {row: idx for idx, row in enumerate(rows)}
    col_offset = {col: idx for idx, col in enumerate(cols)}

    for node_id in sorted(used_nodes):
        node = architecture.grid.node(node_id)
        layout.node_positions[node_id] = Point(
            x=col_offset[node.col] * pitch,
            y=row_offset[node.row] * pitch,
        )

    storage_edges = {edge for edge, _window in architecture.storage_segments()}
    for eid in sorted(architecture.used_edges(), key=lambda e: tuple(sorted(e))):
        a, b = architecture.grid.edge_endpoints(eid)
        points = [layout.node_positions[a], layout.node_positions[b]]
        is_storage = eid in storage_edges
        layout.channels.append(
            ChannelShape(
                edge=eid,
                points=points,
                min_length=storage_min_length if is_storage else 0.0,
                is_storage=is_storage,
            )
        )
    return layout
