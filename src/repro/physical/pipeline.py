"""End-to-end physical design: scaling → device insertion → compression."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.archsyn.architecture import ChipArchitecture
from repro.devices.device import DeviceLibrary
from repro.physical.compression import CompressionConfig, CompressionResult, compress_layout
from repro.physical.device_insertion import insert_devices
from repro.physical.layout import PhysicalLayout, layout_from_architecture


@dataclass
class PhysicalDesignConfig:
    """Parameters of the physical design stage.

    ``pitch`` is the minimum channel distance specified by the designer (the
    paper scales the architecture by this unit before compression);
    ``storage_segment_length`` is the channel length one cached fluid sample
    requires.
    """

    pitch: float = 5.0
    storage_segment_length: float = 3.0
    min_channel_spacing: float = 1.0
    bend_length_gain: float = 2.0


@dataclass
class PhysicalDesignResult:
    """All three layout stages plus the Table 2 dimension columns."""

    architecture_layout: PhysicalLayout
    expanded_layout: PhysicalLayout
    compact_layout: PhysicalLayout
    architecture_dimensions: Tuple[int, int]  # d_r
    expanded_dimensions: Tuple[int, int]      # d_e
    compact_dimensions: Tuple[int, int]       # d_p
    compression: CompressionResult
    wall_time_s: float

    @property
    def area_reduction(self) -> float:
        """Fractional area saved by compression (d_e vs d_p)."""
        expanded = self.expanded_dimensions[0] * self.expanded_dimensions[1]
        compact = self.compact_dimensions[0] * self.compact_dimensions[1]
        if expanded <= 0:
            return 0.0
        return 1.0 - compact / expanded


def build_physical_design(
    architecture: ChipArchitecture,
    library: DeviceLibrary,
    config: Optional[PhysicalDesignConfig] = None,
) -> PhysicalDesignResult:
    """Run the three-step physical design of Section 3.3 on an architecture."""
    config = config or PhysicalDesignConfig()
    start = time.perf_counter()

    scaled = layout_from_architecture(
        architecture,
        pitch=config.pitch,
        storage_min_length=config.storage_segment_length,
    )
    expanded = insert_devices(scaled, architecture, library)
    compression = compress_layout(
        expanded,
        CompressionConfig(
            min_channel_spacing=config.min_channel_spacing,
            storage_segment_length=config.storage_segment_length,
            bend_length_gain=config.bend_length_gain,
        ),
    )
    elapsed = time.perf_counter() - start

    return PhysicalDesignResult(
        architecture_layout=scaled,
        expanded_layout=expanded,
        compact_layout=compression.layout,
        architecture_dimensions=scaled.dimensions(),
        expanded_dimensions=expanded.dimensions(),
        compact_dimensions=compression.layout.dimensions(),
        compression=compression,
        wall_time_s=elapsed,
    )
