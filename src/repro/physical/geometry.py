"""Small geometry helpers for the layout stage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Point:
    """A point on the layout canvas (layout units)."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle given by its lower-left corner and size."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError("rectangle dimensions must be non-negative")

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    @property
    def center(self) -> Point:
        return Point(self.x + self.width / 2, self.y + self.height / 2)

    @property
    def area(self) -> float:
        return self.width * self.height

    def intersects(self, other: "Rect") -> bool:
        return self.x < other.x2 and other.x < self.x2 and self.y < other.y2 and other.y < self.y2

    def contains_point(self, point: Point) -> bool:
        return self.x <= point.x <= self.x2 and self.y <= point.y <= self.y2

    @staticmethod
    def bounding(rects: Iterable["Rect"]) -> "Rect":
        rects = list(rects)
        if not rects:
            return Rect(0, 0, 0, 0)
        x1 = min(r.x for r in rects)
        y1 = min(r.y for r in rects)
        x2 = max(r.x2 for r in rects)
        y2 = max(r.y2 for r in rects)
        return Rect(x1, y1, x2 - x1, y2 - y1)


def polyline_length(points: Sequence[Point]) -> float:
    """Total Manhattan length of a polyline."""
    return sum(a.manhattan_distance(b) for a, b in zip(points, points[1:]))


def bounding_box_of_points(points: Iterable[Point]) -> Rect:
    points = list(points)
    if not points:
        return Rect(0, 0, 0, 0)
    x1 = min(p.x for p in points)
    y1 = min(p.y for p in points)
    x2 = max(p.x for p in points)
    y2 = max(p.y for p in points)
    return Rect(x1, y1, x2 - x1, y2 - y1)
