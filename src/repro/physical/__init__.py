"""Physical design: from connection graph to compact chip layout (Section 3.3).

The synthesized architecture is a planar connection graph; turning it into a
chip layout takes three steps, mirroring the paper's Fig. 7:

1. **Scaling** — grid nodes are spread on a canvas with one channel pitch per
   grid step; the bounding box of the *used* nodes gives the architecture
   dimension ``d_r`` of Table 2.
2. **Device insertion** — devices are larger than a grid node, so rows and
   columns holding devices are widened by the device footprint, giving the
   expanded dimension ``d_e``.
3. **Iterative compression** — empty rows/columns are removed and channel
   pitches are shrunk toward the minimum; channel segments that must stay
   long enough to cache a fluid sample keep their length through bend
   (serpentine) insertion.  The loop stops when neither dimension can shrink,
   giving the compact dimension ``d_p``.
"""

from repro.physical.geometry import Point, Rect, polyline_length
from repro.physical.layout import ChannelShape, DeviceShape, PhysicalLayout
from repro.physical.device_insertion import insert_devices
from repro.physical.compression import CompressionConfig, CompressionResult, compress_layout
from repro.physical.pipeline import PhysicalDesignConfig, PhysicalDesignResult, build_physical_design
from repro.physical.svg_export import layout_to_svg

__all__ = [
    "Point",
    "Rect",
    "polyline_length",
    "ChannelShape",
    "DeviceShape",
    "PhysicalLayout",
    "insert_devices",
    "CompressionConfig",
    "CompressionResult",
    "compress_layout",
    "PhysicalDesignConfig",
    "PhysicalDesignResult",
    "build_physical_design",
    "layout_to_svg",
]
