"""End-to-end synthesis pipeline (the paper's complete flow).

The flow is an explicit staged pipeline
(:class:`~repro.synthesis.pipeline.SynthesisPipeline`): scheduling & binding
with storage minimization (:class:`~repro.synthesis.pipeline.ScheduleStage`),
architectural synthesis with distributed channel storage
(:class:`~repro.synthesis.pipeline.ArchSynthStage`), and iterative physical
compression (:class:`~repro.synthesis.pipeline.PhysicalStage`).  Each stage
produces a typed, serializable artifact with a content-addressed cache key,
and :class:`SynthesisResult` is a thin view assembled from the three
artifacts.  :func:`synthesize` remains the one-call convenience entry point.
"""

from repro.synthesis.config import FlowConfig, SchedulerEngine, SynthesisEngine
from repro.synthesis.flow import SynthesisResult, synthesize
from repro.synthesis.metrics import FlowMetrics, collect_metrics
from repro.synthesis.pipeline import (
    ArchitectureArtifact,
    ArchSynthStage,
    PhysicalArtifact,
    PhysicalStage,
    ScheduleArtifact,
    ScheduleStage,
    StageExecution,
    SynthesisPipeline,
    stage_invocations,
    reset_stage_invocations,
)
from repro.synthesis.report import format_table2_row, table2_header, result_report

__all__ = [
    "ArchitectureArtifact",
    "ArchSynthStage",
    "FlowConfig",
    "PhysicalArtifact",
    "PhysicalStage",
    "ScheduleArtifact",
    "ScheduleStage",
    "SchedulerEngine",
    "StageExecution",
    "SynthesisEngine",
    "SynthesisPipeline",
    "SynthesisResult",
    "synthesize",
    "stage_invocations",
    "reset_stage_invocations",
    "FlowMetrics",
    "collect_metrics",
    "format_table2_row",
    "table2_header",
    "result_report",
]
