"""End-to-end synthesis pipeline (the paper's complete flow).

:func:`synthesize` chains the three stages — scheduling & binding with
storage minimization, architectural synthesis with distributed channel
storage, and iterative physical compression — and returns a
:class:`SynthesisResult` bundling every intermediate artifact and the metrics
reported in the paper's evaluation (Table 2, Figs. 8–10).
"""

from repro.synthesis.config import FlowConfig, SchedulerEngine, SynthesisEngine
from repro.synthesis.flow import SynthesisResult, synthesize
from repro.synthesis.metrics import FlowMetrics, collect_metrics
from repro.synthesis.report import format_table2_row, table2_header, result_report

__all__ = [
    "FlowConfig",
    "SchedulerEngine",
    "SynthesisEngine",
    "SynthesisResult",
    "synthesize",
    "FlowMetrics",
    "collect_metrics",
    "format_table2_row",
    "table2_header",
    "result_report",
]
