"""Plain-text reporting helpers (Table 2 style rows, result summaries)."""

from __future__ import annotations

from typing import Iterable, List

from repro.scheduling.binding import binding_summary
from repro.synthesis.flow import SynthesisResult
from repro.synthesis.metrics import FlowMetrics, collect_metrics

_TABLE2_COLUMNS = [
    ("Assay", 7),
    ("|O|", 5),
    ("tE", 6),
    ("ts(s)", 8),
    ("G", 6),
    ("ne", 4),
    ("nv", 4),
    ("tr(s)", 8),
    ("dr", 8),
    ("de", 8),
    ("dp", 8),
    ("tp(s)", 8),
]


def table2_header() -> str:
    """Header line matching the paper's Table 2 columns."""
    return " ".join(name.ljust(width) for name, width in _TABLE2_COLUMNS)


def format_table2_row(metrics: FlowMetrics) -> str:
    """One Table 2 row for an assay's metrics."""
    values = [
        metrics.assay,
        str(metrics.num_operations),
        str(metrics.execution_time),
        f"{metrics.scheduling_time_s:.2f}",
        f"{metrics.grid_shape[0]}x{metrics.grid_shape[1]}",
        str(metrics.num_edges),
        str(metrics.num_valves),
        f"{metrics.synthesis_time_s:.2f}",
        f"{metrics.dim_architecture[0]}x{metrics.dim_architecture[1]}",
        f"{metrics.dim_expanded[0]}x{metrics.dim_expanded[1]}",
        f"{metrics.dim_compact[0]}x{metrics.dim_compact[1]}",
        f"{metrics.physical_time_s:.2f}",
    ]
    return " ".join(value.ljust(width) for value, (_, width) in zip(values, _TABLE2_COLUMNS))


def format_table(metrics: Iterable[FlowMetrics]) -> str:
    """Full Table 2 style text table for several assays."""
    lines = [table2_header()]
    lines.extend(format_table2_row(m) for m in metrics)
    return "\n".join(lines)


def result_report(result: SynthesisResult) -> str:
    """Multi-section report of a single synthesis run, for examples/CLI use."""
    metrics = collect_metrics(result)
    lines: List[str] = []
    lines.append(f"=== Synthesis report: {result.graph.name} ===")
    lines.append(
        f"operations: {metrics.num_operations}, devices: {len(result.library)}, "
        f"scheduler: {metrics.scheduler_engine}, synthesizer: {metrics.synthesis_engine}"
    )
    if result.scheduler_backend or result.synthesis_backend:
        parts = []
        if result.scheduler_backend:
            suffix = " (fallback)" if result.scheduler_fallback_used else ""
            parts.append(f"schedule={result.scheduler_backend}{suffix}")
        if result.synthesis_backend:
            suffix = " (fallback)" if result.synthesis_fallback_used else ""
            parts.append(f"archsyn={result.synthesis_backend}{suffix}")
        lines.append("solver backends: " + ", ".join(parts))
    lines.append(
        f"execution time tE = {metrics.execution_time} s "
        f"(scheduling took {metrics.scheduling_time_s:.2f} s)"
    )
    lines.append("binding:")
    lines.extend("  " + line for line in binding_summary(result.schedule))
    lines.append(
        f"architecture: {metrics.grid_shape[0]}x{metrics.grid_shape[1]} grid, "
        f"{metrics.num_edges} channel segments, {metrics.num_valves} valves "
        f"(edge ratio {metrics.edge_ratio:.2f}, valve ratio {metrics.valve_ratio:.2f})"
    )
    lines.append(
        f"storage: {metrics.num_storage_requirements} cached samples, "
        f"peak {metrics.peak_storage} simultaneously, "
        f"{metrics.total_storage_time} s total caching time"
    )
    lines.append(
        f"layout: architecture {metrics.dim_architecture[0]}x{metrics.dim_architecture[1]} -> "
        f"with devices {metrics.dim_expanded[0]}x{metrics.dim_expanded[1]} -> "
        f"compressed {metrics.dim_compact[0]}x{metrics.dim_compact[1]} "
        f"({result.physical.area_reduction:.0%} area saved)"
    )
    return "\n".join(lines)
