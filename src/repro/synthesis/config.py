"""Configuration of the end-to-end synthesis flow."""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple, Union, get_args, get_origin, get_type_hints


def _check_value_type(name: str, value: Any, expected: Any) -> Any:
    """Validate a config value loaded from JSON against its field's type.

    Dataclasses do not type-check, so without this a manifest value like
    ``"false"`` would silently become a truthy ``storage_aware``.  Integral
    floats are accepted for int fields (JSON writers often emit ``10.0``),
    ints are widened for float fields; bools are only valid for bool fields.
    ``Optional``/``Union`` annotations are unwrapped: ``None`` passes when
    admitted, otherwise the value may match any member type.
    """
    if get_origin(expected) is Union:
        members = get_args(expected)
        if value is None and type(None) in members:
            return None
        for member in members:
            if member is type(None):
                continue
            try:
                return _check_value_type(name, value, member)
            except ValueError:
                continue
        names = " | ".join(m.__name__ for m in members)
        raise ValueError(f"flow-config field {name!r} expects {names}, got {value!r}")
    if expected is bool:
        if isinstance(value, bool):
            return value
    elif expected is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
    elif expected is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif isinstance(value, expected):
        return value
    raise ValueError(
        f"flow-config field {name!r} expects {expected.__name__}, got {value!r}"
    )


#: ``FlowConfig`` fields that steer *how* a result is computed, never *what*
#: it is: any value produces byte-identical outputs, so cache keys (stage
#: keys and the batch engine's content hash) must exclude them — otherwise
#: changing the worker count would spuriously miss every cached result.
RUNTIME_ADVICE_FIELDS = frozenset({"verify_workers"})


class SchedulerEngine(enum.Enum):
    """Which scheduling engine to run.

    ``AUTO`` uses the exact ILP up to :attr:`FlowConfig.ilp_operation_limit`
    device operations and the storage-aware list heuristic beyond that —
    mirroring the paper's practice of capping the solver and accepting
    best-effort results for the large assays.
    """

    ILP = "ilp"
    LIST = "list"
    AUTO = "auto"


class SynthesisEngine(enum.Enum):
    """Which architectural-synthesis engine to run."""

    HEURISTIC = "heuristic"
    ILP = "ilp"


@dataclass
class FlowConfig:
    """All knobs of the end-to-end flow in one place.

    The defaults reproduce the paper's experimental setup: two mixers,
    transport time ``u_c = 10 s``, a 4x4 connection grid (5x5 for the largest
    assay), objective weights giving completion time priority over storage,
    and a channel pitch of 5 layout units.
    """

    # Devices.
    num_mixers: int = 2
    num_detectors: int = 0
    num_heaters: int = 0

    # Scheduling.
    scheduler: SchedulerEngine = SchedulerEngine.AUTO
    transport_time: int = 10
    alpha: float = 100.0
    beta: float = 1.0
    storage_aware: bool = True
    ilp_time_limit_s: float = 60.0
    ilp_operation_limit: int = 14
    #: Registered solver backend the scheduling ILP runs on (see
    #: :mod:`repro.ilp.backends`).  The default portfolio solves with
    #: HiGHS under the time cap and falls back to the dependency-free
    #: branch and bound when HiGHS is unavailable or returns no usable
    #: incumbent, so the limit case degrades to best-effort instead of
    #: aborting.  Participates in the schedule stage's cache key.
    scheduler_backend: str = "portfolio"
    #: Relative MIP gap passed to *both* ILPs (scheduling and architecture
    #: synthesis); ``None`` solves to optimality within the time caps.
    mip_rel_gap: Optional[float] = None

    # Architectural synthesis.
    synthesis: SynthesisEngine = SynthesisEngine.HEURISTIC
    grid_rows: int = 4
    grid_cols: int = 4
    auto_expand_grid: bool = True
    max_grid_dim: int = 9
    archsyn_time_limit_s: float = 120.0
    #: Registered solver backend the architecture-synthesis ILP runs on;
    #: same semantics as :attr:`scheduler_backend`, keyed into the archsyn
    #: stage's cache key.
    archsyn_backend: str = "portfolio"
    #: Root seed threaded through the heuristic router's tie-breaking (and
    #: available to synthetic-graph generation via the same derivation
    #: helper, :func:`repro.keys.derive_seed`).  ``0`` keeps the canonical
    #: lexicographic tie-break order that the golden regression pins were
    #: recorded with; any non-zero seed reorders equal-cost routing choices
    #: deterministically and bit-reproducibly across worker processes, which
    #: makes ``seed`` a sweepable axis for routing-diversity experiments.
    seed: int = 0

    # Physical design.
    pitch: float = 5.0
    storage_segment_length: float = 3.0
    min_channel_spacing: float = 1.0

    # Stochastic verification (the optional fourth pipeline stage).
    #: Run the Monte-Carlo verification stage after physical design.  Off by
    #: default: the deterministic three-stage flow (and every golden pin
    #: recorded against it) is unchanged unless a config opts in.
    verify: bool = False
    #: Number of Monte-Carlo trials replayed per verification.
    verify_trials: int = 32
    #: Root seed of the verification trials; each trial derives independent
    #: jitter and fault streams via :func:`repro.keys.derive_seed`, so the
    #: whole distribution is reproducible bit-for-bit across processes.
    verify_seed: int = 0
    #: Duration-jitter distribution: ``"none"`` replays nominal durations,
    #: ``"uniform"`` inflates each duration by ``x(1 + spread*U[0,1])``,
    #: ``"normal"`` by ``x(1 + |N(0, spread)|)``.  Inflation-only by design
    #: so a jittered trial can never beat the deterministic schedule.
    verify_jitter: str = "none"
    #: Spread parameter of the jitter distribution (fraction of nominal).
    verify_jitter_spread: float = 0.1
    #: Per-operation probability that the assigned device faults mid-run.
    verify_fault_rate: float = 0.0
    #: Per-transport probability that a routing channel faults, forcing a
    #: reroute that adds one transport time to the affected precedence edge.
    verify_channel_fault_rate: float = 0.0
    #: Retry attempts on the faulted device before migrating the operation
    #: to a compatible spare; if no spare exists the trial is unrecovered.
    verify_max_retries: int = 1
    #: Wash time inserted between consecutive operations on one device when
    #: the later operation is not a direct successor of the earlier one
    #: (contamination model); ``0`` disables washes.
    verify_wash_time: int = 0
    #: Worker processes the verification stage shards its trials across.
    #: Runtime advice, not a result knob: per-trial random streams are
    #: derived from the trial *index*, so the report is byte-identical for
    #: every worker count — which is why this field is excluded from cache
    #: keys (see :data:`RUNTIME_ADVICE_FIELDS`), like an ILP warm start.
    verify_workers: int = 1

    def __post_init__(self) -> None:
        if self.num_mixers < 1:
            raise ValueError("at least one mixer is required")
        if self.transport_time < 0:
            raise ValueError("transport_time must be non-negative")
        if self.grid_rows < 2 or self.grid_cols < 2:
            raise ValueError("the connection grid must be at least 2x2")
        # Imported lazily so custom backends registered at runtime are
        # visible; a config naming an unknown backend must fail at
        # construction (manifest load, CLI parse), not mid-solve.
        from repro.ilp.backends import backend_names

        known = backend_names()
        for field_name in ("scheduler_backend", "archsyn_backend"):
            backend = getattr(self, field_name)
            if backend not in known:
                raise ValueError(
                    f"{field_name} names unknown solver backend {backend!r}; "
                    f"registered backends: {list(known)}"
                )
        if self.verify_trials < 1:
            raise ValueError("verify_trials must be at least 1")
        if self.verify_jitter not in ("none", "uniform", "normal"):
            raise ValueError(
                f"verify_jitter must be 'none', 'uniform' or 'normal', "
                f"got {self.verify_jitter!r}"
            )
        if self.verify_jitter_spread < 0:
            raise ValueError("verify_jitter_spread must be non-negative")
        for rate_field in ("verify_fault_rate", "verify_channel_fault_rate"):
            rate = getattr(self, rate_field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_field} must be in [0, 1], got {rate!r}")
        if self.verify_max_retries < 0:
            raise ValueError("verify_max_retries must be non-negative")
        if self.verify_wash_time < 0:
            raise ValueError("verify_wash_time must be non-negative")
        if self.verify_workers < 1:
            raise ValueError("verify_workers must be at least 1")

    def grid_shape(self) -> Tuple[int, int]:
        return (self.grid_rows, self.grid_cols)

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-serializable form (enums become their string values).

        The payload round-trips through :meth:`from_dict` and is hashed by the
        batch engine's content-addressed result cache, so every field that can
        change a synthesis outcome must appear here.
        """
        data: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            data[spec.name] = value.value if isinstance(value, enum.Enum) else value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowConfig":
        """Rebuild a configuration from :meth:`to_dict` output or a manifest.

        Raises
        ------
        ValueError
            On unknown keys, invalid enum values or wrong-typed values, so
            typos in a batch manifest fail loudly instead of silently using
            defaults (or silently flipping behavior — a JSON string like
            ``"false"`` is truthy and must not pass for a bool).
        """
        # Expected types come from the field annotations (resolved once per
        # call; ``from __future__ import annotations`` makes them strings),
        # not ``type(field.default)`` — the latter would misfire on any
        # future Optional or default_factory field.
        hints = get_type_hints(cls)
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown flow-config keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            if name == "scheduler":
                value = SchedulerEngine(value) if not isinstance(value, SchedulerEngine) else value
            elif name == "synthesis":
                value = SynthesisEngine(value) if not isinstance(value, SynthesisEngine) else value
            else:
                value = _check_value_type(name, value, hints[name])
            kwargs[name] = value
        return cls(**kwargs)

    @classmethod
    def paper_defaults_for(cls, assay_name: str) -> "FlowConfig":
        """Per-assay settings chosen to match the paper's Table 2 setup.

        The paper does not list its device counts; these are back-solved so
        the assay completion times land in the same range (see
        ``EXPERIMENTS.md`` for the paper-vs-measured comparison): the PCR
        critical path of 290 s needs three mixers, the random assays need
        four to reach the reported throughput, and IVD/CPA add detectors for
        their optical steps.
        """
        config = cls()
        if assay_name.startswith("RA"):
            config.num_mixers = 4
        if assay_name == "RA100":
            config.grid_rows = config.grid_cols = 5
        if assay_name == "PCR":
            config.num_mixers = 2
        if assay_name == "CPA":
            config.num_mixers = 3
            config.num_detectors = 2
        if assay_name == "IVD":
            config.num_mixers = 2
            config.num_detectors = 2
        return config


def apply_solver_override(config: FlowConfig, solver: Optional[str]) -> FlowConfig:
    """A copy of ``config`` with both ILP backend fields forced to ``solver``.

    The one definition of the ``--solver`` override semantics, shared by the
    CLI (single/batch/sweep modes), ``repro bench``, and the synthesis
    service's server-side rewrite.  ``None`` returns the config unchanged;
    an unknown backend name fails ``FlowConfig`` validation immediately.
    """
    if solver is None:
        return config
    return replace(config, scheduler_backend=solver, archsyn_backend=solver)


def solver_options_for(config: FlowConfig, stage: str):
    """The single ``FlowConfig`` → ``SolverOptions`` construction point.

    Both exact engines receive their solver options from here (threaded via
    the ``solver`` field of their engine configs), so no engine can drift
    from the flow configuration again — historically the architecture
    synthesizer built its options from ``time_limit_s`` alone and silently
    dropped any configured MIP gap.

    Parameters
    ----------
    stage:
        ``"scheduler"`` (uses ``ilp_time_limit_s``/``scheduler_backend``) or
        ``"archsyn"`` (uses ``archsyn_time_limit_s``/``archsyn_backend``);
        both share :attr:`FlowConfig.mip_rel_gap`.
    """
    from repro.ilp.solver import SolverOptions

    if stage == "scheduler":
        return SolverOptions(
            time_limit_s=config.ilp_time_limit_s,
            mip_rel_gap=config.mip_rel_gap,
            backend=config.scheduler_backend,
        )
    if stage == "archsyn":
        return SolverOptions(
            time_limit_s=config.archsyn_time_limit_s,
            mip_rel_gap=config.mip_rel_gap,
            backend=config.archsyn_backend,
        )
    raise ValueError(f"unknown solver stage {stage!r}; expected 'scheduler' or 'archsyn'")
