"""Configuration of the end-to-end synthesis flow."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class SchedulerEngine(enum.Enum):
    """Which scheduling engine to run.

    ``AUTO`` uses the exact ILP up to :attr:`FlowConfig.ilp_operation_limit`
    device operations and the storage-aware list heuristic beyond that —
    mirroring the paper's practice of capping the solver and accepting
    best-effort results for the large assays.
    """

    ILP = "ilp"
    LIST = "list"
    AUTO = "auto"


class SynthesisEngine(enum.Enum):
    """Which architectural-synthesis engine to run."""

    HEURISTIC = "heuristic"
    ILP = "ilp"


@dataclass
class FlowConfig:
    """All knobs of the end-to-end flow in one place.

    The defaults reproduce the paper's experimental setup: two mixers,
    transport time ``u_c = 10 s``, a 4x4 connection grid (5x5 for the largest
    assay), objective weights giving completion time priority over storage,
    and a channel pitch of 5 layout units.
    """

    # Devices.
    num_mixers: int = 2
    num_detectors: int = 0
    num_heaters: int = 0

    # Scheduling.
    scheduler: SchedulerEngine = SchedulerEngine.AUTO
    transport_time: int = 10
    alpha: float = 100.0
    beta: float = 1.0
    storage_aware: bool = True
    ilp_time_limit_s: float = 60.0
    ilp_operation_limit: int = 14

    # Architectural synthesis.
    synthesis: SynthesisEngine = SynthesisEngine.HEURISTIC
    grid_rows: int = 4
    grid_cols: int = 4
    auto_expand_grid: bool = True
    max_grid_dim: int = 9
    archsyn_time_limit_s: float = 120.0

    # Physical design.
    pitch: float = 5.0
    storage_segment_length: float = 3.0
    min_channel_spacing: float = 1.0

    def __post_init__(self) -> None:
        if self.num_mixers < 1:
            raise ValueError("at least one mixer is required")
        if self.transport_time < 0:
            raise ValueError("transport_time must be non-negative")
        if self.grid_rows < 2 or self.grid_cols < 2:
            raise ValueError("the connection grid must be at least 2x2")

    def grid_shape(self) -> Tuple[int, int]:
        return (self.grid_rows, self.grid_cols)

    @classmethod
    def paper_defaults_for(cls, assay_name: str) -> "FlowConfig":
        """Per-assay settings chosen to match the paper's Table 2 setup.

        The paper does not list its device counts; these are back-solved so
        the assay completion times land in the same range (see
        ``EXPERIMENTS.md`` for the paper-vs-measured comparison): the PCR
        critical path of 290 s needs three mixers, the random assays need
        four to reach the reported throughput, and IVD/CPA add detectors for
        their optical steps.
        """
        config = cls()
        if assay_name.startswith("RA"):
            config.num_mixers = 4
        if assay_name == "RA100":
            config.grid_rows = config.grid_cols = 5
        if assay_name == "PCR":
            config.num_mixers = 2
        if assay_name == "CPA":
            config.num_mixers = 3
            config.num_detectors = 2
        if assay_name == "IVD":
            config.num_mixers = 2
            config.num_detectors = 2
        return config
