"""Staged synthesis pipeline: typed artifacts + per-stage cache keys.

The paper's flow is inherently staged — scheduling/binding, architectural
synthesis (placement + routing), physical design — and this module makes the
stages explicit instead of hiding them inside one opaque ``synthesize()``
call:

* :class:`ScheduleStage` → :class:`ScheduleArtifact` (the bound, timed
  schedule);
* :class:`ArchSynthStage` → :class:`ArchitectureArtifact` (the placed and
  routed connection grid);
* :class:`PhysicalStage` → :class:`PhysicalArtifact` (the scaled, expanded
  and compacted layout);
* :class:`VerifyStage` → :class:`VerificationArtifact` (optional, when
  ``FlowConfig.verify`` is set: the Monte-Carlo makespan distribution and
  fault-recovery report, keyed off the archsyn key).

Each stage declares the exact slice of :class:`FlowConfig` fields it
consumes (:attr:`Stage.config_fields`), and its cache key is::

    sha256(KEY_VERSION, stage name, upstream artifact hash, config slice)

where the first stage's upstream hash is the canonical graph fingerprint and
every later stage's upstream hash is its predecessor's *key* (the stages are
deterministic, so the key of an artifact is a faithful content address for
it).  Changing only a routing knob therefore leaves the schedule key — and
any cached :class:`ScheduleArtifact` — untouched, and changing only
physical-design parameters reuses schedule *and* architecture.  This is the
seam the batch engine (:mod:`repro.batch.engine`) memoizes and parallelizes
at, and :class:`~repro.synthesis.flow.SynthesisResult` is just a thin view
assembled from the three artifacts.

The module also keeps in-process solver-invocation counters
(:func:`stage_invocations`): every *actual* stage execution — a scheduling
solve, an architecture synthesis, a physical-design run — increments its
stage's counter, while cache replays do not.  Tests use the counters to
prove stage-granular reuse (e.g. a two-point sweep varying only the pitch
performs exactly one scheduling solve).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.graph.serialization import canonical_graph_dict
from repro.graph.validation import assert_valid
from repro import keys
from repro.keys import stable_digest
from repro.physical.pipeline import PhysicalDesignConfig, PhysicalDesignResult, build_physical_design
from repro.synthesis.config import FlowConfig
from repro.synthesis.flow import (
    SynthesisResult,
    _build_scheduler,
    _build_synthesizer,
    build_library,
)

# --------------------------------------------------------------------- counters

#: In-process count of actual stage executions (cache replays excluded).
_STAGE_INVOCATIONS: Dict[str, int] = {}


def record_invocation(stage_name: str) -> None:
    _STAGE_INVOCATIONS[stage_name] = _STAGE_INVOCATIONS.get(stage_name, 0) + 1


def stage_invocations() -> Dict[str, int]:
    """Copy of the per-stage solver-invocation counters (this process)."""
    return dict(_STAGE_INVOCATIONS)


def reset_stage_invocations() -> None:
    _STAGE_INVOCATIONS.clear()


# -------------------------------------------------------------------- artifacts


@dataclass
class ScheduleArtifact:
    """Output of :class:`ScheduleStage`: the bound, timed schedule.

    The wall time of the original solve travels with the artifact, so a
    replayed schedule reports the solver time that actually produced it
    (mirroring the run-level cache semantics of PR 1).
    """

    schedule: Any  # repro.scheduling.schedule.Schedule
    scheduler_engine: str
    scheduling_time_s: float
    #: Solver backend that produced the schedule (``None`` for the list
    #: scheduler) and whether the portfolio abandoned its primary.
    backend_name: Optional[str] = None
    fallback_used: bool = False
    #: Whether the solving backend consumed a warm start (a neighboring
    #: candidate's schedule, or the scheduler's own heuristic seed).
    warm_start_used: bool = False


@dataclass
class ArchitectureArtifact:
    """Output of :class:`ArchSynthStage`: the placed and routed grid."""

    architecture: Any  # repro.archsyn.architecture.ChipArchitecture
    synthesis_engine: str
    synthesis_time_s: float
    #: Solver backend that produced the architecture (``None`` for the
    #: heuristic router) and whether the portfolio abandoned its primary.
    backend_name: Optional[str] = None
    fallback_used: bool = False


@dataclass
class PhysicalArtifact:
    """Output of :class:`PhysicalStage`: all three layout steps."""

    physical: PhysicalDesignResult


@dataclass
class VerificationArtifact:
    """Output of :class:`VerifyStage`: the Monte-Carlo distribution report.

    ``simulation_problems`` carries the deterministic replay's diagnostics
    (:attr:`repro.simulation.simulator.SimulationResult.problems`); it is
    empty in every artifact that exists, because a non-empty list fails the
    stage with :class:`VerificationError` instead of producing one — but it
    travels in the payload so downstream consumers see the check happened.
    """

    report: Any  # repro.simulation.montecarlo.VerificationReport
    verification_time_s: float
    simulation_problems: List[str] = None  # type: ignore[assignment]
    simulation_transports: int = 0
    simulation_storage_intervals: int = 0

    def __post_init__(self) -> None:
        if self.simulation_problems is None:
            self.simulation_problems = []


class VerificationError(RuntimeError):
    """A verification stage failed: the deterministic replay found conflicts.

    Raised with the full list of simulator diagnostics so a batch report
    (which memoizes the failure under the stage key) points straight at the
    offending resource reservations instead of a bare "stage failed".
    """

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__(
            "simulation replay found conflicts: " + "; ".join(self.problems)
        )


@dataclass
class StageContext:
    """Everything a stage may read besides its upstream artifact.

    ``warm_start`` is an optional known-good schedule of the same graph
    (from a neighboring configuration) handed to the schedule stage as a
    solver seed.  ``schedule_workspace`` is an optional
    :class:`~repro.scheduling.list_scheduler.ListSchedulerWorkspace` the
    list scheduler reuses across repeated probes of one graph.  Both are
    runtime advice only: they never enter any cache key and never change
    the produced schedule — a hint that does not fit the current
    configuration is ignored.
    """

    graph: SequencingGraph
    config: FlowConfig
    library: DeviceLibrary
    warm_start: Optional[Any] = None  # repro.scheduling.schedule.Schedule
    schedule_workspace: Optional[Any] = None  # ListSchedulerWorkspace


@dataclass(frozen=True)
class StageExecution:
    """How one stage of one job was satisfied (for batch reporting).

    ``action`` is ``"ran"`` (this job paid for the execution), ``"replayed"``
    (served from the stage cache) or ``"shared"`` (computed once for another
    job of the same batch and shared).  ``backend`` is the solver backend
    that produced the stage's artifact (regardless of which job paid for
    it; ``None`` for heuristic stages and the physical stage), and
    ``fallback_used`` records a portfolio solve that abandoned its primary,
    and ``warm_start_used`` whether that solve consumed a warm start.
    """

    stage: str
    key: str
    action: str
    wall_time_s: float = 0.0
    backend: Optional[str] = None
    fallback_used: bool = False
    warm_start_used: bool = False


# ----------------------------------------------------------------------- stages


class Stage:
    """One step of the synthesis pipeline.

    Subclasses set :attr:`name`, declare the :class:`FlowConfig` fields they
    consume in :attr:`config_fields` (the *only* fields that enter their
    cache key — a stage whose slice is untouched by a config change replays
    its cached artifact), and implement :meth:`run`.
    """

    name: str = ""
    config_fields: Tuple[str, ...] = ()
    #: Index of the planned stage whose *key* is this stage's upstream hash;
    #: ``None`` chains off the immediately preceding stage.  The verify
    #: stage sets this to the archsyn tier so physical-only config changes
    #: (pitch, spacing) never invalidate cached verification reports.
    upstream_tier: Optional[int] = None

    def config_slice(self, config: FlowConfig) -> Dict[str, Any]:
        data = config.to_dict()
        return {field: data[field] for field in self.config_fields}

    def upstream_for(self, artifacts: Sequence[Any]) -> Any:
        """The upstream value :meth:`run` receives, given prior artifacts."""
        return artifacts[-1] if artifacts else None

    def key(self, upstream_hash: str, config: FlowConfig) -> str:
        return stable_digest(
            {
                "version": keys.KEY_VERSION,
                "stage": self.name,
                "upstream": upstream_hash,
                "config": self.config_slice(config),
            }
        )

    def run(self, context: StageContext, upstream: Any) -> Any:
        raise NotImplementedError


class ScheduleStage(Stage):
    """Scheduling & binding (Section 3.1): operations → devices → times."""

    name = "schedule"
    config_fields = (
        "num_mixers",
        "num_detectors",
        "num_heaters",
        "scheduler",
        "transport_time",
        "alpha",
        "beta",
        "storage_aware",
        "ilp_time_limit_s",
        "ilp_operation_limit",
        "scheduler_backend",
        "mip_rel_gap",
    )

    def run(self, context: StageContext, upstream: None) -> ScheduleArtifact:
        record_invocation(self.name)
        scheduler, scheduler_name = _build_scheduler(
            context.config, context.library, context.graph
        )
        start = time.perf_counter()
        if scheduler_name == "ilp" and context.warm_start is not None:
            schedule = scheduler.schedule(context.graph, warm_hint=context.warm_start)
        elif scheduler_name == "list" and context.schedule_workspace is not None:
            schedule = scheduler.schedule(
                context.graph, workspace=context.schedule_workspace
            )
        else:
            schedule = scheduler.schedule(context.graph)
        elapsed = time.perf_counter() - start
        return ScheduleArtifact(
            schedule=schedule,
            scheduler_engine=scheduler_name,
            scheduling_time_s=elapsed,
            backend_name=getattr(scheduler, "last_backend", None),
            fallback_used=getattr(scheduler, "last_fallback_used", False),
            warm_start_used=getattr(scheduler, "last_warm_start_used", False),
        )


class ArchSynthStage(Stage):
    """Architectural synthesis (Section 3.2): placement + routing."""

    name = "archsyn"
    config_fields = (
        "synthesis",
        "grid_rows",
        "grid_cols",
        "auto_expand_grid",
        "max_grid_dim",
        "archsyn_time_limit_s",
        "archsyn_backend",
        "mip_rel_gap",
        "seed",
    )

    def run(self, context: StageContext, upstream: ScheduleArtifact) -> ArchitectureArtifact:
        record_invocation(self.name)
        synthesizer, synthesis_name = _build_synthesizer(context.config)
        start = time.perf_counter()
        architecture = synthesizer.synthesize(upstream.schedule)
        elapsed = time.perf_counter() - start
        return ArchitectureArtifact(
            architecture=architecture,
            synthesis_engine=synthesis_name,
            synthesis_time_s=elapsed,
            backend_name=getattr(synthesizer, "last_backend", None),
            fallback_used=getattr(synthesizer, "last_fallback_used", False),
        )


class PhysicalStage(Stage):
    """Physical design (Section 3.3): scaling → device insertion → compaction.

    The device counts appear in this stage's slice because device insertion
    reads the library's footprints; they also feed the schedule stage, so
    changing them invalidates the whole chain (as it must).
    """

    name = "physical"
    config_fields = (
        "pitch",
        "storage_segment_length",
        "min_channel_spacing",
        "num_mixers",
        "num_detectors",
        "num_heaters",
    )

    def run(self, context: StageContext, upstream: ArchitectureArtifact) -> PhysicalArtifact:
        record_invocation(self.name)
        config = context.config
        physical = build_physical_design(
            upstream.architecture,
            context.library,
            PhysicalDesignConfig(
                pitch=config.pitch,
                storage_segment_length=config.storage_segment_length,
                min_channel_spacing=config.min_channel_spacing,
            ),
        )
        return PhysicalArtifact(physical=physical)


class VerifyStage(Stage):
    """Stochastic verification: Monte-Carlo replay of the bound schedule.

    Runs after physical design but consumes only the schedule and the
    architecture, so its cache key chains off the *archsyn* key
    (:attr:`upstream_tier`): a pitch-only sweep replays cached verification
    reports just like it replays cached schedules.

    Before sampling, the deterministic :class:`~repro.simulation.simulator.
    ChipSimulator` replay runs once; any resource conflict it reports
    (``SimulationResult.problems``) fails the stage with a
    :class:`VerificationError` carrying the diagnostics — the conflicts
    used to be silently dropped.
    """

    name = "verify"
    config_fields = (
        "verify",
        "verify_trials",
        "verify_seed",
        "verify_jitter",
        "verify_jitter_spread",
        "verify_fault_rate",
        "verify_channel_fault_rate",
        "verify_max_retries",
        "verify_wash_time",
        "transport_time",
    )
    upstream_tier = 1  # chain off the archsyn key, not the physical key

    def upstream_for(self, artifacts: Sequence[Any]) -> Any:
        """The (schedule, architecture) artifact pair verification reads."""
        return (artifacts[0], artifacts[1])

    def run(self, context: StageContext, upstream: Any) -> VerificationArtifact:
        record_invocation(self.name)
        # Imported here: repro.simulation has no pipeline dependency and
        # must stay importable on its own (it predates the stage).
        from repro.simulation.montecarlo import MonteCarloConfig, MonteCarloEngine
        from repro.simulation.simulator import ChipSimulator

        schedule_art, arch_art = upstream
        start = time.perf_counter()
        replay = ChipSimulator(schedule_art.schedule, arch_art.architecture).run()
        if not replay.is_valid:
            raise VerificationError(replay.problems)
        report = MonteCarloEngine(
            schedule_art.schedule,
            context.library,
            MonteCarloConfig.from_flow_config(context.config),
        ).run()
        return VerificationArtifact(
            report=report,
            verification_time_s=time.perf_counter() - start,
            simulation_problems=list(replay.problems),
            simulation_transports=replay.total_transports,
            simulation_storage_intervals=replay.total_storage_intervals,
        )


#: Stage singletons (stages are stateless) in pipeline order.
SCHEDULE_STAGE = ScheduleStage()
ARCHSYN_STAGE = ArchSynthStage()
PHYSICAL_STAGE = PhysicalStage()
VERIFY_STAGE = VerifyStage()
DEFAULT_STAGES: Tuple[Stage, ...] = (SCHEDULE_STAGE, ARCHSYN_STAGE, PHYSICAL_STAGE)
STAGES_BY_NAME: Dict[str, Stage] = {
    stage.name: stage for stage in DEFAULT_STAGES + (VERIFY_STAGE,)
}


def stage_by_name(name: str) -> Stage:
    """Resolve a stage singleton by name (used by pool worker payloads)."""
    try:
        return STAGES_BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown pipeline stage {name!r}") from None


# --------------------------------------------------------------------- pipeline


@dataclass(frozen=True)
class PlannedStage:
    """One stage of a concrete job plus its content-addressed key."""

    stage: Stage
    key: str


def graph_fingerprint(graph: SequencingGraph) -> str:
    """Canonical content hash of a graph (name excluded, order-invariant)."""
    payload = canonical_graph_dict(graph)
    payload.pop("name", None)
    return stable_digest({"version": keys.KEY_VERSION, "graph": payload})


class SynthesisPipeline:
    """The explicit three-stage flow with optional per-stage caching.

    ``run`` executes the stages in order; with a cache, each stage first
    looks its key up and replays the artifact on a hit, so e.g. re-running
    with only a different ``pitch`` performs zero scheduling solves and zero
    architecture syntheses.  Passing an explicit device ``library`` disables
    caching for that run: the keys address configs, not ad-hoc libraries.
    """

    def __init__(self, stages: Optional[Sequence[Stage]] = None) -> None:
        self.stages: Tuple[Stage, ...] = tuple(stages) if stages else DEFAULT_STAGES

    def stages_for(self, config: FlowConfig) -> Tuple[Stage, ...]:
        """The stage chain one concrete config runs.

        A config with ``verify=True`` appends the Monte-Carlo verification
        stage to the default chain; explicitly customized pipelines are
        left exactly as constructed.
        """
        if config.verify and self.stages == DEFAULT_STAGES:
            return self.stages + (VERIFY_STAGE,)
        return self.stages

    def plan(
        self,
        graph: SequencingGraph,
        config: FlowConfig,
        graph_hash: Optional[str] = None,
    ) -> List[PlannedStage]:
        """The stage/key chain ``run`` would use, without executing anything.

        ``graph_hash`` lets callers that already computed the graph's
        :func:`graph_fingerprint` (the batch engine computes it once per
        job, for the run-level key) skip re-canonicalizing the graph.
        Stages with an explicit :attr:`Stage.upstream_tier` chain off that
        tier's key instead of their predecessor's.
        """
        root = graph_hash if graph_hash is not None else graph_fingerprint(graph)
        planned: List[PlannedStage] = []
        keys_so_far: List[str] = []
        for stage in self.stages_for(config):
            if not keys_so_far:
                upstream = root
            elif stage.upstream_tier is not None:
                upstream = keys_so_far[stage.upstream_tier]
            else:
                upstream = keys_so_far[-1]
            key = stage.key(upstream, config)
            planned.append(PlannedStage(stage=stage, key=key))
            keys_so_far.append(key)
        return planned

    def run(
        self,
        graph: SequencingGraph,
        config: Optional[FlowConfig] = None,
        library: Optional[DeviceLibrary] = None,
        cache: Optional[Any] = None,
        executions: Optional[List[StageExecution]] = None,
        graph_hash: Optional[str] = None,
        warm_start: Optional[Any] = None,
    ) -> SynthesisResult:
        """Run (or replay) all stages and assemble a :class:`SynthesisResult`.

        Parameters
        ----------
        cache:
            A :class:`repro.batch.cache.ResultCache` (or anything with
            ``get``/``put``); stage artifacts are looked up and stored under
            their stage keys.  ``None`` runs everything.
        executions:
            When given, one :class:`StageExecution` per stage is appended,
            recording whether the stage ran or replayed and how long it took.
        graph_hash:
            Optional precomputed :func:`graph_fingerprint` of ``graph``.
        warm_start:
            Optional schedule of the same graph used to seed the schedule
            stage's solver (see :class:`StageContext`); never keyed.
        """
        config = config or FlowConfig()
        assert_valid(graph)
        use_cache = cache is not None and library is None
        library = library or build_library(config)
        context = StageContext(
            graph=graph, config=config, library=library, warm_start=warm_start
        )

        planned = self.plan(graph, config, graph_hash=graph_hash) if use_cache else [
            PlannedStage(stage=stage, key="") for stage in self.stages_for(config)
        ]
        artifacts: List[Any] = []
        for planned_stage in planned:
            stage = planned_stage.stage
            start = time.perf_counter()
            with obs_span(
                f"stage:{stage.name}", category="stage", stage=stage.name
            ) as stage_span:
                artifact = cache.get(planned_stage.key) if use_cache else None
                if artifact is not None:
                    action = "replayed"
                else:
                    try:
                        artifact = stage.run(context, stage.upstream_for(artifacts))
                    except BaseException:
                        # Under a single-flight cache the miss above *claimed*
                        # the key; a failed stage must release exactly that
                        # claim (and no other) so concurrent waiters can take
                        # over instead of sitting out the claim timeout.
                        if use_cache:
                            abandon = getattr(cache, "abandon", None)
                            if abandon is not None:
                                abandon(planned_stage.key)
                        raise
                    if use_cache:
                        cache.put(planned_stage.key, artifact)
                    action = "ran"
                stage_span.set(action=action, key=planned_stage.key[:16])
            wall = time.perf_counter() - start
            obs_metrics.stage_wall_histogram().observe(
                wall, stage=stage.name, action=action
            )
            if executions is not None:
                executions.append(
                    StageExecution(
                        stage=stage.name,
                        key=planned_stage.key,
                        action=action,
                        wall_time_s=wall,
                        backend=getattr(artifact, "backend_name", None),
                        fallback_used=getattr(artifact, "fallback_used", False),
                        warm_start_used=getattr(artifact, "warm_start_used", False),
                    )
                )
            artifacts.append(artifact)

        schedule_art, arch_art, physical_art = artifacts[:3]
        return SynthesisResult.from_artifacts(
            graph=graph,
            library=library,
            config=config,
            schedule_artifact=schedule_art,
            architecture_artifact=arch_art,
            physical_artifact=physical_art,
            verification_artifact=artifacts[3] if len(artifacts) > 3 else None,
        )


def covered_config_fields() -> set:
    """Union of all stage config slices (tested to equal FlowConfig's fields).

    Guards the cache keys against silent staleness: a new :class:`FlowConfig`
    field that no stage declares would change synthesis behavior without
    changing any stage key, so a test asserts this union stays complete.
    """
    covered: set = set()
    for stage in DEFAULT_STAGES + (VERIFY_STAGE,):
        covered.update(stage.config_fields)
    return covered
