"""The end-to-end synthesis flow.

Since the staged refactor, the actual execution lives in
:mod:`repro.synthesis.pipeline` (``ScheduleStage`` → ``ArchSynthStage`` →
``PhysicalStage`` with typed, individually cacheable artifacts); this module
keeps the public entry point :func:`synthesize`, the engine builders the
stages delegate to, and :class:`SynthesisResult` — now a thin view assembled
from the three stage artifacts so existing callers and tests are unaffected
by where each piece was computed (fresh run, stage replay, or a mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.archsyn.architecture import ChipArchitecture
from repro.archsyn.ilp_synthesis import IlpSynthesisConfig, IlpSynthesizer
from repro.archsyn.router import HeuristicSynthesizer, SynthesisConfig
from repro.devices.device import DeviceLibrary, default_device_library
from repro.graph.sequencing_graph import SequencingGraph
from repro.physical.pipeline import PhysicalDesignResult
from repro.scheduling.ilp_scheduler import IlpScheduler, IlpSchedulerConfig
from repro.scheduling.list_scheduler import ListScheduler, ListSchedulerConfig
from repro.scheduling.schedule import Schedule
from repro.synthesis.config import (
    FlowConfig,
    SchedulerEngine,
    SynthesisEngine,
    solver_options_for,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.synthesis.pipeline import (
        ArchitectureArtifact,
        PhysicalArtifact,
        ScheduleArtifact,
    )


@dataclass
class SynthesisResult:
    """Everything the flow produces for one assay.

    A thin view over the three stage artifacts: the fields below are exactly
    what :meth:`from_artifacts` copies out of a
    (:class:`~repro.synthesis.pipeline.ScheduleArtifact`,
    :class:`~repro.synthesis.pipeline.ArchitectureArtifact`,
    :class:`~repro.synthesis.pipeline.PhysicalArtifact`) triple, so a result
    assembled from cached artifacts is indistinguishable from a fresh run.
    """

    graph: SequencingGraph
    library: DeviceLibrary
    config: FlowConfig
    schedule: Schedule
    architecture: ChipArchitecture
    physical: PhysicalDesignResult
    scheduling_time_s: float
    synthesis_time_s: float
    physical_time_s: float
    scheduler_engine: str
    synthesis_engine: str
    #: Solver backend that produced each exact stage (``None`` for the
    #: heuristic engines, which never invoke a MILP backend), plus whether
    #: the portfolio had to abandon its primary to get there.
    scheduler_backend: Optional[str] = None
    synthesis_backend: Optional[str] = None
    scheduler_fallback_used: bool = False
    synthesis_fallback_used: bool = False
    #: Whether the scheduling solve consumed a warm-start incumbent (only
    #: the branch-and-bound backend can; HiGHS through scipy has no
    #: warm-start API, and the heuristic engines never see one).
    scheduler_warm_start_used: bool = False
    #: Monte-Carlo verification report
    #: (:class:`repro.simulation.montecarlo.VerificationReport`) when the
    #: config enabled the verify stage; ``None`` on the three-stage flow.
    verification: Optional[object] = None
    verification_time_s: float = 0.0
    #: Deterministic-replay diagnostics propagated from the verify stage
    #: (always empty on a successful run — conflicts fail the stage).
    simulation_problems: Optional[list] = None

    @property
    def execution_time(self) -> int:
        """The assay completion time ``t_E``."""
        return self.schedule.makespan

    @property
    def total_runtime_s(self) -> float:
        return self.scheduling_time_s + self.synthesis_time_s + self.physical_time_s

    @classmethod
    def from_artifacts(
        cls,
        graph: SequencingGraph,
        library: DeviceLibrary,
        config: FlowConfig,
        schedule_artifact: "ScheduleArtifact",
        architecture_artifact: "ArchitectureArtifact",
        physical_artifact: "PhysicalArtifact",
        verification_artifact: Optional[object] = None,
    ) -> "SynthesisResult":
        """Assemble the result view from the stage artifacts.

        ``verification_artifact`` is the optional fourth-stage output; when
        present its distribution report and timing are copied onto the
        result so batch/service payloads can surface them.
        """
        return cls(
            graph=graph,
            library=library,
            config=config,
            schedule=schedule_artifact.schedule,
            architecture=architecture_artifact.architecture,
            physical=physical_artifact.physical,
            scheduling_time_s=schedule_artifact.scheduling_time_s,
            synthesis_time_s=architecture_artifact.synthesis_time_s,
            physical_time_s=physical_artifact.physical.wall_time_s,
            scheduler_engine=schedule_artifact.scheduler_engine,
            synthesis_engine=architecture_artifact.synthesis_engine,
            scheduler_backend=getattr(schedule_artifact, "backend_name", None),
            synthesis_backend=getattr(architecture_artifact, "backend_name", None),
            scheduler_fallback_used=getattr(schedule_artifact, "fallback_used", False),
            synthesis_fallback_used=getattr(architecture_artifact, "fallback_used", False),
            scheduler_warm_start_used=getattr(schedule_artifact, "warm_start_used", False),
            verification=getattr(verification_artifact, "report", None),
            verification_time_s=getattr(verification_artifact, "verification_time_s", 0.0),
            simulation_problems=getattr(verification_artifact, "simulation_problems", None),
        )


def build_library(config: FlowConfig) -> DeviceLibrary:
    """Device library matching the flow configuration."""
    return default_device_library(
        num_mixers=config.num_mixers,
        num_detectors=config.num_detectors,
        num_heaters=config.num_heaters,
    )


def _build_scheduler(config: FlowConfig, library: DeviceLibrary, graph: SequencingGraph):
    engine = config.scheduler
    if engine is SchedulerEngine.AUTO:
        if len(graph.device_operations()) <= config.ilp_operation_limit:
            engine = SchedulerEngine.ILP
        else:
            engine = SchedulerEngine.LIST
    if engine is SchedulerEngine.ILP:
        scheduler = IlpScheduler(
            library,
            IlpSchedulerConfig(
                transport_time=config.transport_time,
                alpha=config.alpha,
                beta=config.beta if config.storage_aware else 0.0,
                # Time limit, MIP gap, and backend all travel inside the
                # shared options object; the config's legacy fields are the
                # fallback for direct construction only.
                solver=solver_options_for(config, "scheduler"),
            ),
        )
        return scheduler, "ilp"
    scheduler = ListScheduler(
        library,
        ListSchedulerConfig(
            transport_time=config.transport_time,
            storage_aware=config.storage_aware,
        ),
    )
    return scheduler, "list"


def _build_synthesizer(config: FlowConfig):
    if config.synthesis is SynthesisEngine.ILP:
        return (
            IlpSynthesizer(
                IlpSynthesisConfig(
                    grid_rows=config.grid_rows,
                    grid_cols=config.grid_cols,
                    solver=solver_options_for(config, "archsyn"),
                )
            ),
            "ilp",
        )
    return (
        HeuristicSynthesizer(
            SynthesisConfig(
                grid_rows=config.grid_rows,
                grid_cols=config.grid_cols,
                auto_expand_grid=config.auto_expand_grid,
                max_grid_dim=config.max_grid_dim,
                seed=config.seed,
            )
        ),
        "heuristic",
    )


def synthesize(
    graph: SequencingGraph,
    config: Optional[FlowConfig] = None,
    library: Optional[DeviceLibrary] = None,
) -> SynthesisResult:
    """Run the complete flow (schedule → architecture → layout) on an assay.

    A convenience wrapper over :class:`~repro.synthesis.pipeline.
    SynthesisPipeline` that runs all three stages without a cache.  Callers
    that want stage-granular reuse (parameter sweeps, warm re-runs) should go
    through the batch engine or hold a pipeline + cache themselves.

    Parameters
    ----------
    graph:
        The assay's sequencing graph; it is validated before anything runs.
    config:
        Flow configuration; defaults to :class:`FlowConfig` defaults.
    library:
        Optional explicit device library; by default one is built from the
        configuration's device counts.

    Returns
    -------
    SynthesisResult
        Schedule, architecture, physical design and per-stage runtimes.
    """
    # Imported here: pipeline imports this module for the result type and
    # the engine builders, so the dependency must stay one-directional at
    # import time.
    from repro.synthesis.pipeline import SynthesisPipeline

    return SynthesisPipeline().run(graph, config=config, library=library)
