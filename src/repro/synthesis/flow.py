"""The end-to-end synthesis flow."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.archsyn.architecture import ChipArchitecture
from repro.archsyn.ilp_synthesis import IlpSynthesisConfig, IlpSynthesizer
from repro.archsyn.router import HeuristicSynthesizer, SynthesisConfig
from repro.devices.device import DeviceLibrary, default_device_library
from repro.graph.sequencing_graph import SequencingGraph
from repro.graph.validation import assert_valid
from repro.physical.pipeline import PhysicalDesignConfig, PhysicalDesignResult, build_physical_design
from repro.scheduling.ilp_scheduler import IlpScheduler, IlpSchedulerConfig
from repro.scheduling.list_scheduler import ListScheduler, ListSchedulerConfig
from repro.scheduling.schedule import Schedule
from repro.synthesis.config import FlowConfig, SchedulerEngine, SynthesisEngine


@dataclass
class SynthesisResult:
    """Everything the flow produces for one assay."""

    graph: SequencingGraph
    library: DeviceLibrary
    config: FlowConfig
    schedule: Schedule
    architecture: ChipArchitecture
    physical: PhysicalDesignResult
    scheduling_time_s: float
    synthesis_time_s: float
    physical_time_s: float
    scheduler_engine: str
    synthesis_engine: str

    @property
    def execution_time(self) -> int:
        """The assay completion time ``t_E``."""
        return self.schedule.makespan

    @property
    def total_runtime_s(self) -> float:
        return self.scheduling_time_s + self.synthesis_time_s + self.physical_time_s


def build_library(config: FlowConfig) -> DeviceLibrary:
    """Device library matching the flow configuration."""
    return default_device_library(
        num_mixers=config.num_mixers,
        num_detectors=config.num_detectors,
        num_heaters=config.num_heaters,
    )


def _build_scheduler(config: FlowConfig, library: DeviceLibrary, graph: SequencingGraph):
    engine = config.scheduler
    if engine is SchedulerEngine.AUTO:
        if len(graph.device_operations()) <= config.ilp_operation_limit:
            engine = SchedulerEngine.ILP
        else:
            engine = SchedulerEngine.LIST
    if engine is SchedulerEngine.ILP:
        scheduler = IlpScheduler(
            library,
            IlpSchedulerConfig(
                transport_time=config.transport_time,
                alpha=config.alpha,
                beta=config.beta if config.storage_aware else 0.0,
                time_limit_s=config.ilp_time_limit_s,
            ),
        )
        return scheduler, "ilp"
    scheduler = ListScheduler(
        library,
        ListSchedulerConfig(
            transport_time=config.transport_time,
            storage_aware=config.storage_aware,
        ),
    )
    return scheduler, "list"


def _build_synthesizer(config: FlowConfig):
    if config.synthesis is SynthesisEngine.ILP:
        return (
            IlpSynthesizer(
                IlpSynthesisConfig(
                    grid_rows=config.grid_rows,
                    grid_cols=config.grid_cols,
                    time_limit_s=config.archsyn_time_limit_s,
                )
            ),
            "ilp",
        )
    return (
        HeuristicSynthesizer(
            SynthesisConfig(
                grid_rows=config.grid_rows,
                grid_cols=config.grid_cols,
                auto_expand_grid=config.auto_expand_grid,
                max_grid_dim=config.max_grid_dim,
            )
        ),
        "heuristic",
    )


def synthesize(
    graph: SequencingGraph,
    config: Optional[FlowConfig] = None,
    library: Optional[DeviceLibrary] = None,
) -> SynthesisResult:
    """Run the complete flow (schedule → architecture → layout) on an assay.

    Parameters
    ----------
    graph:
        The assay's sequencing graph; it is validated before anything runs.
    config:
        Flow configuration; defaults to :class:`FlowConfig` defaults.
    library:
        Optional explicit device library; by default one is built from the
        configuration's device counts.

    Returns
    -------
    SynthesisResult
        Schedule, architecture, physical design and per-stage runtimes.
    """
    config = config or FlowConfig()
    assert_valid(graph)
    library = library or build_library(config)

    scheduler, scheduler_name = _build_scheduler(config, library, graph)
    start = time.perf_counter()
    schedule = scheduler.schedule(graph)
    scheduling_time = time.perf_counter() - start

    synthesizer, synthesis_name = _build_synthesizer(config)
    start = time.perf_counter()
    architecture = synthesizer.synthesize(schedule)
    synthesis_time = time.perf_counter() - start

    physical = build_physical_design(
        architecture,
        library,
        PhysicalDesignConfig(
            pitch=config.pitch,
            storage_segment_length=config.storage_segment_length,
            min_channel_spacing=config.min_channel_spacing,
        ),
    )

    return SynthesisResult(
        graph=graph,
        library=library,
        config=config,
        schedule=schedule,
        architecture=architecture,
        physical=physical,
        scheduling_time_s=scheduling_time,
        synthesis_time_s=synthesis_time,
        physical_time_s=physical.wall_time_s,
        scheduler_engine=scheduler_name,
        synthesis_engine=synthesis_name,
    )
