"""Metrics collected from a synthesis result (the evaluation's vocabulary)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.scheduling.transport import (
    cross_device_gap_sum,
    peak_storage_demand,
    storage_requirements,
    total_storage_time,
    transport_count,
)
from repro.synthesis.flow import SynthesisResult


@dataclass
class FlowMetrics:
    """Flat summary of one synthesis run (one Table 2 row plus extras)."""

    assay: str
    num_operations: int
    execution_time: int          # t_E
    scheduling_time_s: float     # t_s
    grid_shape: Tuple[int, int]  # G
    num_edges: int               # n_e
    num_valves: int              # n_v
    synthesis_time_s: float      # t_r
    dim_architecture: Tuple[int, int]  # d_r
    dim_expanded: Tuple[int, int]      # d_e
    dim_compact: Tuple[int, int]       # d_p
    physical_time_s: float             # t_p
    edge_ratio: float
    valve_ratio: float
    num_transport_tasks: int
    num_storage_requirements: int
    peak_storage: int
    total_storage_time: int
    cross_device_gap: int
    scheduler_engine: str
    synthesis_engine: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "assay": self.assay,
            "|O|": self.num_operations,
            "tE": self.execution_time,
            "ts(s)": round(self.scheduling_time_s, 3),
            "G": f"{self.grid_shape[0]}x{self.grid_shape[1]}",
            "ne": self.num_edges,
            "nv": self.num_valves,
            "tr(s)": round(self.synthesis_time_s, 3),
            "dr": f"{self.dim_architecture[0]}x{self.dim_architecture[1]}",
            "de": f"{self.dim_expanded[0]}x{self.dim_expanded[1]}",
            "dp": f"{self.dim_compact[0]}x{self.dim_compact[1]}",
            "tp(s)": round(self.physical_time_s, 3),
            "edge_ratio": round(self.edge_ratio, 3),
            "valve_ratio": round(self.valve_ratio, 3),
            "transports": self.num_transport_tasks,
            "storages": self.num_storage_requirements,
            "peak_storage": self.peak_storage,
            "scheduler": self.scheduler_engine,
            "synthesizer": self.synthesis_engine,
        }


def collect_metrics(result: SynthesisResult) -> FlowMetrics:
    """Derive all evaluation metrics from a :class:`SynthesisResult`."""
    schedule = result.schedule
    architecture = result.architecture
    return FlowMetrics(
        assay=result.graph.name,
        num_operations=len(result.graph.device_operations()),
        execution_time=schedule.makespan,
        scheduling_time_s=result.scheduling_time_s,
        grid_shape=architecture.grid.shape,
        num_edges=architecture.num_edges,
        num_valves=architecture.num_valves,
        synthesis_time_s=result.synthesis_time_s,
        dim_architecture=result.physical.architecture_dimensions,
        dim_expanded=result.physical.expanded_dimensions,
        dim_compact=result.physical.compact_dimensions,
        physical_time_s=result.physical_time_s,
        edge_ratio=architecture.edge_ratio(),
        valve_ratio=architecture.valve_ratio(),
        num_transport_tasks=transport_count(schedule),
        num_storage_requirements=len(storage_requirements(schedule)),
        peak_storage=peak_storage_demand(schedule),
        total_storage_time=total_storage_time(schedule),
        cross_device_gap=cross_device_gap_sum(schedule),
        scheduler_engine=result.scheduler_engine,
        synthesis_engine=result.synthesis_engine,
    )
