"""The synthesized chip architecture (planar connection graph).

A :class:`ChipArchitecture` is the output of architectural synthesis: the
device placement on the connection grid, the set of grid edges kept as
channel segments, and the routed realization (with time windows) of every
transportation task of the schedule, including where each intermediate fluid
sample is cached.

It also owns the resource accounting used throughout the evaluation:

* ``num_edges`` — channel segments kept (the paper's ``n_e``),
* ``num_valves`` — one valve per (kept edge, switch node) incidence; device
  ports and mixer-internal valves are excluded, matching the paper's ``n_v``,
* edge / valve ratios versus the full connection grid (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.archsyn.grid import ConnectionGrid, EdgeId, edge_id
from repro.scheduling.transport import TransportTask


class ArchitectureValidationError(ValueError):
    """Raised when a synthesized architecture violates a hard constraint."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(problems) if problems else "invalid architecture")


@dataclass(frozen=True)
class RoutedSubPath:
    """One leg of a routed transportation task.

    ``purpose`` is ``"transport"`` for a moving leg (the fluid traverses
    ``nodes``/``edges`` during ``[start, end)``) or ``"storage"`` for the
    caching leg (exactly one edge, no movement).
    """

    nodes: Tuple[str, ...]
    edges: Tuple[EdgeId, ...]
    start: int
    end: int
    purpose: str

    def __post_init__(self) -> None:
        if self.purpose not in ("transport", "storage"):
            raise ValueError(f"unknown sub-path purpose {self.purpose!r}")
        if self.end < self.start:
            raise ValueError("sub-path ends before it starts")
        if self.purpose == "storage" and len(self.edges) != 1:
            raise ValueError("a storage sub-path must consist of exactly one edge")
        if self.purpose == "transport" and len(self.nodes) != len(self.edges) + 1:
            raise ValueError("a transport sub-path must have len(nodes) == len(edges) + 1")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class RoutedTask:
    """A transportation task together with its routed realization."""

    task: TransportTask
    subpaths: List[RoutedSubPath]

    @property
    def storage_edge(self) -> Optional[EdgeId]:
        for sub in self.subpaths:
            if sub.purpose == "storage":
                return sub.edges[0]
        return None

    @property
    def storage_window(self) -> Optional[Tuple[int, int]]:
        for sub in self.subpaths:
            if sub.purpose == "storage":
                return (sub.start, sub.end)
        return None

    def all_edges(self) -> Set[EdgeId]:
        edges: Set[EdgeId] = set()
        for sub in self.subpaths:
            edges.update(sub.edges)
        return edges

    def all_nodes(self) -> Set[str]:
        nodes: Set[str] = set()
        for sub in self.subpaths:
            nodes.update(sub.nodes)
        return nodes


class ChipArchitecture:
    """Placement + kept channel segments + routed transportation tasks."""

    def __init__(
        self,
        grid: ConnectionGrid,
        placement: Dict[str, str],
        routed_tasks: Optional[Sequence[RoutedTask]] = None,
    ) -> None:
        self.grid = grid
        #: Mapping device id -> grid node id.
        self.placement = dict(placement)
        self.routed_tasks: List[RoutedTask] = list(routed_tasks or [])
        self._validate_placement()

    def _validate_placement(self) -> None:
        seen: Dict[str, str] = {}
        for device_id, node_id in self.placement.items():
            if node_id not in self.grid:
                raise ArchitectureValidationError(
                    [f"device {device_id!r} placed on unknown node {node_id!r}"]
                )
            if node_id in seen:
                raise ArchitectureValidationError(
                    [f"devices {seen[node_id]!r} and {device_id!r} share node {node_id!r}"]
                )
            seen[node_id] = device_id

    # --------------------------------------------------------------- queries
    def device_node(self, device_id: str) -> str:
        return self.placement[device_id]

    def node_device(self, node_id: str) -> Optional[str]:
        for device_id, placed in self.placement.items():
            if placed == node_id:
                return device_id
        return None

    def device_nodes(self) -> Set[str]:
        return set(self.placement.values())

    def add_routed_task(self, routed: RoutedTask) -> None:
        self.routed_tasks.append(routed)

    # ------------------------------------------------------------ accounting
    def used_edges(self) -> Set[EdgeId]:
        """Grid edges used by at least one transport or storage sub-path.

        These are the channel segments kept in the chip (objective (12));
        all other grid edges are removed.
        """
        edges: Set[EdgeId] = set()
        for routed in self.routed_tasks:
            edges.update(routed.all_edges())
        return edges

    def used_nodes(self) -> Set[str]:
        nodes: Set[str] = set(self.placement.values())
        for eid in self.used_edges():
            nodes.update(self.grid.edge_endpoints(eid))
        return nodes

    def switch_nodes(self) -> Set[str]:
        """Used nodes that are not devices — each becomes a switch."""
        return self.used_nodes() - self.device_nodes()

    @property
    def num_edges(self) -> int:
        """The paper's ``n_e``: number of channel segments kept."""
        return len(self.used_edges())

    @property
    def num_valves(self) -> int:
        """The paper's ``n_v``: one valve per (kept edge, switch node) incidence."""
        device_nodes = self.device_nodes()
        valves = 0
        for eid in self.used_edges():
            for endpoint in self.grid.edge_endpoints(eid):
                if endpoint not in device_nodes:
                    valves += 1
        return valves

    @property
    def num_switches(self) -> int:
        return len(self.switch_nodes())

    def grid_edge_count(self) -> int:
        return self.grid.num_edges()

    def grid_valve_count(self) -> int:
        """Valves the *full* connection grid would need (denominator of Fig. 8)."""
        device_nodes = self.device_nodes()
        valves = 0
        for eid in self.grid.edges():
            for endpoint in self.grid.edge_endpoints(eid):
                if endpoint not in device_nodes:
                    valves += 1
        return valves

    def edge_ratio(self) -> float:
        """Used edges / grid edges (Fig. 8, 'Edge' series)."""
        total = self.grid_edge_count()
        return self.num_edges / total if total else 0.0

    def valve_ratio(self) -> float:
        """Used valves / grid valves (Fig. 8, 'Valve' series)."""
        total = self.grid_valve_count()
        return self.num_valves / total if total else 0.0

    def storage_segments(self) -> List[Tuple[EdgeId, Tuple[int, int]]]:
        """Every (edge, window) that caches a fluid sample."""
        segments = []
        for routed in self.routed_tasks:
            edge = routed.storage_edge
            window = routed.storage_window
            if edge is not None and window is not None:
                segments.append((edge, window))
        return segments

    def channel_utilization(self, makespan: int) -> Dict[EdgeId, float]:
        """Fraction of the makespan each kept segment is busy."""
        busy: Dict[EdgeId, int] = {eid: 0 for eid in self.used_edges()}
        for routed in self.routed_tasks:
            for sub in routed.subpaths:
                for eid in sub.edges:
                    busy[eid] = busy.get(eid, 0) + sub.duration
        if makespan <= 0:
            return {eid: 0.0 for eid in busy}
        return {eid: min(1.0, value / makespan) for eid, value in busy.items()}

    # ------------------------------------------------------------ validation
    def validate(self) -> List[str]:
        """Check structural and time-multiplexing correctness.

        Rules enforced (constraint (10) and path well-formedness):

        * every transport sub-path is a connected path over existing grid
          edges, starting/ending at the correct device nodes or at the
          storage segment;
        * transport sub-paths never pass *through* a node occupied by an
          unrelated device;
        * two sub-paths whose time windows overlap never share an edge;
        * two *transport* sub-paths whose time windows overlap never share a
          node (storage segments only block their edge, not their endpoints).
        """
        problems: List[str] = []
        device_nodes = self.device_nodes()

        for routed in self.routed_tasks:
            problems.extend(self._validate_task_structure(routed, device_nodes))

        flat: List[Tuple[RoutedSubPath, str, str]] = []
        for routed in self.routed_tasks:
            for sub in routed.subpaths:
                flat.append((sub, routed.task.task_id, routed.task.sample.producer))

        for idx, (sub_a, owner_a, producer_a) in enumerate(flat):
            for sub_b, owner_b, producer_b in flat[idx + 1 :]:
                if owner_a == owner_b:
                    continue
                if not (sub_a.start < sub_b.end and sub_b.start < sub_a.end):
                    continue
                both_transport = sub_a.purpose == "transport" and sub_b.purpose == "transport"
                # Volumes split from the same producer travel together, so
                # their transport legs may legitimately share resources.
                same_split_product = both_transport and producer_a == producer_b
                shared_edges = set(sub_a.edges) & set(sub_b.edges)
                if shared_edges and not same_split_product:
                    problems.append(
                        f"tasks {owner_a!r} and {owner_b!r} share edge(s) "
                        f"{sorted(tuple(sorted(e)) for e in shared_edges)} while both are live"
                    )
                if both_transport and not same_split_product:
                    # Device nodes are exempt: access to a device port is
                    # serialized by the schedule itself (see router docstring).
                    shared_nodes = (set(sub_a.nodes) & set(sub_b.nodes)) - device_nodes
                    if shared_nodes:
                        problems.append(
                            f"transport paths of {owner_a!r} and {owner_b!r} intersect at node(s) "
                            f"{sorted(shared_nodes)} while both are live"
                        )
        return problems

    def _validate_task_structure(self, routed: RoutedTask, device_nodes: Set[str]) -> List[str]:
        problems: List[str] = []
        task = routed.task
        source_node = self.placement.get(task.source_device)
        target_node = self.placement.get(task.target_device)
        if source_node is None or target_node is None:
            problems.append(f"task {task.task_id!r}: source or target device is not placed")
            return problems
        transports = [s for s in routed.subpaths if s.purpose == "transport"]
        if not transports:
            problems.append(f"task {task.task_id!r} has no transport sub-path")
            return problems
        if transports[0].nodes[0] != source_node:
            problems.append(
                f"task {task.task_id!r}: first sub-path starts at {transports[0].nodes[0]!r}, "
                f"not at source device node {source_node!r}"
            )
        if transports[-1].nodes[-1] != target_node:
            problems.append(
                f"task {task.task_id!r}: last sub-path ends at {transports[-1].nodes[-1]!r}, "
                f"not at target device node {target_node!r}"
            )
        allowed_devices = {source_node, target_node}
        for sub in routed.subpaths:
            for node_a, node_b in zip(sub.nodes, sub.nodes[1:]):
                if not self.grid.has_edge(node_a, node_b):
                    problems.append(
                        f"task {task.task_id!r}: {node_a!r}-{node_b!r} is not a grid edge"
                    )
            if sub.purpose == "transport":
                for node in sub.nodes[1:-1]:
                    if node in device_nodes and node not in allowed_devices:
                        problems.append(
                            f"task {task.task_id!r}: transport path passes through device node {node!r}"
                        )
        if task.needs_storage and routed.storage_edge is None:
            problems.append(f"task {task.task_id!r} needs storage but no storage sub-path was routed")
        return problems

    def assert_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ArchitectureValidationError(problems)

    def __repr__(self) -> str:
        return (
            f"ChipArchitecture(grid={self.grid.rows}x{self.grid.cols}, "
            f"{len(self.placement)} devices, {len(self.routed_tasks)} tasks, "
            f"n_e={self.num_edges}, n_v={self.num_valves})"
        )
