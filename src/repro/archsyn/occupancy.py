"""Time-interval occupancy bookkeeping for grid nodes and edges.

The router must know, for any candidate path and time window, whether a grid
edge or node is already claimed by another live transportation path or by a
cached fluid sample.  The rules implement the paper's constraint (10):

* an edge is exclusive — transport use and storage use both block it;
* a node is exclusive among *transport* paths, but the endpoints of a segment
  that is merely caching a sample may still be crossed by other paths
  (the ``p'_r`` exception in Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple


@dataclass(frozen=True)
class Interval:
    """Closed-open busy interval ``[start, end)`` with a purpose tag.

    ``group`` identifies reservations that are allowed to coexist: transport
    legs carrying volumes split from the *same* producer operation travel
    together physically, so they may share channel resources.  An empty group
    means the reservation is exclusive.
    """

    start: int
    end: int
    purpose: str  # "transport" or "storage"
    owner: str = ""
    group: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty interval [{self.start}, {self.end})")
        if self.purpose not in ("transport", "storage"):
            raise ValueError(f"unknown purpose {self.purpose!r}")

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def shares_group_with(self, group: str) -> bool:
        return bool(group) and self.group == group and self.purpose == "transport"


class OccupancyTracker:
    """Tracks busy intervals for an arbitrary set of resources."""

    def __init__(self) -> None:
        self._intervals: Dict[Hashable, List[Interval]] = {}

    def reserve(
        self,
        resource: Hashable,
        start: int,
        end: int,
        purpose: str,
        owner: str = "",
        group: str = "",
    ) -> Interval:
        """Reserve ``resource`` for ``[start, end)``; raises on double booking.

        Overlapping *transport* reservations belonging to the same non-empty
        ``group`` are allowed (split volumes of one producer moving together).
        """
        interval = Interval(start, end, purpose, owner, group)
        existing = self._intervals.setdefault(resource, [])
        for busy in existing:
            if not busy.overlaps(start, end):
                continue
            if purpose == "transport" and busy.shares_group_with(group):
                continue
            raise ValueError(
                f"resource {resource!r}: [{start}, {end}) for {owner or purpose} overlaps "
                f"[{busy.start}, {busy.end}) held by {busy.owner or busy.purpose}"
            )
        existing.append(interval)
        existing.sort(key=lambda iv: iv.start)
        return interval

    def is_free(
        self,
        resource: Hashable,
        start: int,
        end: int,
        ignore_storage: bool = False,
        group: str = "",
    ) -> bool:
        """True when no conflicting interval overlaps ``[start, end)``.

        With ``ignore_storage=True`` only *transport* reservations count —
        this is how node occupancy is checked, implementing the storage-
        endpoint exemption of constraint (10).  Reservations of the same
        non-empty ``group`` never conflict.
        """
        for busy in self._intervals.get(resource, []):
            if ignore_storage and busy.purpose == "storage":
                continue
            if busy.shares_group_with(group):
                continue
            if busy.overlaps(start, end):
                return False
        return True

    def intervals(self, resource: Hashable) -> List[Interval]:
        return list(self._intervals.get(resource, []))

    def busy_at(self, resource: Hashable, time: int) -> Optional[Interval]:
        for busy in self._intervals.get(resource, []):
            if busy.start <= time < busy.end:
                return busy
        return None

    def resources(self) -> List[Hashable]:
        return list(self._intervals.keys())

    def total_busy_time(self, resource: Hashable) -> int:
        return sum(iv.end - iv.start for iv in self._intervals.get(resource, []))

    def utilization(self, resource: Hashable, horizon: int) -> float:
        if horizon <= 0:
            return 0.0
        return min(1.0, self.total_busy_time(resource) / horizon)
