"""Exact architectural synthesis (paper Section 3.2, constraints (8)–(12)).

The formulation decides device placement and the routing of every
transportation task jointly and minimizes the number of connection-grid edges
kept in the chip.

Encoding notes
--------------
* Placement uses the paper's ``a_{i,k}`` binaries with constraint (8).
* The paper encodes path construction through node-degree constraints (9)
  with big-M indicators.  Here every transport leg is encoded as a *unit
  network flow* between its two (possibly variable) endpoints: one binary per
  directed grid arc with flow conservation at every node.  The two encodings
  admit the same simple paths, but the flow form guarantees connectivity (the
  degree form can be satisfied by a path plus disjoint cycles) and needs no
  big-M constants.
* A task that needs storage is decomposed into the paper's three sub-paths:
  leg 1 (device to storage segment), the storage segment itself (selected by
  binaries ``sigma_{r,e}``), and leg 3 (storage segment to target device).
* Conflicts (10): legs whose time windows overlap may not share an edge; two
  overlapping *transport* legs may not share a node unless that node hosts a
  device (the storage-endpoint/device-port exemption).  A caching segment
  blocks its edge for the whole task window.
* Objective (12): ``minimize sum_e s_e`` with ``s_e >= `` every usage
  indicator (constraint (11)).

The model grows quickly with task count; it is intended for the small/medium
instances (the heuristic engine covers the rest, exactly as the paper falls
back to best-effort results at its 30-minute cap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.archsyn.architecture import ChipArchitecture, RoutedSubPath, RoutedTask
from repro.archsyn.grid import ConnectionGrid, EdgeId, edge_id
from repro.archsyn.router import SynthesisError
from repro.ilp import Model, SolverLimitError, SolverOptions, SolverStatus, lin_sum
from repro.scheduling.schedule import Schedule
from repro.scheduling.transport import TransportTask, extract_transport_tasks


class SynthesisLimitError(SynthesisError, SolverLimitError):
    """ILP synthesis hit its time limit with no incumbent.

    Both a :class:`SynthesisError` (existing fallback paths keep catching it)
    and a :class:`SolverLimitError` (the batch engine never memoizes it).
    """


@dataclass
class IlpSynthesisConfig:
    """Configuration of the exact synthesis engine.

    ``solver``, when set, is used verbatim for the solve — the flow builds
    it through :func:`repro.synthesis.config.solver_options_for`, the single
    ``FlowConfig`` → ``SolverOptions`` construction point, so this engine
    can no longer silently drop options (historically it built
    ``SolverOptions`` from ``time_limit_s`` alone, losing any configured
    ``mip_rel_gap``).  When ``None`` the legacy fields are assembled into
    options on the default backend.
    """

    grid_rows: int = 3
    grid_cols: int = 3
    time_limit_s: Optional[float] = 120.0
    mip_rel_gap: Optional[float] = None
    #: Optional pre-computed placement (device id -> node id).  When given,
    #: the ``a_{i,k}`` variables are fixed, which shrinks the model a lot.
    fixed_placement: Optional[Dict[str, str]] = None
    solver: Optional[SolverOptions] = None

    def solver_options(self) -> SolverOptions:
        """The options every solve of this synthesizer runs under."""
        if self.solver is not None:
            return self.solver
        return SolverOptions(time_limit_s=self.time_limit_s, mip_rel_gap=self.mip_rel_gap)


@dataclass
class _Leg:
    """One transport leg of a task in the ILP encoding."""

    leg_id: str
    task: TransportTask
    window: Tuple[int, int]
    kind: str  # "direct", "to_storage", "from_storage"


class IlpSynthesizer:
    """Joint placement + routing by integer linear programming."""

    def __init__(self, config: Optional[IlpSynthesisConfig] = None) -> None:
        self.config = config or IlpSynthesisConfig()
        self.last_objective: Optional[float] = None
        self.last_wall_time_s: float = 0.0
        #: Which backend produced the last architecture, and whether the
        #: portfolio had to abandon its primary to get it.
        self.last_backend: Optional[str] = None
        self.last_fallback_used: bool = False

    # ------------------------------------------------------------------ API
    def synthesize(self, schedule: Schedule) -> ChipArchitecture:
        """Solve the synthesis ILP and return a validated architecture."""
        cfg = self.config
        tasks = extract_transport_tasks(schedule)
        devices = schedule.devices_used()
        if not devices:
            devices = [d.device_id for d in schedule.library]

        grid = ConnectionGrid(cfg.grid_rows, cfg.grid_cols)
        if len(devices) > grid.num_nodes():
            raise SynthesisError(
                f"{len(devices)} devices do not fit on a {cfg.grid_rows}x{cfg.grid_cols} grid"
            )

        uc = max(1, schedule.transport_time)
        legs, storage_windows = self._build_legs(tasks, uc)

        model = Model(f"archsyn-{schedule.graph.name}")
        arcs = self._directed_arcs(grid)
        nodes = grid.nodes()
        edges = grid.edges()

        place = self._placement_variables(model, grid, devices)
        flow, node_use, edge_use = self._flow_variables(model, grid, legs, arcs)
        sigma = self._storage_variables(model, grid, tasks)
        keep = {eid: model.add_binary(f"s[{'-'.join(sorted(eid))}]") for eid in edges}

        self._add_flow_conservation(model, grid, legs, flow, place, sigma, devices)
        self._add_usage_constraints(model, grid, legs, arcs, flow, node_use, edge_use, keep, sigma)
        self._add_device_blocking(model, grid, legs, node_use, place, devices)
        self._add_conflicts(model, grid, legs, edge_use, node_use, keep, sigma, storage_windows, place)

        model.minimize(lin_sum(keep.values()))
        result = model.solve(cfg.solver_options())
        self.last_objective = result.objective
        self.last_wall_time_s = result.wall_time_s
        self.last_backend = result.backend_name
        self.last_fallback_used = result.fallback_used
        if not result.status.is_feasible():
            message = f"ILP synthesis of {schedule.graph.name!r} failed: {result.status.value}"
            if result.status is SolverStatus.TIME_LIMIT:
                raise SynthesisLimitError(message)
            raise SynthesisError(message)

        placement = self._extract_placement(place, devices, grid)
        architecture = ChipArchitecture(grid, placement)
        for task in tasks:
            routed = self._extract_routed_task(task, legs, flow, sigma, placement, grid, arcs)
            architecture.add_routed_task(routed)
        problems = architecture.validate()
        if problems:
            raise SynthesisError(
                "ILP synthesis produced an invalid architecture: " + "; ".join(problems[:5])
            )
        return architecture

    # ----------------------------------------------------------- model parts
    def _build_legs(
        self, tasks: Sequence[TransportTask], uc: int
    ) -> Tuple[List[_Leg], Dict[str, Tuple[int, int]]]:
        legs: List[_Leg] = []
        storage_windows: Dict[str, Tuple[int, int]] = {}
        for task in tasks:
            depart, arrive = task.depart_time, task.arrive_time
            if not task.needs_storage:
                window = (depart, max(arrive, depart + 1))
                legs.append(_Leg(f"{task.task_id}#direct", task, window, "direct"))
                continue
            gap = arrive - depart
            leg_out = min(uc, max(1, (gap - 1) // 2))
            leg_back = min(uc, max(1, gap - leg_out - 1))
            storage_start = depart + leg_out
            storage_end = max(storage_start + 1, arrive - leg_back)
            storage_windows[task.task_id] = (storage_start, storage_end)
            legs.append(_Leg(f"{task.task_id}#to", task, (depart, storage_start), "to_storage"))
            legs.append(_Leg(f"{task.task_id}#from", task, (storage_end, arrive), "from_storage"))
        return legs, storage_windows

    def _directed_arcs(self, grid: ConnectionGrid) -> List[Tuple[str, str]]:
        arcs: List[Tuple[str, str]] = []
        for eid in grid.edges():
            a, b = grid.edge_endpoints(eid)
            arcs.append((a, b))
            arcs.append((b, a))
        return arcs

    def _placement_variables(self, model: Model, grid: ConnectionGrid, devices: Sequence[str]):
        cfg = self.config
        place: Dict[Tuple[str, str], object] = {}
        for node in grid.nodes():
            for device in devices:
                var = model.add_binary(f"a[{node},{device}]")
                place[(node, device)] = var
                if cfg.fixed_placement is not None:
                    fixed = 1 if cfg.fixed_placement.get(device) == node else 0
                    model.add_constraint(var == fixed)
        for node in grid.nodes():
            model.add_constraint(
                lin_sum(place[(node, d)] for d in devices) <= 1, name=f"one-device[{node}]"
            )
        for device in devices:
            model.add_constraint(
                lin_sum(place[(n, device)] for n in grid.nodes()) == 1, name=f"placed[{device}]"
            )
        return place

    def _flow_variables(self, model: Model, grid: ConnectionGrid, legs: List[_Leg], arcs):
        flow: Dict[Tuple[str, str, str], object] = {}
        node_use: Dict[Tuple[str, str], object] = {}
        edge_use: Dict[Tuple[str, EdgeId], object] = {}
        for leg in legs:
            for (a, b) in arcs:
                flow[(leg.leg_id, a, b)] = model.add_binary(f"f[{leg.leg_id},{a},{b}]")
            for node in grid.nodes():
                node_use[(leg.leg_id, node)] = model.add_binary(f"nu[{leg.leg_id},{node}]")
            for eid in grid.edges():
                edge_use[(leg.leg_id, eid)] = model.add_binary(
                    f"eu[{leg.leg_id},{'-'.join(sorted(eid))}]"
                )
        return flow, node_use, edge_use

    def _storage_variables(self, model: Model, grid: ConnectionGrid, tasks: Sequence[TransportTask]):
        sigma: Dict[Tuple[str, EdgeId], object] = {}
        for task in tasks:
            if not task.needs_storage:
                continue
            edge_vars = []
            for eid in grid.edges():
                var = model.add_binary(f"sigma[{task.task_id},{'-'.join(sorted(eid))}]")
                sigma[(task.task_id, eid)] = var
                edge_vars.append(var)
            model.add_constraint(lin_sum(edge_vars) == 1, name=f"one-storage[{task.task_id}]")
        return sigma

    def _add_flow_conservation(self, model, grid, legs, flow, place, sigma, devices):
        for leg in legs:
            task = leg.task
            for node in grid.nodes():
                outflow = lin_sum(
                    flow[(leg.leg_id, node, other)] for other in grid.neighbors(node)
                )
                inflow = lin_sum(
                    flow[(leg.leg_id, other, node)] for other in grid.neighbors(node)
                )
                incident_sigma = lin_sum(
                    sigma[(task.task_id, eid)] for eid in grid.incident_edges(node)
                    if (task.task_id, eid) in sigma
                )
                if leg.kind == "direct":
                    supply = place[(node, task.source_device)] - place[(node, task.target_device)]
                elif leg.kind == "to_storage":
                    # Source: the device node; sink: any endpoint of the
                    # chosen storage segment.  Allowing the net outflow to be
                    # "source minus up to one storage endpoint" keeps the leg
                    # a single simple path that ends at the segment.
                    supply = place[(node, task.source_device)] - incident_sigma
                    model.add_constraint(outflow - inflow >= supply)
                    model.add_constraint(
                        outflow - inflow <= place[(node, task.source_device)]
                    )
                    continue
                else:  # from_storage
                    supply = incident_sigma - place[(node, task.target_device)]
                    model.add_constraint(outflow - inflow <= supply + 0)
                    model.add_constraint(
                        outflow - inflow >= 0 - place[(node, task.target_device)]
                    )
                    continue
                model.add_constraint(outflow - inflow == supply)

    def _add_usage_constraints(self, model, grid, legs, arcs, flow, node_use, edge_use, keep, sigma):
        for leg in legs:
            for eid in grid.edges():
                a, b = grid.edge_endpoints(eid)
                forward = flow[(leg.leg_id, a, b)]
                backward = flow[(leg.leg_id, b, a)]
                use = edge_use[(leg.leg_id, eid)]
                model.add_constraint(forward + backward <= 1)
                model.add_constraint(use >= forward)
                model.add_constraint(use >= backward)
                model.add_constraint(use <= forward + backward)
                model.add_constraint(keep[eid] >= use)
            for node in grid.nodes():
                nu = node_use[(leg.leg_id, node)]
                for other in grid.neighbors(node):
                    model.add_constraint(nu >= flow[(leg.leg_id, node, other)])
                    model.add_constraint(nu >= flow[(leg.leg_id, other, node)])
        for (task_id, eid), var in sigma.items():
            model.add_constraint(keep[eid] >= var)

    def _add_device_blocking(self, model, grid, legs, node_use, place, devices):
        for leg in legs:
            task = leg.task
            endpoint_devices = {task.source_device, task.target_device}
            for device in devices:
                if device in endpoint_devices:
                    continue
                for node in grid.nodes():
                    model.add_constraint(
                        node_use[(leg.leg_id, node)] + place[(node, device)] <= 1
                    )

    def _add_conflicts(self, model, grid, legs, edge_use, node_use, keep, sigma, storage_windows, place):
        devices_at_node = {
            node: lin_sum(place[(node, d)] for d in self._placement_devices(place, node))
            for node in grid.nodes()
        }
        # Leg-versus-leg conflicts.
        for i, leg_a in enumerate(legs):
            for leg_b in legs[i + 1 :]:
                if leg_a.task.task_id == leg_b.task.task_id:
                    continue
                if not self._windows_overlap(leg_a.window, leg_b.window):
                    continue
                for eid in grid.edges():
                    model.add_constraint(
                        edge_use[(leg_a.leg_id, eid)] + edge_use[(leg_b.leg_id, eid)] <= 1
                    )
                for node in grid.nodes():
                    model.add_constraint(
                        node_use[(leg_a.leg_id, node)] + node_use[(leg_b.leg_id, node)]
                        <= 1 + devices_at_node[node]
                    )
        # Storage-segment-versus-leg conflicts: a caching segment blocks its
        # edge for the task's whole window (conservative but always safe).
        for (task_id, eid), sigma_var in sigma.items():
            window = storage_windows[task_id]
            task_window = self._task_window_of(legs, task_id)
            for leg in legs:
                if leg.task.task_id == task_id:
                    continue
                if not self._windows_overlap(task_window, leg.window):
                    continue
                model.add_constraint(edge_use[(leg.leg_id, eid)] + sigma_var <= 1)
        # Storage-segment-versus-storage-segment conflicts.
        storage_tasks = sorted({task_id for (task_id, _e) in sigma})
        for i, task_a in enumerate(storage_tasks):
            for task_b in storage_tasks[i + 1 :]:
                if not self._windows_overlap(
                    self._task_window_of(legs, task_a), self._task_window_of(legs, task_b)
                ):
                    continue
                for eid in grid.edges():
                    model.add_constraint(sigma[(task_a, eid)] + sigma[(task_b, eid)] <= 1)

    @staticmethod
    def _placement_devices(place, node) -> List[str]:
        return sorted({device for (n, device) in place.keys() if n == node})

    @staticmethod
    def _windows_overlap(win_a: Tuple[int, int], win_b: Tuple[int, int]) -> bool:
        return win_a[0] < win_b[1] and win_b[0] < win_a[1]

    @staticmethod
    def _task_window_of(legs: List[_Leg], task_id: str) -> Tuple[int, int]:
        windows = [leg.window for leg in legs if leg.task.task_id == task_id]
        return (min(w[0] for w in windows), max(w[1] for w in windows))

    # ------------------------------------------------------------ extraction
    def _extract_placement(self, place, devices, grid) -> Dict[str, str]:
        placement: Dict[str, str] = {}
        for device in devices:
            for node in grid.nodes():
                if place[(node, device)].as_bool():
                    placement[device] = node
                    break
            if device not in placement:
                raise SynthesisError(f"solver returned no placement for device {device!r}")
        return placement

    def _extract_routed_task(self, task, legs, flow, sigma, placement, grid, arcs) -> RoutedTask:
        task_legs = [leg for leg in legs if leg.task.task_id == task.task_id]
        subpaths: List[RoutedSubPath] = []

        storage_edge: Optional[EdgeId] = None
        if task.needs_storage:
            for eid in grid.edges():
                if sigma[(task.task_id, eid)].as_bool():
                    storage_edge = eid
                    break
            if storage_edge is None:
                raise SynthesisError(f"no storage segment selected for task {task.task_id!r}")

        for leg in task_legs:
            if leg.kind in ("direct", "to_storage"):
                start_node = placement[task.source_device]
            else:
                start_node = self._storage_exit_node(leg, flow, storage_edge, grid, placement, task)
            path = self._follow_flow(leg, flow, grid, start_node)
            if leg.kind == "to_storage" and storage_edge is not None:
                entry = path[-1]
                exit_node = next(n for n in grid.edge_endpoints(storage_edge) if n != entry)
                if entry not in grid.edge_endpoints(storage_edge):
                    raise SynthesisError(
                        f"leg {leg.leg_id!r} does not end at the storage segment"
                    )
                full_nodes = path + [exit_node]
                edges = tuple(edge_id(a, b) for a, b in zip(full_nodes, full_nodes[1:]))
                subpaths.append(
                    RoutedSubPath(tuple(full_nodes), edges, leg.window[0], leg.window[1], "transport")
                )
                storage_window = self._storage_window(task, legs)
                subpaths.append(
                    RoutedSubPath(
                        (entry, exit_node), (storage_edge,),
                        storage_window[0], storage_window[1], "storage",
                    )
                )
            else:
                edges = tuple(edge_id(a, b) for a, b in zip(path, path[1:]))
                subpaths.append(
                    RoutedSubPath(tuple(path), edges, leg.window[0], leg.window[1], "transport")
                )
        return RoutedTask(task=task, subpaths=subpaths)

    def _storage_window(self, task, legs) -> Tuple[int, int]:
        to_leg = next(l for l in legs if l.task.task_id == task.task_id and l.kind == "to_storage")
        from_leg = next(l for l in legs if l.task.task_id == task.task_id and l.kind == "from_storage")
        return (to_leg.window[1], from_leg.window[0])

    def _storage_exit_node(self, leg, flow, storage_edge, grid, placement, task) -> str:
        """The endpoint of the storage segment where the from-storage leg starts."""
        candidates = grid.edge_endpoints(storage_edge)
        for node in candidates:
            outflow = sum(
                1 for other in grid.neighbors(node) if flow[(leg.leg_id, node, other)].as_bool()
            )
            inflow = sum(
                1 for other in grid.neighbors(node) if flow[(leg.leg_id, other, node)].as_bool()
            )
            if outflow - inflow > 0:
                return node
        # Zero-length leg: the storage segment touches the target device node.
        target_node = placement[task.target_device]
        if target_node in candidates:
            return target_node
        return candidates[0]

    def _follow_flow(self, leg, flow, grid, start_node: str) -> List[str]:
        """Follow the unit flow of a leg from its start node to its sink."""
        path = [start_node]
        current = start_node
        visited_arcs: Set[Tuple[str, str]] = set()
        for _ in range(grid.num_nodes() * 2):
            next_node = None
            for other in sorted(grid.neighbors(current)):
                arc = (current, other)
                if arc in visited_arcs:
                    continue
                if flow[(leg.leg_id, current, other)].as_bool():
                    next_node = other
                    visited_arcs.add(arc)
                    break
            if next_node is None:
                break
            path.append(next_node)
            current = next_node
        return path
