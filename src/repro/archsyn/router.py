"""Heuristic architectural synthesis: placement + time-multiplexed routing.

The synthesizer realizes every transportation task of a schedule on a
connection grid:

1. devices are placed with :class:`~repro.archsyn.placement.GreedyPlacer`;
2. tasks are routed in order of departure time with a breadth-first search
   that only uses grid edges and switch nodes that are free during the task's
   time window (time multiplexing, constraint (10));
3. tasks that need storage are decomposed into the paper's three sub-paths:
   transport to a channel segment, caching in that segment, transport from
   the segment to the target device (Fig. 5(c)–(e) / Fig. 6); the storage
   segment is chosen close to the target device so the fetch is short
   ("on-the-spot caching").

Occupancy rules
---------------
* edges are exclusive: transport and storage reservations both block them;
* switch nodes are exclusive among transport paths; a caching segment does
  *not* block its endpoint nodes (the ``p'_r`` exemption of Fig. 6);
* device nodes are never used as intermediate hops of a foreign path; access
  to a device's own node is serialized by the schedule itself, so it is not
  tracked as a shared resource.

If routing fails on the configured grid the synthesizer retries on a larger
grid (the paper likewise sizes the grid per assay, Table 2 column ``G``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.archsyn.architecture import ChipArchitecture, RoutedSubPath, RoutedTask
from repro.archsyn.grid import ConnectionGrid, EdgeId, edge_id
from repro.archsyn.occupancy import OccupancyTracker
from repro.archsyn.placement import GreedyPlacer
from repro.keys import derive_seed
from repro.scheduling.schedule import Schedule
from repro.scheduling.transport import TransportTask, extract_transport_tasks


class SynthesisError(RuntimeError):
    """Raised when no valid architecture could be synthesized."""


@dataclass
class SynthesisConfig:
    """Knobs of the heuristic synthesizer.

    ``grid_rows`` / ``grid_cols`` give the initial connection-grid size
    (Table 2 uses 4x4 for all assays except RA100's 5x5);
    ``auto_expand_grid`` lets the synthesizer retry on a larger grid when the
    initial one cannot accommodate all concurrent transportations.

    ``seed`` drives the tie-breaking among equal-cost routing choices.  The
    default ``0`` keeps the canonical lexicographic order (the order the
    golden regression pins were recorded with); any non-zero seed reorders
    ties via a SHA-derived per-node jitter (:func:`repro.keys.derive_seed`),
    which is bit-reproducible across worker processes — unlike anything
    touching Python's per-process ``hash()`` — so a seeded run is the same
    run no matter which process executes it.
    """

    grid_rows: int = 4
    grid_cols: int = 4
    auto_expand_grid: bool = True
    max_grid_dim: int = 9
    device_spacing: int = 2
    seed: int = 0


class HeuristicSynthesizer:
    """Deterministic placement-and-routing engine."""

    def __init__(self, config: Optional[SynthesisConfig] = None) -> None:
        self.config = config or SynthesisConfig()
        # Node/edge names recur thousands of times across the router's inner
        # loops, so seeded ranks are hashed once per distinct name, not once
        # per heap push.
        self._tiebreak_cache: Dict[Tuple[str, ...], int] = {}

    def _tiebreak(self, *parts: str) -> int:
        """Seeded, process-independent tie-break rank for a node or edge.

        With the default ``seed == 0`` every rank is 0, so ties fall through
        to the lexicographic component that follows it in each sort key —
        byte-identical to the pre-seeded behavior the goldens pin.  A
        non-zero seed assigns each name a stable pseudo-random rank, giving
        sweeps a reproducible routing-diversity axis.
        """
        if not self.config.seed:
            return 0
        rank = self._tiebreak_cache.get(parts)
        if rank is None:
            rank = derive_seed(self.config.seed, "|".join(parts))
            self._tiebreak_cache[parts] = rank
        return rank

    # ------------------------------------------------------------------ API
    def synthesize(self, schedule: Schedule) -> ChipArchitecture:
        """Synthesize a validated :class:`ChipArchitecture` for ``schedule``.

        Raises
        ------
        SynthesisError
            If no conflict-free realization exists even on the largest grid
            allowed by the configuration.
        """
        tasks = extract_transport_tasks(schedule)
        devices = schedule.devices_used()
        if not devices:
            devices = [d.device_id for d in schedule.library]
        return self.synthesize_tasks(tasks, devices, transport_time=schedule.transport_time)

    def synthesize_tasks(
        self,
        tasks: Sequence[TransportTask],
        devices: Sequence[str],
        transport_time: int = 10,
    ) -> ChipArchitecture:
        """Synthesize an architecture directly from a list of transport tasks.

        This entry point is used by the dedicated-storage baseline, which
        rewrites the task list (all caching traffic is redirected to a storage
        unit pseudo-device) before synthesizing the comparison chip.
        """
        self._transport_time = max(1, transport_time)
        rows, cols = self.config.grid_rows, self.config.grid_cols
        while True:
            try:
                return self._synthesize_on_grid(tasks, devices, rows, cols)
            except SynthesisError as exc:
                if not self.config.auto_expand_grid:
                    raise
                if rows >= self.config.max_grid_dim and cols >= self.config.max_grid_dim:
                    raise SynthesisError(
                        f"synthesis failed even on a {rows}x{cols} grid: {exc}"
                    ) from exc
                rows = min(self.config.max_grid_dim, rows + 1)
                cols = min(self.config.max_grid_dim, cols + 1)

    # ------------------------------------------------------------ internals
    def _synthesize_on_grid(
        self,
        tasks: Sequence[TransportTask],
        devices: Sequence[str],
        rows: int,
        cols: int,
    ) -> ChipArchitecture:
        grid = ConnectionGrid(rows, cols)
        if len(devices) > grid.num_nodes():
            raise SynthesisError(
                f"{len(devices)} devices do not fit on a {rows}x{cols} connection grid"
            )
        placer = GreedyPlacer(grid, spacing=self.config.device_spacing)
        placement = placer.place(devices, tasks).placement
        architecture = ChipArchitecture(grid, placement)

        edge_occ = OccupancyTracker()
        node_occ = OccupancyTracker()
        device_nodes = set(placement.values())
        #: Edges already claimed by earlier tasks; reusing them costs nothing
        #: extra, so the router prefers them (objective (12): keep few edges).
        self._used_edges: Set[EdgeId] = set()

        for task in sorted(tasks, key=lambda t: (t.depart_time, t.task_id)):
            routed = self._route_task(task, architecture, edge_occ, node_occ, device_nodes)
            architecture.add_routed_task(routed)
            self._used_edges.update(routed.all_edges())

        problems = architecture.validate()
        if problems:
            raise SynthesisError(
                "synthesized architecture failed validation: " + "; ".join(problems[:5])
            )
        return architecture

    # ----------------------------------------------------------- task routing
    def _route_task(
        self,
        task: TransportTask,
        architecture: ChipArchitecture,
        edge_occ: OccupancyTracker,
        node_occ: OccupancyTracker,
        device_nodes: Set[str],
    ) -> RoutedTask:
        source = architecture.device_node(task.source_device)
        target = architecture.device_node(task.target_device)

        if not task.needs_storage:
            return self._route_direct(task, architecture, source, target, edge_occ, node_occ, device_nodes)
        return self._route_with_storage(task, architecture, source, target, edge_occ, node_occ, device_nodes)

    def _route_direct(
        self,
        task: TransportTask,
        architecture: ChipArchitecture,
        source: str,
        target: str,
        edge_occ: OccupancyTracker,
        node_occ: OccupancyTracker,
        device_nodes: Set[str],
    ) -> RoutedTask:
        window = (task.depart_time, max(task.arrive_time, task.depart_time + 1))
        group = task.sample.producer
        path = self._find_path(
            architecture.grid, source, {target}, window, edge_occ, node_occ, device_nodes,
            group=group,
        )
        if path is None:
            raise SynthesisError(
                f"no conflict-free path for task {task.task_id!r} "
                f"({task.source_device}->{task.target_device}) in window {window}"
            )
        sub = self._commit_transport(path, window, task.task_id, edge_occ, node_occ, device_nodes, group=group)
        return RoutedTask(task=task, subpaths=[sub])

    def _route_with_storage(
        self,
        task: TransportTask,
        architecture: ChipArchitecture,
        source: str,
        target: str,
        edge_occ: OccupancyTracker,
        node_occ: OccupancyTracker,
        device_nodes: Set[str],
    ) -> RoutedTask:
        grid = architecture.grid
        depart, arrive = task.depart_time, task.arrive_time
        gap = arrive - depart
        if gap < 3:
            raise SynthesisError(
                f"task {task.task_id!r}: gap {gap} is too short to store a sample along the way"
            )
        uc = getattr(self, "_transport_time", 10)
        leg_out = min(uc, max(1, (gap - 1) // 2))
        leg_back = min(uc, max(1, gap - leg_out - 1))
        storage_start = depart + leg_out
        storage_end = arrive - leg_back
        if storage_end <= storage_start:
            storage_end = storage_start + 1
            leg_back = arrive - storage_end

        candidates = self._storage_candidates(grid, source, target, device_nodes)
        for eid in candidates:
            routed = self._try_storage_edge(
                task, grid, eid, source, target,
                depart, storage_start, storage_end, arrive,
                edge_occ, node_occ, device_nodes,
            )
            if routed is not None:
                return routed
        raise SynthesisError(
            f"no channel segment can cache the sample of task {task.task_id!r} "
            f"between {task.source_device} and {task.target_device} "
            f"(window [{depart}, {arrive}))"
        )

    def _storage_candidates(
        self,
        grid: ConnectionGrid,
        source: str,
        target: str,
        device_nodes: Set[str],
    ) -> List[EdgeId]:
        """Candidate storage segments, nearest to the target device first.

        Segments between two switches are preferred over segments touching a
        device node: a sample parked directly on a device port would block
        that port for the whole caching interval and can wall the device in
        (the paper's Fig. 11 likewise caches between two switches).
        """

        used_edges = getattr(self, "_used_edges", set())

        def key(eid: EdgeId) -> Tuple[int, int, int, int, int, Tuple[str, str]]:
            a, b = grid.edge_endpoints(eid)
            touches_device = 1 if (a in device_nodes or b in device_nodes) else 0
            already_used = 0 if eid in used_edges else 1
            to_target = grid.edge_distance_to_node(eid, target)
            to_source = grid.edge_distance_to_node(eid, source)
            return (touches_device, already_used, to_target, to_source,
                    self._tiebreak(a, b), (a, b))

        candidates = []
        for eid in grid.edges():
            a, b = grid.edge_endpoints(eid)
            # A segment whose both ends are devices cannot be sealed for
            # storage without blocking both device ports; skip it.
            if a in device_nodes and b in device_nodes:
                continue
            candidates.append(eid)
        return sorted(candidates, key=key)

    def _try_storage_edge(
        self,
        task: TransportTask,
        grid: ConnectionGrid,
        eid: EdgeId,
        source: str,
        target: str,
        depart: int,
        storage_start: int,
        storage_end: int,
        arrive: int,
        edge_occ: OccupancyTracker,
        node_occ: OccupancyTracker,
        device_nodes: Set[str],
    ) -> Optional[RoutedTask]:
        node_a, node_b = grid.edge_endpoints(eid)
        group = task.sample.producer
        # The storage edge must be exclusively available from the moment the
        # sample starts moving into it until it has fully left it.
        if not edge_occ.is_free(eid, depart, storage_end):
            return None

        for entry, exit_node in ((node_a, node_b), (node_b, node_a)):
            # The exit node is reserved together with leg 1 (the sample moves
            # into the segment), so it must be free during that window too.
            if exit_node not in device_nodes and not node_occ.is_free(
                exit_node, depart, storage_start, group=group
            ):
                continue
            # Leg 1: source device -> entry node, then into the storage edge.
            leg1_path = self._find_path(
                grid, source, {entry},
                (depart, storage_start),
                edge_occ, node_occ, device_nodes,
                forbidden_edges={eid}, forbidden_nodes={exit_node},
                group=group,
            )
            if leg1_path is None:
                continue
            # Leg 3: out of the storage edge at the far end -> target device.
            leg3_path = self._find_path(
                grid, exit_node, {target},
                (storage_end, arrive),
                edge_occ, node_occ, device_nodes,
                forbidden_edges={eid},
                group=group,
            )
            if leg3_path is None:
                continue

            full_leg1 = leg1_path + [exit_node]
            sub1 = self._commit_transport(
                full_leg1, (depart, storage_start), task.task_id, edge_occ, node_occ, device_nodes,
                group=group,
            )
            edge_occ.reserve(eid, storage_start, storage_end, "storage", owner=task.task_id)
            sub2 = RoutedSubPath(
                nodes=(entry, exit_node),
                edges=(eid,),
                start=storage_start,
                end=storage_end,
                purpose="storage",
            )
            sub3 = self._commit_transport(
                leg3_path, (storage_end, arrive), task.task_id, edge_occ, node_occ, device_nodes,
                group=group,
            )
            return RoutedTask(task=task, subpaths=[sub1, sub2, sub3])
        return None

    # -------------------------------------------------------------- pathfind
    def _find_path(
        self,
        grid: ConnectionGrid,
        source: str,
        targets: Set[str],
        window: Tuple[int, int],
        edge_occ: OccupancyTracker,
        node_occ: OccupancyTracker,
        device_nodes: Set[str],
        forbidden_edges: Set[EdgeId] = frozenset(),
        forbidden_nodes: Set[str] = frozenset(),
        group: str = "",
    ) -> Optional[List[str]]:
        """Shortest conflict-free path from ``source`` to any of ``targets``.

        Returns the node sequence or ``None``.  The ``window`` is half-open
        ``[start, end)``; an empty window is treated as one time unit.
        ``group`` identifies the producer whose split volumes may share
        resources with each other.
        """
        start, end = window
        if end <= start:
            end = start + 1
        used_edges = getattr(self, "_used_edges", set())

        def node_available(node: str) -> bool:
            """Switch nodes must be free; device nodes are serialized by the schedule."""
            if node in device_nodes:
                return True
            return node_occ.is_free(node, start, end, group=group)

        if source in forbidden_nodes or not node_available(source):
            return None
        if source in targets:
            return [source]

        # Dijkstra on (not-yet-used edges, foreign-port touches, hop count).
        # Reusing an already-kept channel segment costs nothing, so routes
        # concentrate on few segments (the heuristic counterpart of objective
        # (12)); hugging the ports of devices that are neither source nor
        # target is penalized so concurrent transports do not wall other
        # devices in.
        foreign_devices = device_nodes - set(targets) - {source}

        def port_touch(node: str) -> int:
            return sum(1 for nb in grid.neighbors(node) if nb in foreign_devices)

        # Heap entries carry the seeded tie-break rank just before the node
        # name: with seed 0 the rank is uniformly 0 and selection falls back
        # to the name order (the pinned behavior); a non-zero seed explores
        # equal-cost frontiers in a reproducibly shuffled order.
        distance: Dict[str, Tuple[int, int, int]] = {source: (0, 0, 0)}
        parent: Dict[str, str] = {}
        heap: List[Tuple[int, int, int, int, str]] = [(0, 0, 0, self._tiebreak(source), source)]
        settled: Set[str] = set()
        while heap:
            new_edges, ports, hops, _rank, current = heapq.heappop(heap)
            if current in settled:
                continue
            settled.add(current)
            if current in targets:
                path = [current]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            if current in device_nodes and current != source:
                continue  # never route through a foreign device
            for neighbour in sorted(grid.neighbors(current)):
                if neighbour in settled or neighbour in forbidden_nodes:
                    continue
                eid = edge_id(current, neighbour)
                if eid in forbidden_edges:
                    continue
                if not edge_occ.is_free(eid, start, end, group=group):
                    continue
                if neighbour in targets:
                    if not node_available(neighbour):
                        continue
                    touch = 0
                else:
                    if neighbour in device_nodes:
                        continue
                    if not node_occ.is_free(neighbour, start, end, group=group):
                        continue
                    touch = port_touch(neighbour)
                cost = (
                    new_edges + (0 if eid in used_edges else 1),
                    ports + touch,
                    hops + 1,
                )
                if neighbour not in distance or cost < distance[neighbour]:
                    distance[neighbour] = cost
                    parent[neighbour] = current
                    heapq.heappush(
                        heap, (cost[0], cost[1], cost[2], self._tiebreak(neighbour), neighbour)
                    )
        return None

    def _commit_transport(
        self,
        path: List[str],
        window: Tuple[int, int],
        owner: str,
        edge_occ: OccupancyTracker,
        node_occ: OccupancyTracker,
        device_nodes: Set[str],
        group: str = "",
    ) -> RoutedSubPath:
        start, end = window
        if end <= start:
            end = start + 1
        edges: List[EdgeId] = []
        for node_a, node_b in zip(path, path[1:]):
            eid = edge_id(node_a, node_b)
            edges.append(eid)
            edge_occ.reserve(eid, start, end, "transport", owner=owner, group=group)
        for node in path:
            if node not in device_nodes:
                node_occ.reserve(node, start, end, "transport", owner=owner, group=group)
        return RoutedSubPath(
            nodes=tuple(path),
            edges=tuple(edges),
            start=start,
            end=end,
            purpose="transport",
        )
