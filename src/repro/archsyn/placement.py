"""Device placement on the connection grid.

Placement and routing interact (Section 3.2: "These locations should be
assigned together with the construction of transportation channels"), and the
ILP engine indeed decides them jointly.  The heuristic engine uses the
classic constructive approach below: devices that exchange many fluid samples
are placed close together, which keeps transportation paths short and lowers
both edge usage and conflict probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.archsyn.grid import ConnectionGrid
from repro.scheduling.transport import TransportTask


def communication_demands(tasks: Sequence[TransportTask]) -> Dict[Tuple[str, str], int]:
    """Number of transportation tasks between every (unordered) device pair.

    Eviction tasks (source == target) contribute a self-demand that placement
    ignores but the router still realizes with a short round trip.
    """
    demands: Dict[Tuple[str, str], int] = {}
    for task in tasks:
        pair = tuple(sorted((task.source_device, task.target_device)))
        demands[pair] = demands.get(pair, 0) + 1
    return demands


@dataclass
class PlacementResult:
    """Mapping from device ids to grid node ids, plus its wirelength cost."""

    placement: Dict[str, str]
    cost: int

    def node_of(self, device_id: str) -> str:
        return self.placement[device_id]


class GreedyPlacer:
    """Deterministic constructive placement with pairwise-swap refinement.

    Algorithm
    ---------
    1. Order devices by total communication volume (most-communicating
       first).
    2. Place the first device near the grid center; place each following
       device on the free node minimizing the weighted Manhattan distance to
       the already placed devices it talks to.
    3. Improve by pairwise swaps (and moves to free nodes) until no swap
       reduces the total weighted wirelength.

    The result is deterministic for a given task list and grid, which keeps
    every experiment reproducible.
    """

    def __init__(self, grid: ConnectionGrid, spacing: int = 2) -> None:
        #: Preferred minimum Manhattan spacing between devices; placing
        #: devices on adjacent nodes is allowed but penalized so channel
        #: segments remain available around every device for storage.
        self.grid = grid
        self.spacing = spacing

    # ------------------------------------------------------------------ API
    def place(
        self,
        device_ids: Sequence[str],
        tasks: Sequence[TransportTask],
    ) -> PlacementResult:
        if not device_ids:
            raise ValueError("there are no devices to place")
        if len(device_ids) > self.grid.num_nodes():
            raise ValueError(
                f"{len(device_ids)} devices cannot fit a {self.grid.rows}x{self.grid.cols} grid"
            )
        demands = communication_demands(tasks)

        volume: Dict[str, int] = {d: 0 for d in device_ids}
        for (dev_a, dev_b), count in demands.items():
            if dev_a in volume:
                volume[dev_a] += count
            if dev_b in volume and dev_b != dev_a:
                volume[dev_b] += count

        order = sorted(device_ids, key=lambda d: (-volume[d], d))
        placement: Dict[str, str] = {}
        occupied: set = set()

        for device_id in order:
            candidates = [n for n in self.grid.nodes_sorted_by_distance(self.grid.center_node())
                          if n not in occupied]
            # Keep the centre-out candidate order as the tie-break so devices
            # spread from the middle of the grid instead of piling into a
            # corner (which would wall their ports in).
            best_node = candidates[0]
            best_cost = None
            for node in candidates:
                trial = dict(placement)
                trial[device_id] = node
                cost = self._total_cost(trial, demands)
                if best_cost is None or cost < best_cost:
                    best_node, best_cost = node, cost
            placement[device_id] = best_node
            occupied.add(best_node)

        placement = self._refine(placement, demands)
        return PlacementResult(placement=placement, cost=self._total_cost(placement, demands))

    # ------------------------------------------------------------ internals
    def _total_cost(self, placement: Dict[str, str], demands: Dict[Tuple[str, str], int]) -> int:
        """Weighted wirelength plus port-accessibility and spacing penalties.

        Every device must keep free (non-device) neighbouring nodes, otherwise
        no transportation path can reach its ports at all; packing devices
        shoulder to shoulder is also penalized so channel segments remain
        available around each device for on-the-spot caching.
        """
        cost = 0
        for (dev_a, dev_b), count in demands.items():
            if dev_a == dev_b or dev_a not in placement or dev_b not in placement:
                continue
            distance = self.grid.manhattan(placement[dev_a], placement[dev_b])
            cost += count * distance
            if distance < self.spacing:
                # Devices sitting shoulder to shoulder wall each other's ports
                # in and leave no channel segments between them for caching;
                # weight this strongly against the (small) wirelength gain.
                cost += 50 * (self.spacing - distance)
        occupied = set(placement.values())
        for node in placement.values():
            free_neighbours = sum(1 for n in self.grid.neighbors(node) if n not in occupied)
            if free_neighbours == 0:
                cost += 10_000  # completely walled-in device: never acceptable
            elif free_neighbours == 1:
                cost += 100     # a single port is a routing bottleneck
        return cost

    def _refine(
        self,
        placement: Dict[str, str],
        demands: Dict[Tuple[str, str], int],
    ) -> Dict[str, str]:
        devices = sorted(placement)
        improved = True
        current_cost = self._total_cost(placement, demands)
        while improved:
            improved = False
            # Pairwise swaps.
            for i, dev_a in enumerate(devices):
                for dev_b in devices[i + 1 :]:
                    trial = dict(placement)
                    trial[dev_a], trial[dev_b] = trial[dev_b], trial[dev_a]
                    trial_cost = self._total_cost(trial, demands)
                    if trial_cost < current_cost:
                        placement, current_cost = trial, trial_cost
                        improved = True
            # Moves onto free nodes.
            occupied = set(placement.values())
            free_nodes = [n for n in self.grid.nodes() if n not in occupied]
            for dev in devices:
                for node in free_nodes:
                    trial = dict(placement)
                    trial[dev] = node
                    trial_cost = self._total_cost(trial, demands)
                    if trial_cost < current_cost:
                        placement, current_cost = trial, trial_cost
                        occupied = set(placement.values())
                        free_nodes = [n for n in self.grid.nodes() if n not in occupied]
                        improved = True
                        break
        return placement
