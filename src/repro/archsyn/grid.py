"""Connection grid (paper Fig. 6).

The connection grid is a regular ``rows x cols`` mesh.  Every node can host
either a device or a switch; every edge is a channel segment able to carry a
transport or cache one fluid sample.  Architectural synthesis selects which
nodes become devices and which edges are kept in the final chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: An undirected grid edge is identified by the frozenset of its two node ids.
EdgeId = FrozenSet[str]


@dataclass(frozen=True)
class GridNode:
    """A node of the connection grid, addressed by (row, col)."""

    row: int
    col: int

    @property
    def node_id(self) -> str:
        return f"n{self.row}_{self.col}"

    def manhattan_distance(self, other: "GridNode") -> int:
        return abs(self.row - other.row) + abs(self.col - other.col)


def edge_id(node_a: str, node_b: str) -> EdgeId:
    """Canonical identifier of the undirected edge between two nodes."""
    if node_a == node_b:
        raise ValueError("an edge needs two distinct endpoints")
    return frozenset((node_a, node_b))


class ConnectionGrid:
    """A ``rows x cols`` orthogonal connection grid.

    Node ids follow the pattern ``n<row>_<col>``; rows and columns are
    0-indexed.  Edges connect horizontally and vertically adjacent nodes.
    """

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be at least 1x1")
        self.rows = rows
        self.cols = cols
        self._nodes: Dict[str, GridNode] = {}
        self._adjacency: Dict[str, List[str]] = {}
        for row in range(rows):
            for col in range(cols):
                node = GridNode(row, col)
                self._nodes[node.node_id] = node
                self._adjacency[node.node_id] = []
        for row in range(rows):
            for col in range(cols):
                node = GridNode(row, col)
                for dr, dc in ((0, 1), (1, 0)):
                    nr, nc = row + dr, col + dc
                    if nr < rows and nc < cols:
                        neighbour = GridNode(nr, nc)
                        self._adjacency[node.node_id].append(neighbour.node_id)
                        self._adjacency[neighbour.node_id].append(node.node_id)

    # --------------------------------------------------------------- queries
    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    def node(self, node_id: str) -> GridNode:
        return self._nodes[node_id]

    def node_at(self, row: int, col: int) -> GridNode:
        node = GridNode(row, col)
        if node.node_id not in self._nodes:
            raise KeyError(f"({row}, {col}) is outside the {self.rows}x{self.cols} grid")
        return node

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> List[str]:
        return list(self._nodes.keys())

    def num_nodes(self) -> int:
        return len(self._nodes)

    def neighbors(self, node_id: str) -> List[str]:
        return list(self._adjacency[node_id])

    def edges(self) -> List[EdgeId]:
        seen: set = set()
        result: List[EdgeId] = []
        for node_id, neighbours in self._adjacency.items():
            for other in neighbours:
                eid = edge_id(node_id, other)
                if eid not in seen:
                    seen.add(eid)
                    result.append(eid)
        return result

    def num_edges(self) -> int:
        return self.rows * (self.cols - 1) + self.cols * (self.rows - 1)

    def has_edge(self, node_a: str, node_b: str) -> bool:
        return node_b in self._adjacency.get(node_a, [])

    def incident_edges(self, node_id: str) -> List[EdgeId]:
        """All grid edges touching a node (the paper's set ``E_i``)."""
        return [edge_id(node_id, other) for other in self._adjacency[node_id]]

    def edge_endpoints(self, eid: EdgeId) -> Tuple[str, str]:
        a, b = sorted(eid)
        return a, b

    def manhattan(self, node_a: str, node_b: str) -> int:
        return self._nodes[node_a].manhattan_distance(self._nodes[node_b])

    def center_node(self) -> str:
        return GridNode(self.rows // 2, self.cols // 2).node_id

    def nodes_sorted_by_distance(self, origin: str) -> List[str]:
        """All nodes ordered by Manhattan distance from ``origin`` (stable)."""
        return sorted(self._nodes, key=lambda n: (self.manhattan(origin, n), n))

    def edge_distance_to_node(self, eid: EdgeId, node_id: str) -> int:
        """Distance from an edge (min over its endpoints) to a node."""
        a, b = self.edge_endpoints(eid)
        return min(self.manhattan(a, node_id), self.manhattan(b, node_id))

    def __repr__(self) -> str:
        return f"ConnectionGrid({self.rows}x{self.cols})"
