"""Architectural synthesis with distributed channel storage (paper Section 3.2).

Starting from a schedule, this package determines

* where every device sits on a *connection grid* (placement),
* which grid edges (channel segments) and switches realize every
  transportation task of the schedule (routing), respecting
  time-multiplexing: paths that are alive simultaneously must not share a
  node or an edge,
* in which channel segment every intermediate fluid sample is cached and for
  how long (distributed channel storage), and
* which grid edges are kept in the final chip (resource minimization,
  objective (12)).

Engines
-------
:class:`~repro.archsyn.router.HeuristicSynthesizer`
    Deterministic placement + time-multiplexed BFS routing; scales to all of
    the paper's assays and is the default engine of the pipeline.
:class:`~repro.archsyn.ilp_synthesis.IlpSynthesizer`
    Exact formulation following the paper's constraints (8)–(12); the path
    construction constraints (9) are encoded as unit network flows, which is
    equivalent but eliminates the degree-encoding's disconnected-cycle corner
    case.  Intended for small instances.

Both engines emit a :class:`~repro.archsyn.architecture.ChipArchitecture`
validated by the same conflict checker.
"""

from repro.archsyn.grid import ConnectionGrid, GridNode
from repro.archsyn.architecture import (
    ChipArchitecture,
    RoutedSubPath,
    RoutedTask,
    ArchitectureValidationError,
)
from repro.archsyn.occupancy import OccupancyTracker, Interval
from repro.archsyn.placement import GreedyPlacer, PlacementResult, communication_demands
from repro.archsyn.router import HeuristicSynthesizer, SynthesisConfig, SynthesisError
from repro.archsyn.ilp_synthesis import IlpSynthesizer, IlpSynthesisConfig

__all__ = [
    "ConnectionGrid",
    "GridNode",
    "ChipArchitecture",
    "RoutedSubPath",
    "RoutedTask",
    "ArchitectureValidationError",
    "OccupancyTracker",
    "Interval",
    "GreedyPlacer",
    "PlacementResult",
    "communication_demands",
    "HeuristicSynthesizer",
    "SynthesisConfig",
    "SynthesisError",
    "IlpSynthesizer",
    "IlpSynthesisConfig",
]
