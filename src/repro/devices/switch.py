"""Switches at channel intersections.

At an intersection of two flow channels a *switch* is built from four valves,
one on each arm (Fig. 5(a)).  At any moment two of the four valves are open,
connecting two of the four incident channel segments; the other two arms are
blocked.  Time-multiplexing these configurations lets different transportation
paths reuse the same intersection at different times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.devices.valve import Valve, ValveState

#: The four arms of a switch, named by compass direction on the grid.
ARMS = ("north", "east", "south", "west")


@dataclass(frozen=True)
class SwitchConfiguration:
    """A set of open arms (usually exactly two) of a switch."""

    open_arms: FrozenSet[str]

    def __post_init__(self) -> None:
        unknown = self.open_arms - set(ARMS)
        if unknown:
            raise ValueError(f"unknown switch arms: {sorted(unknown)}")

    @classmethod
    def connecting(cls, arm_a: str, arm_b: str) -> "SwitchConfiguration":
        if arm_a == arm_b:
            raise ValueError("a switch configuration must connect two different arms")
        return cls(frozenset({arm_a, arm_b}))

    @classmethod
    def all_closed(cls) -> "SwitchConfiguration":
        return cls(frozenset())

    def connects(self, arm_a: str, arm_b: str) -> bool:
        return {arm_a, arm_b} <= self.open_arms


class Switch:
    """A four-valve switch at a grid intersection.

    The switch owns one :class:`Valve` per arm.  The number of valves actually
    *manufactured* equals the number of arms that carry a used channel segment
    in the final architecture — the accounting behind the paper's ``n_v``
    column (arms facing removed grid edges need no valve).
    """

    def __init__(self, node_id: str, present_arms: Optional[Tuple[str, ...]] = None) -> None:
        self.node_id = node_id
        self.present_arms: Tuple[str, ...] = tuple(present_arms) if present_arms else ARMS
        unknown = set(self.present_arms) - set(ARMS)
        if unknown:
            raise ValueError(f"unknown switch arms: {sorted(unknown)}")
        self.valves: Dict[str, Valve] = {
            arm: Valve(valve_id=f"{node_id}.{arm}") for arm in self.present_arms
        }
        self.configuration = SwitchConfiguration.all_closed()
        self._config_history: List[Tuple[float, SwitchConfiguration]] = []

    # ------------------------------------------------------------- actuation
    def apply(self, configuration: SwitchConfiguration, time: float = 0.0) -> None:
        """Actuate the valves to realize ``configuration``.

        Arms listed as open must exist on this switch.
        """
        missing = configuration.open_arms - set(self.present_arms)
        if missing:
            raise ValueError(f"switch {self.node_id}: arms {sorted(missing)} are not present")
        for arm, valve in self.valves.items():
            if arm in configuration.open_arms:
                valve.open(time)
            else:
                valve.close(time)
        self.configuration = configuration
        self._config_history.append((time, configuration))

    def connect(self, arm_a: str, arm_b: str, time: float = 0.0) -> SwitchConfiguration:
        config = SwitchConfiguration.connecting(arm_a, arm_b)
        self.apply(config, time)
        return config

    def close_all(self, time: float = 0.0) -> None:
        self.apply(SwitchConfiguration.all_closed(), time)

    # ------------------------------------------------------------ accounting
    @property
    def valve_count(self) -> int:
        """Number of valves this switch contributes to the chip."""
        return len(self.valves)

    def total_actuations(self) -> int:
        return sum(v.actuation_count for v in self.valves.values())

    def history(self) -> List[Tuple[float, SwitchConfiguration]]:
        return list(self._config_history)

    def __repr__(self) -> str:
        return f"Switch({self.node_id!r}, arms={self.present_arms})"
