"""Flow-channel segments and the fluid samples they carry.

A channel segment is the piece of flow channel between two neighbouring grid
nodes (switches or devices).  The paper's central idea is that such a segment
can *temporarily become storage*: when a fluid sample is parked in it and the
valves at both ends are closed, the segment acts as a distributed storage
cell; when the sample moves on, the segment reverts to a transport resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class FluidSample:
    """An intermediate fluid produced by one operation and consumed by another.

    Attributes
    ----------
    sample_id:
        Unique identifier, conventionally ``"<producer>-><consumer>"``.
    producer / consumer:
        Operation ids from the sequencing graph.
    volume_units:
        Length of channel (in layout units) needed to hold the sample; used
        by the physical design stage to size storage segments.
    """

    sample_id: str
    producer: str
    consumer: str
    volume_units: int = 3

    def __post_init__(self) -> None:
        if self.volume_units <= 0:
            raise ValueError("a fluid sample must occupy at least one channel unit")


@dataclass
class ChannelInterval:
    """A closed-open time interval during which the segment is busy."""

    start: int
    end: int
    purpose: str  # "transport" or "storage"
    sample: Optional[FluidSample] = None

    def overlaps(self, other: "ChannelInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, time: int) -> bool:
        return self.start <= time < self.end


@dataclass
class ChannelSegment:
    """A segment of flow channel between two grid nodes.

    The segment tracks its reservations over time so conflict checking and
    the Fig. 11 execution snapshots can be derived after synthesis.
    """

    segment_id: str
    endpoints: Tuple[str, str]
    length_units: int = 1
    reservations: List[ChannelInterval] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.length_units <= 0:
            raise ValueError("channel segment length must be positive")
        if self.endpoints[0] == self.endpoints[1]:
            raise ValueError("channel segment endpoints must differ")

    # --------------------------------------------------------- reservations
    def reserve(self, start: int, end: int, purpose: str, sample: Optional[FluidSample] = None) -> ChannelInterval:
        """Reserve the segment for ``[start, end)``.

        Overlapping *transport* reservations are tolerated only when both
        samples stem from the same producer operation (split volumes moving
        together); any other overlap is a conflict.

        Raises
        ------
        ValueError
            If the new interval conflicts with an existing reservation (which
            a valid synthesis result must never produce), or the interval is
            empty/negative.
        """
        if end <= start:
            raise ValueError(f"segment {self.segment_id}: empty reservation [{start}, {end})")
        if purpose not in ("transport", "storage"):
            raise ValueError(f"unknown reservation purpose {purpose!r}")
        interval = ChannelInterval(start, end, purpose, sample)
        for existing in self.reservations:
            if not existing.overlaps(interval):
                continue
            same_producer = (
                purpose == "transport"
                and existing.purpose == "transport"
                and sample is not None
                and existing.sample is not None
                and existing.sample.producer == sample.producer
            )
            if same_producer:
                continue
            raise ValueError(
                f"segment {self.segment_id}: reservation [{start}, {end}) for {purpose} "
                f"overlaps existing [{existing.start}, {existing.end}) for {existing.purpose}"
            )
        self.reservations.append(interval)
        self.reservations.sort(key=lambda iv: iv.start)
        return interval

    def is_free(self, start: int, end: int) -> bool:
        """True when ``[start, end)`` does not clash with any reservation."""
        probe = ChannelInterval(start, end, "transport")
        return not any(existing.overlaps(probe) for existing in self.reservations)

    def reservation_at(self, time: int) -> Optional[ChannelInterval]:
        for interval in self.reservations:
            if interval.contains(time):
                return interval
        return None

    def stored_sample_at(self, time: int) -> Optional[FluidSample]:
        interval = self.reservation_at(time)
        if interval is not None and interval.purpose == "storage":
            return interval.sample
        return None

    # ------------------------------------------------------------ accounting
    def busy_time(self) -> int:
        """Total reserved time — used for channel-utilization metrics."""
        return sum(iv.end - iv.start for iv in self.reservations)

    def storage_time(self) -> int:
        return sum(iv.end - iv.start for iv in self.reservations if iv.purpose == "storage")

    def transport_count(self) -> int:
        return sum(1 for iv in self.reservations if iv.purpose == "transport")

    def other_endpoint(self, node: str) -> str:
        a, b = self.endpoints
        if node == a:
            return b
        if node == b:
            return a
        raise KeyError(f"{node!r} is not an endpoint of segment {self.segment_id}")
