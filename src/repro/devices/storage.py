"""Dedicated storage-unit model (the baseline the paper argues against).

A conventional flow-based chip includes one dedicated storage unit: a bank of
``n`` side-by-side channel cells behind a multiplexer (Fig. 1(c)).  Two
properties make it a bottleneck:

* **Port bandwidth** — all store/fetch accesses funnel through the unit's
  port(s); simultaneous accesses must queue, stretching the schedule.
* **Valve overhead** — the multiplexer requires ``2 * ceil(log2 n)`` valves
  per side, plus per-cell isolation valves, all dedicated to storage and
  useless for transport.

This module provides the timing/valve model used by the Fig. 10 comparison
(`repro.storagebaseline` builds the full schedule re-timing on top of it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.devices.channel import FluidSample


def storage_unit_valve_count(num_cells: int, num_ports: int = 1) -> int:
    """Valves needed by a dedicated storage unit with ``num_cells`` cells.

    Model (structure of Fig. 1(c)): each port carries a binary multiplexer of
    ``2 * ceil(log2 num_cells)`` valves (two control lines per address bit),
    and every cell needs one isolation valve at each end (2 per cell) so a
    stored sample is sealed while its neighbours are accessed.
    """
    if num_cells <= 0:
        raise ValueError("a storage unit needs at least one cell")
    if num_ports <= 0:
        raise ValueError("a storage unit needs at least one port")
    mux_bits = max(1, math.ceil(math.log2(num_cells)))
    mux_valves = 2 * mux_bits * num_ports
    cell_valves = 2 * num_cells
    return mux_valves + cell_valves


@dataclass
class StorageAccess:
    """One store or fetch access serviced by the unit."""

    sample: FluidSample
    kind: str  # "store" or "fetch"
    requested_at: int
    started_at: int
    finished_at: int
    cell: Optional[int] = None

    @property
    def queueing_delay(self) -> int:
        return self.started_at - self.requested_at


class DedicatedStorageUnit:
    """Discrete model of the storage unit's port contention and occupancy.

    Accesses are serviced first-come-first-served per port; each access
    occupies a port for ``access_time`` seconds (the time to push a sample
    through the multiplexer into/out of its cell).
    """

    def __init__(self, num_cells: int = 8, num_ports: int = 1, access_time: int = 10) -> None:
        if access_time <= 0:
            raise ValueError("access time must be positive")
        self.num_cells = num_cells
        self.num_ports = num_ports
        self.access_time = access_time
        self._port_free_at: List[int] = [0] * num_ports
        self._cell_contents: List[Optional[FluidSample]] = [None] * num_cells
        self.accesses: List[StorageAccess] = []
        self.peak_occupancy = 0

    # ------------------------------------------------------------------ API
    @property
    def valve_count(self) -> int:
        return storage_unit_valve_count(self.num_cells, self.num_ports)

    def occupancy(self) -> int:
        return sum(1 for cell in self._cell_contents if cell is not None)

    def _acquire_port(self, requested_at: int) -> Tuple[int, int]:
        """Return (port index, start time) of the earliest available port."""
        port = min(range(self.num_ports), key=lambda p: max(self._port_free_at[p], requested_at))
        start = max(self._port_free_at[port], requested_at)
        self._port_free_at[port] = start + self.access_time
        return port, start

    def store(self, sample: FluidSample, requested_at: int) -> StorageAccess:
        """Store a sample; returns the access record including queueing delay.

        Raises
        ------
        RuntimeError
            If all cells are occupied — the caller must size the unit to the
            schedule's peak storage demand (as the paper's baseline does).
        """
        free_cells = [i for i, content in enumerate(self._cell_contents) if content is None]
        if not free_cells:
            raise RuntimeError(
                f"dedicated storage unit overflow: all {self.num_cells} cells are occupied"
            )
        port, start = self._acquire_port(requested_at)
        cell = free_cells[0]
        self._cell_contents[cell] = sample
        access = StorageAccess(
            sample=sample,
            kind="store",
            requested_at=requested_at,
            started_at=start,
            finished_at=start + self.access_time,
            cell=cell,
        )
        self.accesses.append(access)
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy())
        return access

    def fetch(self, sample_id: str, requested_at: int) -> StorageAccess:
        """Fetch a previously stored sample.

        Raises
        ------
        KeyError
            If no cell currently holds a sample with ``sample_id``.
        """
        cell = None
        for idx, content in enumerate(self._cell_contents):
            if content is not None and content.sample_id == sample_id:
                cell = idx
                break
        if cell is None:
            raise KeyError(f"sample {sample_id!r} is not in the storage unit")
        sample = self._cell_contents[cell]
        port, start = self._acquire_port(requested_at)
        self._cell_contents[cell] = None
        access = StorageAccess(
            sample=sample,
            kind="fetch",
            requested_at=requested_at,
            started_at=start,
            finished_at=start + self.access_time,
            cell=cell,
        )
        self.accesses.append(access)
        return access

    # ------------------------------------------------------------ statistics
    def total_queueing_delay(self) -> int:
        return sum(a.queueing_delay for a in self.accesses)

    def max_queueing_delay(self) -> int:
        return max((a.queueing_delay for a in self.accesses), default=0)

    def store_count(self) -> int:
        return sum(1 for a in self.accesses if a.kind == "store")

    def fetch_count(self) -> int:
        return sum(1 for a in self.accesses if a.kind == "fetch")
