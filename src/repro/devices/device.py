"""Devices (mixers, heaters, detectors) and the device library.

A device executes sequencing-graph operations.  The synthesis flow treats
devices abstractly — what matters is which operation kinds a device supports,
its execution timing and its physical footprint (for the layout stage) and
valve count (for resource accounting).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.sequencing_graph import OperationType


class DeviceKind(enum.Enum):
    MIXER = "mixer"
    HEATER = "heater"
    DETECTOR = "detector"
    FILTER = "filter"

    @property
    def supported_operations(self) -> Tuple[OperationType, ...]:
        return _SUPPORTED[self]


_SUPPORTED: Dict[DeviceKind, Tuple[OperationType, ...]] = {
    DeviceKind.MIXER: (OperationType.MIX, OperationType.DILUTE, OperationType.WASH),
    DeviceKind.HEATER: (OperationType.HEAT,),
    DeviceKind.DETECTOR: (OperationType.DETECT,),
    DeviceKind.FILTER: (OperationType.WASH,),
}


@dataclass
class Device:
    """A physical device instance on the chip.

    Attributes
    ----------
    device_id:
        Unique name, e.g. ``"mixer1"``.
    kind:
        The :class:`DeviceKind`.
    footprint:
        (width, height) in layout units, used by device insertion.
    internal_valve_count:
        Valves inside the device (e.g. 9 for a ring mixer).  These are *not*
        counted in the architecture's ``n_v`` metric (the paper excludes
        mixer-internal valves) but are reported separately.
    speedup:
        Relative execution-speed factor; an operation of duration ``d`` takes
        ``ceil(d / speedup)`` on this device.  1.0 reproduces the paper's
        homogeneous-device setting.
    """

    device_id: str
    kind: DeviceKind = DeviceKind.MIXER
    footprint: Tuple[int, int] = (4, 2)
    internal_valve_count: int = 9
    speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.footprint[0] <= 0 or self.footprint[1] <= 0:
            raise ValueError(f"device {self.device_id!r}: footprint must be positive")
        if self.speedup <= 0:
            raise ValueError(f"device {self.device_id!r}: speedup must be positive")

    def supports(self, operation_kind: OperationType) -> bool:
        return operation_kind in self.kind.supported_operations

    def execution_time(self, nominal_duration: int) -> int:
        """Duration of an operation on this device, accounting for speedup."""
        if nominal_duration < 0:
            raise ValueError("nominal duration must be non-negative")
        return int(-(-nominal_duration // self.speedup)) if self.speedup != 1.0 else nominal_duration

    def __hash__(self) -> int:
        return hash(self.device_id)

    def __repr__(self) -> str:
        return f"Device({self.device_id!r}, {self.kind.value})"


class DeviceLibrary:
    """The set of devices available for binding.

    The paper's problem statement takes "the maximum numbers of devices
    allowed in the chip" as an input; a :class:`DeviceLibrary` is the concrete
    realization of that input.
    """

    def __init__(self, devices: Optional[Sequence[Device]] = None) -> None:
        self._devices: Dict[str, Device] = {}
        for device in devices or []:
            self.add(device)

    def add(self, device: Device) -> Device:
        if device.device_id in self._devices:
            raise ValueError(f"duplicate device id {device.device_id!r}")
        self._devices[device.device_id] = device
        return device

    def device(self, device_id: str) -> Device:
        return self._devices[device_id]

    def devices(self) -> List[Device]:
        return list(self._devices.values())

    def devices_for(self, operation_kind: OperationType) -> List[Device]:
        """Devices able to execute the given operation kind."""
        return [d for d in self._devices.values() if d.supports(operation_kind)]

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices

    def __iter__(self):
        return iter(self._devices.values())

    def total_internal_valves(self) -> int:
        return sum(d.internal_valve_count for d in self._devices.values())

    def __repr__(self) -> str:
        kinds = {}
        for d in self._devices.values():
            kinds[d.kind.value] = kinds.get(d.kind.value, 0) + 1
        return f"DeviceLibrary({kinds})"


def default_device_library(
    num_mixers: int = 2,
    num_detectors: int = 0,
    num_heaters: int = 0,
    mixer_footprint: Tuple[int, int] = (4, 2),
) -> DeviceLibrary:
    """Build the homogeneous device library used by the paper's experiments.

    The paper's evaluation executes all assays on a small number of mixers
    (operations are all mixing-class).  Detection/heating devices can be added
    for assays such as IVD that include optical detection steps.
    """
    if num_mixers < 1:
        raise ValueError("at least one mixer is required")
    library = DeviceLibrary()
    for idx in range(1, num_mixers + 1):
        library.add(Device(f"mixer{idx}", DeviceKind.MIXER, footprint=mixer_footprint))
    for idx in range(1, num_detectors + 1):
        library.add(Device(f"detector{idx}", DeviceKind.DETECTOR, footprint=(2, 2), internal_valve_count=2))
    for idx in range(1, num_heaters + 1):
        library.add(Device(f"heater{idx}", DeviceKind.HEATER, footprint=(3, 2), internal_valve_count=4))
    return library
