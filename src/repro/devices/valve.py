"""Valve primitive.

A valve is the basic control element of a flow-based chip: a control channel
crossing above a flow channel; pressurizing the control channel squeezes the
elastic membrane and blocks the flow channel (Fig. 1(a)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class ValveState(enum.Enum):
    """Open (fluid can pass) or closed (flow channel squeezed shut)."""

    OPEN = "open"
    CLOSED = "closed"

    def toggled(self) -> "ValveState":
        return ValveState.CLOSED if self is ValveState.OPEN else ValveState.OPEN


@dataclass
class Valve:
    """A single micro-valve on the control layer.

    Attributes
    ----------
    valve_id:
        Unique identifier within the chip.
    position:
        Optional (x, y) location in layout units.
    state:
        Current :class:`ValveState`; new valves default to OPEN (no pressure).
    actuation_count:
        Number of state changes so far.  Valve wear is proportional to the
        actuation count, so synthesis results with fewer switching events are
        more reliable — tracked for the ablation experiments.
    """

    valve_id: str
    position: Optional[Tuple[int, int]] = None
    state: ValveState = ValveState.OPEN
    actuation_count: int = 0
    _history: List[Tuple[float, ValveState]] = field(default_factory=list, repr=False)

    def close(self, time: float = 0.0) -> None:
        """Pressurize the control channel (block the flow channel)."""
        if self.state is not ValveState.CLOSED:
            self.state = ValveState.CLOSED
            self.actuation_count += 1
            self._history.append((time, self.state))

    def open(self, time: float = 0.0) -> None:
        """Release the control channel pressure (allow flow)."""
        if self.state is not ValveState.OPEN:
            self.state = ValveState.OPEN
            self.actuation_count += 1
            self._history.append((time, self.state))

    def set_state(self, state: ValveState, time: float = 0.0) -> None:
        if state is ValveState.OPEN:
            self.open(time)
        else:
            self.close(time)

    @property
    def is_open(self) -> bool:
        return self.state is ValveState.OPEN

    @property
    def is_closed(self) -> bool:
        return self.state is ValveState.CLOSED

    def history(self) -> List[Tuple[float, ValveState]]:
        """Timestamped actuation history (time, new state)."""
        return list(self._history)
