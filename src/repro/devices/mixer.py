"""Ring-mixer device model.

A mixer (Fig. 1(b)) is a circular flow loop with three pumping valves on top
that are actuated in a rotating pattern to circulate the two fluids, plus six
valves controlling the inlets and outlets.  The model below tracks the valve
inventory and the peristaltic actuation sequence; it is used by the simulator
to estimate control-sequence lengths and by tests as a concrete composite
component built from :class:`~repro.devices.valve.Valve` primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.devices.device import Device, DeviceKind
from repro.devices.valve import Valve


#: Names of the three peristaltic pumping valves.
PUMP_VALVES = ("pump1", "pump2", "pump3")
#: Names of the six input/output control valves.
IO_VALVES = ("in_top", "in_bottom", "out_top", "out_bottom", "isolate_left", "isolate_right")


class Mixer(Device):
    """A concrete ring mixer built from nine valves."""

    def __init__(
        self,
        device_id: str,
        footprint: Tuple[int, int] = (4, 2),
        pump_period_s: float = 0.5,
        speedup: float = 1.0,
    ) -> None:
        super().__init__(
            device_id=device_id,
            kind=DeviceKind.MIXER,
            footprint=footprint,
            internal_valve_count=len(PUMP_VALVES) + len(IO_VALVES),
            speedup=speedup,
        )
        if pump_period_s <= 0:
            raise ValueError("pump period must be positive")
        self.pump_period_s = pump_period_s
        self.valves: Dict[str, Valve] = {
            name: Valve(valve_id=f"{device_id}.{name}") for name in PUMP_VALVES + IO_VALVES
        }

    # ---------------------------------------------------------------- pumping
    def pumping_sequence(self, mixing_time_s: int) -> List[Tuple[float, str]]:
        """Peristaltic actuation schedule for a mixing operation.

        Returns a list of ``(time, valve_name)`` close events: the three pump
        valves are closed one after another in a rotating pattern, each step
        lasting ``pump_period_s`` seconds.  The length of this sequence is a
        proxy for control-signal load during the operation.
        """
        if mixing_time_s < 0:
            raise ValueError("mixing time must be non-negative")
        events: List[Tuple[float, str]] = []
        time = 0.0
        idx = 0
        while time < mixing_time_s:
            events.append((time, PUMP_VALVES[idx % len(PUMP_VALVES)]))
            idx += 1
            time += self.pump_period_s
        return events

    def actuations_for_mix(self, mixing_time_s: int) -> int:
        """Number of valve actuations needed for one mixing operation."""
        return len(self.pumping_sequence(mixing_time_s))

    # --------------------------------------------------------------- loading
    def load_inputs(self, time: float = 0.0) -> None:
        """Open input valves / close outputs to accept two fluid volumes."""
        self.valves["in_top"].open(time)
        self.valves["in_bottom"].open(time)
        self.valves["out_top"].close(time)
        self.valves["out_bottom"].close(time)

    def seal(self, time: float = 0.0) -> None:
        """Close all I/O valves so mixing can run in the closed ring."""
        for name in IO_VALVES:
            self.valves[name].close(time)

    def drain(self, time: float = 0.0) -> None:
        """Open the outputs to push the mixed product out."""
        self.valves["out_top"].open(time)
        self.valves["out_bottom"].open(time)
        self.valves["in_top"].close(time)
        self.valves["in_bottom"].close(time)
