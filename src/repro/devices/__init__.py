"""Component models of flow-based (continuous-flow) microfluidic biochips.

Flow-based biochips are built from two PDMS layers: a *flow layer* carrying
the fluids and a *control layer* carrying pressurized air that squeezes the
flow channels shut (Section 1, Fig. 1 of the paper).  The primitive is the
:class:`Valve`; valves compose into :class:`Switch` crossings (4 valves at a
channel intersection), :class:`Mixer` devices (9 valves: 3 pumping + 6 I/O)
and the conventional :class:`DedicatedStorageUnit` (a bank of side-by-side
channel cells behind a multiplexer).

These models carry the resource accounting (valve counts, footprints,
access timing) used by the architectural synthesis and the dedicated-storage
baseline comparison (Fig. 10).
"""

from repro.devices.valve import Valve, ValveState
from repro.devices.channel import ChannelSegment, FluidSample
from repro.devices.switch import Switch, SwitchConfiguration
from repro.devices.device import Device, DeviceKind, DeviceLibrary, default_device_library
from repro.devices.mixer import Mixer
from repro.devices.storage import DedicatedStorageUnit, StorageAccess, storage_unit_valve_count

__all__ = [
    "Valve",
    "ValveState",
    "ChannelSegment",
    "FluidSample",
    "Switch",
    "SwitchConfiguration",
    "Device",
    "DeviceKind",
    "DeviceLibrary",
    "default_device_library",
    "Mixer",
    "DedicatedStorageUnit",
    "StorageAccess",
    "storage_unit_valve_count",
]
