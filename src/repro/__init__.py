"""repro — flow-based microfluidic biochip synthesis with distributed channel storage.

A Python reproduction of Liu et al., "Transport or Store? Synthesizing
Flow-based Microfluidic Biochips using Distributed Channel Storage"
(DAC 2017).

The top-level API is small:

* :func:`repro.synthesize` — run the complete flow on a sequencing graph;
* :class:`repro.FlowConfig` — configure devices, scheduling and synthesis;
* :mod:`repro.graph` — build or load assay sequencing graphs (PCR, IVD, CPA,
  random assays, JSON I/O);
* :mod:`repro.experiments` — regenerate every table and figure of the paper.

Quick start
-----------
>>> from repro import synthesize, FlowConfig
>>> from repro.graph import build_pcr
>>> result = synthesize(build_pcr(), FlowConfig(num_mixers=2))
>>> result.execution_time > 0
True
>>> result.architecture.num_edges > 0
True
"""

from repro.synthesis.config import FlowConfig, SchedulerEngine, SynthesisEngine
from repro.synthesis.flow import SynthesisResult, synthesize
from repro.synthesis.metrics import FlowMetrics, collect_metrics
from repro.synthesis.report import result_report

__version__ = "1.0.0"

__all__ = [
    "FlowConfig",
    "SchedulerEngine",
    "SynthesisEngine",
    "SynthesisResult",
    "synthesize",
    "FlowMetrics",
    "collect_metrics",
    "result_report",
    "__version__",
]
