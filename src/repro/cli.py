"""Command-line interface: synthesize a chip for an assay protocol.

Usage
-----
Synthesize one of the built-in paper assays::

    python -m repro --assay PCR --mixers 2

or a custom protocol stored as JSON (see ``repro.graph.serialization``)::

    python -m repro --protocol my_assay.json --mixers 3 --detectors 1 \
        --svg chip.svg

The command prints the synthesis report (schedule, architecture, layout
metrics) and optionally writes the compact layout as an SVG drawing.

Batch mode runs many jobs from a JSON manifest through the stage-granular
batch-synthesis engine (see ``repro.batch.jobs`` for the manifest format)::

    python -m repro batch manifest.json --workers 4 --cache-dir .repro-cache

With a ``--cache-dir`` the stage artifacts persist on disk, so re-running
the same manifest completes without a single solver invocation.

Sweep mode expands a parameter grid into stage-shared jobs (see
:func:`repro.batch.jobs.expand_sweep` for the spec format)::

    python -m repro sweep sweep.json --workers 4 --cache-dir .repro-cache

Sweep points that only vary downstream knobs (say, physical-design
parameters) share the upstream stage artifacts: the schedule is solved once
for the whole grid, and the report's ``stage`` lines show exactly which
stages ran versus were replayed or shared.

Explore mode searches the flow-config × synthetic-workload space for the
Pareto frontier over configurable objectives (see ``repro.explore`` and
``docs/explore.md``)::

    python -m repro explore spec.json --state-dir .repro-explore \
        --cache-dir .repro-cache --json frontier.json

With a ``--state-dir`` the frontier and the evaluated-candidate set persist
after every evaluation chunk, so an interrupted exploration resumes where it
stopped (and the stage cache replays whatever the interrupted run solved).

Serve mode runs the long-lived HTTP synthesis service (see
``repro.service`` and ``docs/service.md``)::

    python -m repro serve --port 8642 --workers 2 --cache-dir .repro-cache

Every job-running mode also accepts ``--cache-backend`` (``memory``,
``disk``, or ``shared``) and — for ``shared`` — ``--cache-addr HOST:PORT``
pointing at a ``repro cache-daemon``, which pools stage artifacts and
single-flight claims across processes so N replicas perform each solve
exactly once between them::

    python -m repro cache-daemon --port 8643
    python -m repro serve --port 8642 --cache-addr 127.0.0.1:8643

Simulate mode runs the full flow with the Monte-Carlo verification stage
enabled and reports the stochastic makespan distribution and the
fault-recovery rate instead of a single deterministic number::

    python -m repro simulate --assay PCR --trials 64 --jitter uniform \
        --fault-rate 0.05

Bench mode runs the small benchmark fixtures cold, times an exploration
smoke plus a two-replica shared-cache throughput probe, and writes
machine-readable telemetry — per-experiment wall time, solver invocations,
the solver backend each exact stage ran on, and a delta against the
previous recorded ``BENCH_*.json`` — to ``BENCH_7.json``::

    python -m repro bench --out BENCH_7.json

Every job-running mode accepts ``--solver`` to force both ILPs onto one
registered solver backend (``highs``, ``branch-and-bound``, or the default
``portfolio`` which falls back from HiGHS to the dependency-free branch
and bound when no usable incumbent arrives within the time cap).

Batch manifests and sweep specs are then submitted over HTTP
(``POST /jobs``) and share one hot in-process stage cache across requests,
including concurrent ones.

See ``docs/cli.md`` for the full subcommand and exit-code reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.graph.serialization import load_graph
from repro.ilp.backends import backend_names
from repro.synthesis.config import (
    FlowConfig,
    SchedulerEngine,
    SynthesisEngine,
    apply_solver_override,
)
from repro.synthesis.flow import synthesize
from repro.synthesis.report import result_report


def _add_solver_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--solver`` override: one backend for both ILPs.

    Applies to every job of a batch/sweep/service submission, overriding
    both ``scheduler_backend`` and ``archsyn_backend`` of each job's flow
    config (per-job manifest values included) — the operational "run this
    whole workload on that solver" switch.  The semantics live in
    :func:`repro.synthesis.config.apply_solver_override`.
    """
    parser.add_argument(
        "--solver",
        choices=sorted(backend_names()),
        default=None,
        help="solver backend for both ILPs (default: each config's own "
        "backends, normally 'portfolio' = HiGHS with branch-and-bound "
        "fallback)",
    )


def _add_obs_arguments(
    parser: argparse.ArgumentParser, trace: bool = True
) -> None:
    """The shared observability flags of every job-running subcommand.

    ``--log-level`` attaches a stderr handler to the ``repro.*`` logger
    taxonomy (see :mod:`repro.obs.logs`); ``--log-json`` switches it to
    one-object-per-line JSON records (and implies ``--log-level info`` when
    no level is given).  ``--trace-out`` installs a trace recorder for the
    run and writes the collected spans as Chrome trace-event JSON —
    loadable in Perfetto or ``chrome://tracing`` (see docs/observability.md).
    """
    from repro.obs.logs import LOG_LEVELS

    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help="enable logging for the repro.* subsystems at this level "
        "(default: logging stays silent)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines (implies --log-level info "
        "when --log-level is not given)",
    )
    if trace:
        parser.add_argument(
            "--trace-out",
            dest="trace_out",
            type=Path,
            default=None,
            help="trace this run and write Chrome trace-event JSON here "
            "(open in Perfetto or chrome://tracing)",
        )


def _configure_obs_logging(
    args: argparse.Namespace, default_level: Optional[str] = None
) -> None:
    """Apply the ``--log-level``/``--log-json`` flags, if any."""
    from repro.obs.logs import configure_logging

    level = getattr(args, "log_level", None)
    if level is None and getattr(args, "log_json", False):
        level = "info"
    if level is None:
        level = default_level
    if level is not None:
        configure_logging(level=level, json_lines=getattr(args, "log_json", False))


def _observability(args: argparse.Namespace):
    """Context manager wiring the obs flags around one CLI run.

    Configures logging immediately; when ``--trace-out`` was given,
    installs a per-run trace recorder under a root ``repro`` span and, on
    the way out (success or failure), writes the Chrome trace-event JSON
    export to the requested path.
    """
    import contextlib

    _configure_obs_logging(args)
    trace_out = getattr(args, "trace_out", None)

    @contextlib.contextmanager
    def _session():
        if trace_out is None:
            yield None
            return
        from repro.obs.trace import (
            TraceRecorder,
            install_recorder,
            span as obs_span,
            uninstall_recorder,
        )

        rec = TraceRecorder()
        token = install_recorder(rec)
        try:
            with obs_span("repro", category="cli"):
                yield rec
        finally:
            uninstall_recorder(token)
            rec.write(trace_out)
            print(f"trace written to {trace_out}", file=sys.stderr)

    return _session()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesize a flow-based microfluidic biochip with distributed channel storage.",
        epilog="Batch mode: 'repro batch MANIFEST.json [--workers N] [--cache-dir DIR]' runs "
        "many jobs from a JSON manifest through the stage-granular batch engine "
        "(see 'repro batch --help').  Sweep mode: 'repro sweep SPEC.json' expands a "
        "parameter grid into stage-shared jobs (see 'repro sweep --help').  "
        "Explore mode: 'repro explore SPEC.json' searches the config × "
        "workload space for a Pareto frontier (see 'repro explore --help' "
        "and docs/explore.md).  "
        "Serve mode: 'repro serve' runs the long-lived HTTP synthesis service "
        "(see 'repro serve --help' and docs/service.md).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--assay",
        choices=sorted(PAPER_ASSAYS),
        help="one of the paper's benchmark assays",
    )
    source.add_argument(
        "--protocol",
        type=Path,
        help="path to a sequencing-graph JSON file",
    )
    parser.add_argument("--mixers", type=int, default=2, help="number of mixers (default 2)")
    parser.add_argument("--detectors", type=int, default=0, help="number of detectors (default 0)")
    parser.add_argument("--heaters", type=int, default=0, help="number of heaters (default 0)")
    parser.add_argument("--transport-time", type=int, default=10,
                        help="device-to-device transport time u_c in seconds (default 10)")
    parser.add_argument("--grid", type=int, nargs=2, metavar=("ROWS", "COLS"), default=(4, 4),
                        help="connection-grid size (default 4 4)")
    parser.add_argument("--scheduler", choices=["auto", "ilp", "list"], default="auto",
                        help="scheduling engine (default auto)")
    parser.add_argument("--synthesis", choices=["heuristic", "ilp"], default="heuristic",
                        help="architectural-synthesis engine (default heuristic)")
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="ILP time limit in seconds (default 60)")
    _add_solver_argument(parser)
    parser.add_argument("--no-storage-objective", action="store_true",
                        help="optimize execution time only (the Fig. 9 baseline)")
    parser.add_argument("--svg", type=Path, default=None,
                        help="write the compact layout to this SVG file")
    parser.add_argument("--schedule-table", action="store_true",
                        help="also print the full (operation, device, start, end) table")
    _add_obs_arguments(parser)
    return parser


def _config_from_args(args: argparse.Namespace) -> FlowConfig:
    config = FlowConfig(
        num_mixers=args.mixers,
        num_detectors=args.detectors,
        num_heaters=args.heaters,
        transport_time=args.transport_time,
        grid_rows=args.grid[0],
        grid_cols=args.grid[1],
        scheduler=SchedulerEngine(args.scheduler),
        synthesis=SynthesisEngine(args.synthesis),
        ilp_time_limit_s=args.time_limit,
        archsyn_time_limit_s=args.time_limit,
        storage_aware=not args.no_storage_objective,
    )
    return apply_solver_override(config, args.solver)


def _add_cache_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared cache-backend flags of every job-running subcommand.

    ``--cache-backend`` picks a name from the
    :mod:`repro.batch.cache_backends` registry; the default keeps the
    historical behavior (``disk`` when ``--cache-dir`` is given, plain
    ``memory`` otherwise).  ``--cache-addr`` points the ``shared`` backend
    at a ``repro cache-daemon`` — and, given alone, implies
    ``--cache-backend shared``.
    """
    from repro.batch import cache_backend_names

    parser.add_argument(
        "--cache-backend",
        choices=sorted(cache_backend_names()),
        default=None,
        help="cache backend behind the in-memory LRU (default: 'disk' with "
        "--cache-dir, else 'memory'); 'shared' pools artifacts and "
        "single-flight claims across processes via a repro cache-daemon",
    )
    parser.add_argument(
        "--cache-addr",
        default=None,
        metavar="HOST:PORT",
        help="address of a running 'repro cache-daemon' (required by "
        "--cache-backend shared; implies it when given alone)",
    )


def _build_cache(args: argparse.Namespace, parser: argparse.ArgumentParser):
    """Build the configured cache (wrapped for claims when cross-process).

    Misconfigurations (``shared`` without an address, a malformed address)
    surface as ``parser.error`` — exit code 2, like every other CLI input
    problem.  When the backend arbitrates cross-process claims, the cache
    is wrapped in a :class:`~repro.service.singleflight.SingleFlightCache`
    so concurrent CLI runs against one daemon solve each stage once
    between them, exactly like service replicas do.
    """
    from repro.batch import ResultCache

    backend = args.cache_backend
    if backend is None and args.cache_addr is not None:
        backend = "shared"
    if backend == "shared" and args.cache_addr is None:
        parser.error("--cache-backend shared requires --cache-addr HOST:PORT")
    try:
        cache = ResultCache(
            cache_dir=args.cache_dir, backend=backend, cache_addr=args.cache_addr
        )
    except ValueError as exc:
        parser.error(str(exc))
    if cache.claim_tier is not None:
        from repro.service.singleflight import SingleFlightCache

        return SingleFlightCache(cache)
    return cache


def _build_jobs_parser(prog: str, description: str, source_help: str) -> argparse.ArgumentParser:
    """Shared argument surface of the ``batch`` and ``sweep`` subcommands."""
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("spec", type=Path, help=source_help)
    parser.add_argument("--workers", type=int, default=1,
                        help="process count for stage execution (default 1 = serial)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="directory for the persistent stage-cache tier (default: memory only)")
    _add_cache_backend_arguments(parser)
    parser.add_argument("--json", dest="json_out", type=Path, default=None,
                        help="also write per-job metrics and batch totals to this JSON file")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort the batch on the first job failure")
    _add_solver_argument(parser)
    _add_obs_arguments(parser)
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    return _build_jobs_parser(
        prog="repro batch",
        description="Run a batch of synthesis jobs from a JSON manifest "
        "through the stage-granular batch-synthesis engine.",
        source_help="path to the JSON job manifest",
    )


def build_sweep_parser() -> argparse.ArgumentParser:
    return _build_jobs_parser(
        prog="repro sweep",
        description="Expand a parameter-grid sweep spec into stage-shared "
        "jobs and run them through the batch engine; sweep points that only "
        "vary downstream knobs reuse the upstream stage artifacts (e.g. a "
        "physical-design sweep performs exactly one scheduling solve).",
        source_help="path to the JSON sweep spec "
        '(e.g. {"assay": "PCR", "sweep": {"pitch": [5, 6]}})',
    )


def build_explore_parser() -> argparse.ArgumentParser:
    """Argument surface of the ``repro explore`` subcommand."""
    from repro.explore import strategy_names

    parser = argparse.ArgumentParser(
        prog="repro explore",
        description="Search the flow-config × workload space for the Pareto "
        "frontier over the spec's objectives, executing candidates through "
        "the stage-granular batch engine so configs sharing upstream stages "
        "share their solves (see docs/explore.md for the spec format).",
    )
    parser.add_argument("spec", type=Path, help="path to the JSON exploration spec")
    parser.add_argument("--workers", type=int, default=1,
                        help="process count for stage execution (default 1 = serial)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="directory for the persistent stage-cache tier (default: memory only)")
    _add_cache_backend_arguments(parser)
    parser.add_argument("--state-dir", type=Path, default=None,
                        help="directory for resumable exploration state "
                        "(frontier + evaluated candidates; default: no persistence)")
    parser.add_argument("--json", dest="json_out", type=Path, default=None,
                        help="also write the frontier and exploration totals to this JSON file")
    parser.add_argument("--budget", type=int, default=None,
                        help="override the spec's budget (max full evaluations)")
    parser.add_argument("--strategy", choices=sorted(strategy_names()), default=None,
                        help="override the spec's search strategy")
    parser.add_argument("--no-warm-start", action="store_true",
                        help="do not seed candidate solves with neighboring "
                        "candidates' schedules (A/B switch; the frontier "
                        "contents are identical either way)")
    _add_solver_argument(parser)
    _add_obs_arguments(parser)
    return parser


def run_explore(argv: List[str]) -> int:
    """The ``repro explore`` subcommand; returns a process exit code.

    Exit codes follow the repository convention: ``2`` for an unusable spec
    (malformed JSON, unknown axes/objectives/strategy, state belonging to a
    different spec), ``1`` when every evaluated candidate failed (there is
    no frontier to report), ``0`` otherwise.
    """
    from repro.explore import (
        ExplorationEngine,
        format_exploration_report,
        load_spec,
    )

    parser = build_explore_parser()
    args = parser.parse_args(argv)
    if args.budget is not None and args.budget < 1:
        parser.error("--budget must be at least 1")
    if not args.spec.exists():
        parser.error(f"exploration spec {args.spec} does not exist")
    try:
        spec = load_spec(args.spec)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"invalid exploration spec: {exc}", file=sys.stderr)
        return 2
    if args.budget is not None:
        spec.budget = args.budget
    if args.strategy is not None:
        spec.strategy = args.strategy

    state_path = (
        args.state_dir / "explore_state.json" if args.state_dir is not None else None
    )
    cache = _build_cache(args, parser)
    engine = ExplorationEngine(
        spec,
        cache=cache,
        max_workers=max(1, args.workers),
        state_path=state_path,
        solver=args.solver,
        warm_start=not args.no_warm_start,
    )
    try:
        with _observability(args):
            report = engine.run()
    except ValueError as exc:
        # Structural problems surfaced mid-setup (foreign state file,
        # duplicate candidate ids) are input errors, not synthesis failures.
        print(f"invalid exploration: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - infrastructure failure
        print(f"exploration failed: {exc}", file=sys.stderr)
        return 1
    finally:
        cache.close()

    print(format_exploration_report(report))
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(report.to_json_payload(), indent=2))
        print(f"\nexploration frontier written to {args.json_out}")

    if report.evaluated > 0 and report.failed == report.evaluated:
        print("every evaluated candidate failed", file=sys.stderr)
        return 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument surface of the ``repro serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the long-lived synthesis service: an asyncio HTTP "
        "server accepting batch manifests and sweep specs on POST /jobs, with "
        "one shared stage cache so concurrent and repeated submissions reuse "
        "each other's schedule/architecture artifacts (see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port; 0 binds an ephemeral port (default 8642)")
    parser.add_argument("--workers", type=int, default=2,
                        help="number of jobs run concurrently (default 2)")
    parser.add_argument("--engine-workers", type=int, default=1,
                        help="process count for each job's stage tiers (default 1 = inline)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="directory for the persistent stage-cache tier "
                        "(default: memory only; required for restart resume)")
    _add_cache_backend_arguments(parser)
    parser.add_argument("--drain-timeout", type=float, default=5.0,
                        help="seconds shutdown waits for running jobs before "
                        "flushing the cache and exiting (default 5)")
    _add_solver_argument(parser)
    _add_obs_arguments(parser, trace=False)
    return parser


def run_serve(argv: List[str]) -> int:
    """The ``repro serve`` subcommand; blocks until shutdown, returns 0."""
    import asyncio
    import contextlib
    import signal

    from repro.service import ServiceConfig, SynthesisService

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.workers < 1 or args.engine_workers < 1:
        parser.error("--workers and --engine-workers must be at least 1")
    # Long-running processes log their lifecycle by default; --log-level
    # still overrides (e.g. 'debug', or 'error' to quiet them down).
    _configure_obs_logging(args, default_level="info")
    cache_backend = args.cache_backend
    if cache_backend is None and args.cache_addr is not None:
        cache_backend = "shared"
    if cache_backend == "shared" and args.cache_addr is None:
        parser.error("--cache-backend shared requires --cache-addr HOST:PORT")

    try:
        service = SynthesisService(
            ServiceConfig(
                host=args.host,
                port=args.port,
                workers=args.workers,
                engine_workers=args.engine_workers,
                cache_dir=args.cache_dir,
                cache_backend=cache_backend,
                cache_addr=args.cache_addr,
                drain_timeout_s=args.drain_timeout,
                solver=args.solver,
            )
        )
    except ValueError as exc:
        parser.error(str(exc))

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            # Not every platform wires loop signal handlers (Windows);
            # KeyboardInterrupt still lands in the except below there.
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, service.request_shutdown)
        await service.start()
        backend_name = getattr(service.cache.inner, "backend_name", "memory")
        print(
            f"repro service listening on http://{args.host}:{service.bound_port} "
            f"({args.workers} worker(s), cache_dir={args.cache_dir}, "
            f"cache_backend={backend_name})",
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            flushed = service.flushed_on_shutdown
            print(f"repro service stopped ({flushed or 0} artifact(s) flushed)", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def build_cache_daemon_parser() -> argparse.ArgumentParser:
    """Argument surface of the ``repro cache-daemon`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro cache-daemon",
        description="Run the shared cache daemon: a small key-value + "
        "single-flight-claim server that 'repro serve' replicas and batch "
        "runs configured with '--cache-backend shared' pool their stage "
        "artifacts through, so N processes perform each solve exactly once "
        "between them (see docs/service.md).  Entries are pickles: bind "
        "only to loopback or a trusted private network.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8643,
                        help="TCP port; 0 binds an ephemeral port (default 8643)")
    parser.add_argument("--max-entries", type=int, default=4096,
                        help="bound on stored entries; least-recently-used "
                        "entries are evicted (default 4096)")
    _add_obs_arguments(parser, trace=False)
    return parser


def run_cache_daemon(argv: List[str]) -> int:
    """The ``repro cache-daemon`` subcommand; blocks until shutdown, returns 0."""
    import asyncio
    import contextlib
    import signal

    from repro.service.cachedaemon import CacheDaemon, CacheDaemonConfig

    parser = build_cache_daemon_parser()
    args = parser.parse_args(argv)
    if args.max_entries < 1:
        parser.error("--max-entries must be at least 1")
    _configure_obs_logging(args, default_level="info")

    daemon = CacheDaemon(
        CacheDaemonConfig(host=args.host, port=args.port, max_entries=args.max_entries)
    )

    async def _serve() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, daemon.request_shutdown)
        await daemon.start()
        print(
            f"repro cache daemon listening on http://{args.host}:{daemon.bound_port} "
            f"(max_entries={args.max_entries})",
            flush=True,
        )
        try:
            await daemon.serve_forever()
        finally:
            print("repro cache daemon stopped", flush=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def build_simulate_parser() -> argparse.ArgumentParser:
    """Argument surface of the ``repro simulate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro simulate",
        description="Synthesize an assay with the Monte-Carlo verification "
        "stage enabled and report the stochastic makespan distribution "
        "(p50/p95/p99), the fault-recovery rate, and violation diagnostics "
        "(see docs/simulation.md for the fault model and seed semantics).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--assay", choices=sorted(PAPER_ASSAYS),
                        help="one of the paper's benchmark assays")
    source.add_argument("--protocol", type=Path,
                        help="path to a sequencing-graph JSON file")
    parser.add_argument("--mixers", type=int, default=None,
                        help="number of mixers (default: the assay's paper setup)")
    parser.add_argument("--detectors", type=int, default=None,
                        help="number of detectors (default: the assay's paper setup)")
    parser.add_argument("--heaters", type=int, default=None,
                        help="number of heaters (default: the assay's paper setup)")
    parser.add_argument("--scheduler", choices=["auto", "ilp", "list"], default="auto",
                        help="scheduling engine (default auto)")
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="ILP time limit in seconds (default 60)")
    _add_solver_argument(parser)
    parser.add_argument("--trials", type=int, default=32,
                        help="number of Monte-Carlo trials (default 32)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed of the trial streams (default 0)")
    parser.add_argument("--jitter", choices=["none", "uniform", "normal"],
                        default="none",
                        help="duration-jitter distribution (default none)")
    parser.add_argument("--jitter-spread", type=float, default=0.1,
                        help="jitter spread as a fraction of nominal duration "
                        "(default 0.1)")
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        help="per-operation device-fault probability (default 0)")
    parser.add_argument("--channel-fault-rate", type=float, default=0.0,
                        help="per-transport channel-fault probability (default 0)")
    parser.add_argument("--max-retries", type=int, default=1,
                        help="retries on a faulted device before migrating "
                        "(default 1)")
    parser.add_argument("--wash-time", type=int, default=0,
                        help="contamination wash time between unrelated "
                        "operations on one device (default 0 = off)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes to shard trials across; the "
                        "report is byte-identical for any count (default 1)")
    parser.add_argument("--json", dest="json_out", type=Path, default=None,
                        help="also write the verification report to this JSON file")
    _add_obs_arguments(parser)
    return parser


def run_simulate(argv: List[str]) -> int:
    """The ``repro simulate`` subcommand; returns a process exit code."""
    from dataclasses import replace as dc_replace

    parser = build_simulate_parser()
    args = parser.parse_args(argv)
    if args.assay:
        graph = assay_by_name(args.assay)
        config = FlowConfig.paper_defaults_for(args.assay)
    else:
        if not args.protocol.exists():
            parser.error(f"protocol file {args.protocol} does not exist")
        graph = load_graph(args.protocol)
        config = FlowConfig()
    overrides = {
        "num_mixers": args.mixers,
        "num_detectors": args.detectors,
        "num_heaters": args.heaters,
    }
    config = dc_replace(
        config,
        **{name: value for name, value in overrides.items() if value is not None},
        scheduler=SchedulerEngine(args.scheduler),
        ilp_time_limit_s=args.time_limit,
        verify=True,
        verify_trials=args.trials,
        verify_seed=args.seed,
        verify_jitter=args.jitter,
        verify_jitter_spread=args.jitter_spread,
        verify_fault_rate=args.fault_rate,
        verify_channel_fault_rate=args.channel_fault_rate,
        verify_max_retries=args.max_retries,
        verify_wash_time=args.wash_time,
        verify_workers=args.workers,
    )
    config = apply_solver_override(config, args.solver)
    try:
        with _observability(args):
            result = synthesize(graph, config)
    except Exception as exc:  # noqa: BLE001 - includes VerificationError
        print(f"simulation failed: {exc}", file=sys.stderr)
        return 1

    report = result.verification
    payload = report.as_dict()
    # Mirror the batch/service payload shape: the deterministic replay's
    # diagnostics travel with the distribution (empty on success — a
    # conflicting replay fails above with VerificationError).
    payload["simulation_problems"] = list(result.simulation_problems or [])
    print(
        f"verification of {graph.name}: {payload['trials']} trial(s), "
        f"seed {args.seed}, scheduler={result.scheduler_engine}"
    )
    print(f"  deterministic makespan: {payload['deterministic_makespan']}")
    print(
        f"  makespan p50/p95/p99: {payload['makespan_p50']}/"
        f"{payload['makespan_p95']}/{payload['makespan_p99']} "
        f"(mean {payload['makespan_mean']}, max {payload['makespan_max']})"
    )
    print(
        f"  faults: {payload['faults_injected']} injected, "
        f"{payload['faults_recovered']} recovered "
        f"(recovery rate {payload['recovery_rate']})"
    )
    print(
        f"  reroutes: {payload['reroutes']}, retries: {payload['retries']}, "
        f"migrations: {payload['migrations']}, washes: {payload['washes']}"
    )
    for note in payload["violations"]:
        print(f"  violation: {note}")

    if args.json_out is not None:
        args.json_out.write_text(json.dumps(payload, indent=2))
        print(f"\nverification report written to {args.json_out}")
    return 0


def _run_jobs_command(argv: List[str], sweep: bool) -> int:
    """Shared implementation of the ``batch`` and ``sweep`` subcommands."""
    from repro.batch import (
        BatchSynthesisEngine,
        format_batch_report,
        load_manifest,
        load_sweep,
    )

    parser = build_sweep_parser() if sweep else build_batch_parser()
    args = parser.parse_args(argv)
    kind = "sweep spec" if sweep else "manifest"

    if not args.spec.exists():
        parser.error(f"{kind} file {args.spec} does not exist")
    try:
        jobs = load_sweep(args.spec) if sweep else load_manifest(args.spec)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"invalid {kind}: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print(f"{kind} contains no jobs", file=sys.stderr)
        return 2
    for job in jobs:
        job.config = apply_solver_override(job.config, args.solver)

    cache = _build_cache(args, parser)
    engine = BatchSynthesisEngine(
        max_workers=max(1, args.workers), cache=cache, fail_fast=args.fail_fast
    )
    try:
        with _observability(args):
            report = engine.run(jobs)
    except Exception as exc:  # noqa: BLE001 - fail-fast surfaces the first job error
        print(f"batch failed: {exc}", file=sys.stderr)
        return 1
    finally:
        cache.close()

    print(format_batch_report(report))

    if args.json_out is not None:
        args.json_out.write_text(json.dumps(report.to_json_payload(), indent=2))
        print(f"\nbatch metrics written to {args.json_out}")

    return 0 if report.num_failed == 0 else 1


def run_batch(argv: List[str]) -> int:
    """The ``repro batch`` subcommand; returns a process exit code."""
    return _run_jobs_command(argv, sweep=False)


def run_sweep(argv: List[str]) -> int:
    """The ``repro sweep`` subcommand; returns a process exit code."""
    return _run_jobs_command(argv, sweep=True)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "batch":
        return run_batch(list(argv[1:]))
    if argv and argv[0] == "sweep":
        return run_sweep(list(argv[1:]))
    if argv and argv[0] == "explore":
        return run_explore(list(argv[1:]))
    if argv and argv[0] == "serve":
        return run_serve(list(argv[1:]))
    if argv and argv[0] == "cache-daemon":
        return run_cache_daemon(list(argv[1:]))
    if argv and argv[0] == "simulate":
        return run_simulate(list(argv[1:]))
    if argv and argv[0] == "bench":
        from repro.bench import run_bench

        return run_bench(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.assay:
        graph = assay_by_name(args.assay)
    else:
        if not args.protocol.exists():
            parser.error(f"protocol file {args.protocol} does not exist")
        graph = load_graph(args.protocol)

    config = _config_from_args(args)
    try:
        with _observability(args):
            result = synthesize(graph, config)
    except Exception as exc:  # noqa: BLE001 - report synthesis failures as exit code
        print(f"synthesis failed: {exc}", file=sys.stderr)
        return 1

    print(result_report(result))

    if args.schedule_table:
        print()
        print("schedule (operation, device, start, end):")
        for op_id, device, start, end in result.schedule.as_table():
            print(f"  {op_id:<12} {device:<10} {start:>6} {end:>6}")

    if args.svg is not None:
        from repro.physical.svg_export import layout_to_svg

        layout_to_svg(result.physical.compact_layout, args.svg)
        print(f"\ncompact layout written to {args.svg}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
