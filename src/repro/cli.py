"""Command-line interface: synthesize a chip for an assay protocol.

Usage
-----
Synthesize one of the built-in paper assays::

    python -m repro --assay PCR --mixers 2

or a custom protocol stored as JSON (see ``repro.graph.serialization``)::

    python -m repro --protocol my_assay.json --mixers 3 --detectors 1 \
        --svg chip.svg

The command prints the synthesis report (schedule, architecture, layout
metrics) and optionally writes the compact layout as an SVG drawing.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.graph.serialization import load_graph
from repro.synthesis.config import FlowConfig, SchedulerEngine, SynthesisEngine
from repro.synthesis.flow import synthesize
from repro.synthesis.report import result_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesize a flow-based microfluidic biochip with distributed channel storage.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--assay",
        choices=sorted(PAPER_ASSAYS),
        help="one of the paper's benchmark assays",
    )
    source.add_argument(
        "--protocol",
        type=Path,
        help="path to a sequencing-graph JSON file",
    )
    parser.add_argument("--mixers", type=int, default=2, help="number of mixers (default 2)")
    parser.add_argument("--detectors", type=int, default=0, help="number of detectors (default 0)")
    parser.add_argument("--heaters", type=int, default=0, help="number of heaters (default 0)")
    parser.add_argument("--transport-time", type=int, default=10,
                        help="device-to-device transport time u_c in seconds (default 10)")
    parser.add_argument("--grid", type=int, nargs=2, metavar=("ROWS", "COLS"), default=(4, 4),
                        help="connection-grid size (default 4 4)")
    parser.add_argument("--scheduler", choices=["auto", "ilp", "list"], default="auto",
                        help="scheduling engine (default auto)")
    parser.add_argument("--synthesis", choices=["heuristic", "ilp"], default="heuristic",
                        help="architectural-synthesis engine (default heuristic)")
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="ILP time limit in seconds (default 60)")
    parser.add_argument("--no-storage-objective", action="store_true",
                        help="optimize execution time only (the Fig. 9 baseline)")
    parser.add_argument("--svg", type=Path, default=None,
                        help="write the compact layout to this SVG file")
    parser.add_argument("--schedule-table", action="store_true",
                        help="also print the full (operation, device, start, end) table")
    return parser


def _config_from_args(args: argparse.Namespace) -> FlowConfig:
    return FlowConfig(
        num_mixers=args.mixers,
        num_detectors=args.detectors,
        num_heaters=args.heaters,
        transport_time=args.transport_time,
        grid_rows=args.grid[0],
        grid_cols=args.grid[1],
        scheduler=SchedulerEngine(args.scheduler),
        synthesis=SynthesisEngine(args.synthesis),
        ilp_time_limit_s=args.time_limit,
        archsyn_time_limit_s=args.time_limit,
        storage_aware=not args.no_storage_objective,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.assay:
        graph = assay_by_name(args.assay)
    else:
        if not args.protocol.exists():
            parser.error(f"protocol file {args.protocol} does not exist")
        graph = load_graph(args.protocol)

    config = _config_from_args(args)
    try:
        result = synthesize(graph, config)
    except Exception as exc:  # noqa: BLE001 - report synthesis failures as exit code
        print(f"synthesis failed: {exc}", file=sys.stderr)
        return 1

    print(result_report(result))

    if args.schedule_table:
        print()
        print("schedule (operation, device, start, end):")
        for op_id, device, start, end in result.schedule.as_table():
            print(f"  {op_id:<12} {device:<10} {start:>6} {end:>6}")

    if args.svg is not None:
        from repro.physical.svg_export import layout_to_svg

        layout_to_svg(result.physical.compact_layout, args.svg)
        print(f"\ncompact layout written to {args.svg}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
