"""Resource accounting of the dedicated-storage baseline chip.

The baseline chip must still move every fluid sample between devices, but all
caching traffic is routed to and from one dedicated storage unit.  Its valve
budget therefore consists of

* the switch valves of the transport architecture (synthesized with the same
  engine as the proposed flow, but with the storage unit added as an extra
  pseudo-device that every cached sample visits), plus
* the storage unit's own multiplexer and cell-isolation valves, sized for the
  peak number of simultaneously stored samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.archsyn.architecture import ChipArchitecture
from repro.archsyn.router import HeuristicSynthesizer, SynthesisConfig
from repro.devices.storage import storage_unit_valve_count
from repro.scheduling.schedule import Schedule
from repro.scheduling.transport import (
    TransportTask,
    extract_transport_tasks,
    peak_storage_demand,
)

#: Name of the pseudo-device standing in for the dedicated storage unit.
STORAGE_UNIT_DEVICE = "storage_unit"


@dataclass
class BaselineResources:
    """Valve/segment budget of the dedicated-storage baseline."""

    architecture: ChipArchitecture
    transport_valves: int
    storage_unit_valves: int
    storage_cells: int
    num_edges: int

    @property
    def total_valves(self) -> int:
        return self.transport_valves + self.storage_unit_valves


def baseline_transport_tasks(schedule: Schedule) -> List[TransportTask]:
    """Rewrite the schedule's tasks so all caching goes through the storage unit.

    Every storage-needing task ``src -> dst`` over window ``[depart, arrive]``
    becomes two direct tasks: ``src -> storage_unit`` at departure and
    ``storage_unit -> dst`` just before arrival.  Direct tasks are unchanged.
    """
    uc = schedule.transport_time
    rewritten: List[TransportTask] = []
    for task in extract_transport_tasks(schedule):
        if not task.needs_storage:
            rewritten.append(task)
            continue
        store_leg = TransportTask(
            task_id=f"{task.task_id}#store",
            sample=task.sample,
            source_device=task.source_device,
            target_device=STORAGE_UNIT_DEVICE,
            depart_time=task.depart_time,
            arrive_time=min(task.arrive_time, task.depart_time + uc),
            needs_storage=False,
            storage_duration=0,
        )
        fetch_leg = TransportTask(
            task_id=f"{task.task_id}#fetch",
            sample=task.sample,
            source_device=STORAGE_UNIT_DEVICE,
            target_device=task.target_device,
            depart_time=max(store_leg.arrive_time, task.arrive_time - uc),
            arrive_time=task.arrive_time,
            needs_storage=False,
            storage_duration=0,
        )
        rewritten.extend([store_leg, fetch_leg])
    return rewritten


def _serialize_tasks(tasks: List[TransportTask], uc: int) -> List[TransportTask]:
    """Give every task its own non-overlapping window (port-queued order).

    Used as a fallback when the baseline's simultaneous storage accesses
    cannot all be routed at their nominal times: the unit's single port would
    serialize them anyway, so the resource estimate routes them one after
    another.
    """
    serialized: List[TransportTask] = []
    clock = 0
    for task in sorted(tasks, key=lambda t: (t.depart_time, t.task_id)):
        depart = max(clock, task.depart_time)
        arrive = depart + max(1, uc)
        serialized.append(
            TransportTask(
                task_id=task.task_id,
                sample=task.sample,
                source_device=task.source_device,
                target_device=task.target_device,
                depart_time=depart,
                arrive_time=arrive,
                needs_storage=False,
                storage_duration=0,
            )
        )
        clock = arrive
    return serialized


def baseline_resources(
    schedule: Schedule,
    synthesis_config: Optional[SynthesisConfig] = None,
    transport_architecture: Optional[ChipArchitecture] = None,
) -> BaselineResources:
    """Account for the valves of the dedicated-storage baseline chip.

    Two modes:

    * With ``transport_architecture`` (the architecture synthesized for the
      proposed flow) the baseline is assumed to need the *same* switch fabric
      to interconnect its devices — moving samples to and from the storage
      unit uses at least as many channel segments as caching them in place —
      plus the storage unit's own multiplexer and cell valves.  This is the
      model behind the Fig. 10 comparison.
    * Without it, a dedicated baseline architecture is synthesized from the
      rewritten task list (all caching traffic redirected to the storage-unit
      pseudo-device); if the unit's four ports cannot absorb the concurrent
      accesses at their nominal times, the accesses are serialized first —
      which is what the port-limited unit would force anyway.
    """
    tasks = baseline_transport_tasks(schedule)
    devices = schedule.devices_used()
    has_storage_traffic = any(
        STORAGE_UNIT_DEVICE in (t.source_device, t.target_device) for t in tasks
    )

    if transport_architecture is not None:
        architecture = transport_architecture
    else:
        from repro.archsyn.router import SynthesisError

        if has_storage_traffic:
            devices = list(devices) + [STORAGE_UNIT_DEVICE]
        synthesizer = HeuristicSynthesizer(synthesis_config or SynthesisConfig())
        try:
            architecture = synthesizer.synthesize_tasks(tasks, devices, transport_time=schedule.transport_time)
        except SynthesisError:
            serialized = _serialize_tasks(tasks, schedule.transport_time)
            architecture = synthesizer.synthesize_tasks(
                serialized, devices, transport_time=schedule.transport_time
            )

    cells = max(1, peak_storage_demand(schedule))
    unit_valves = storage_unit_valve_count(cells) if cells else 0
    return BaselineResources(
        architecture=architecture,
        transport_valves=architecture.num_valves,
        storage_unit_valves=unit_valves if has_storage_traffic else 0,
        storage_cells=cells if has_storage_traffic else 0,
        num_edges=architecture.num_edges,
    )
