"""Schedule retiming under a dedicated storage unit's port bandwidth.

The baseline keeps the binding and per-device operation order of the input
schedule, but every fluid sample that needs caching must now travel to the
dedicated storage unit and back.  All accesses share the unit's port(s); the
port services one access at a time, so simultaneous accesses queue and the
dependent operations start later — this is exactly the bandwidth bottleneck
the paper's distributed channel storage removes.

Timing model per stored sample (``u_c`` = transport time, ``t_a`` = port
access time):

* store: the sample leaves its producer at the producer's (new) end time,
  reaches the unit after ``u_c`` and then occupies a port for ``t_a``
  (possibly after queueing);
* fetch: when the consumer is otherwise ready, the sample is requested from
  the unit, occupies a port for ``t_a`` (possibly after queueing) and reaches
  the consumer's device after another ``u_c``.

Samples that do not need caching keep the direct device-to-device transport
of the original schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.devices.channel import FluidSample
from repro.devices.storage import DedicatedStorageUnit
from repro.scheduling.schedule import Schedule
from repro.scheduling.transport import TransportTask, extract_transport_tasks


@dataclass
class RetimedSchedule:
    """Result of the baseline replay."""

    schedule: Schedule
    makespan: int
    storage_unit: DedicatedStorageUnit
    start_times: Dict[str, int]
    end_times: Dict[str, int]
    total_queueing_delay: int
    stored_samples: int

    @property
    def slowdown(self) -> float:
        """Baseline makespan / original makespan (>= 1 in the common case)."""
        original = self.schedule.makespan
        if original <= 0:
            return 1.0
        return self.makespan / original


class DedicatedStorageRetiming:
    """Replay a schedule against a dedicated storage unit."""

    def __init__(self, num_ports: int = 1, access_time: Optional[int] = None, num_cells: Optional[int] = None) -> None:
        self.num_ports = num_ports
        self.access_time = access_time
        self.num_cells = num_cells

    def retime(self, schedule: Schedule) -> RetimedSchedule:
        """Compute the prolonged execution under the dedicated-storage baseline."""
        uc = schedule.transport_time
        access_time = self.access_time if self.access_time is not None else max(1, uc)
        tasks = extract_transport_tasks(schedule)
        stored_tasks = {t.task_id: t for t in tasks if t.needs_storage}
        direct_tasks = {t.task_id: t for t in tasks if not t.needs_storage}

        # Size the unit to the schedule's own peak demand (the conventional
        # flow would do the same), with a generous floor of 4 cells.
        num_cells = self.num_cells
        if num_cells is None:
            num_cells = max(4, len(stored_tasks))
        unit = DedicatedStorageUnit(num_cells=num_cells, num_ports=self.num_ports, access_time=access_time)

        graph = schedule.graph
        new_start: Dict[str, int] = {}
        new_end: Dict[str, int] = {}
        device_free: Dict[str, int] = {d.device_id: 0 for d in schedule.library}
        store_complete: Dict[str, int] = {}

        # Process device operations in the order they start in the original
        # schedule (ties broken by id), preserving each device's op order.
        ordered = sorted(
            (schedule.entry(op.op_id) for op in graph.device_operations()),
            key=lambda e: (e.start, e.op_id),
        )

        for op in graph.input_operations():
            new_start[op.op_id] = 0
            new_end[op.op_id] = op.duration

        for entry in ordered:
            op_id = entry.op_id
            device_id = entry.device_id
            duration = entry.duration

            ready = device_free[device_id]
            pending_fetches: List[Tuple[str, TransportTask]] = []
            for parent_id in graph.predecessors(op_id):
                parent_op = graph.operation(parent_id)
                if not parent_op.needs_device:
                    ready = max(ready, new_end.get(parent_id, 0))
                    continue
                task_id = f"{parent_id}->{op_id}"
                if task_id in stored_tasks:
                    pending_fetches.append((parent_id, stored_tasks[task_id]))
                elif task_id in direct_tasks:
                    ready = max(ready, new_end[parent_id] + uc)
                else:
                    # Same-device hand-over: available as soon as the parent ends.
                    ready = max(ready, new_end[parent_id])

            # Fetch every cached input through the storage unit's port.
            for parent_id, task in pending_fetches:
                sample_id = task.sample.sample_id
                stored_at = store_complete.get(sample_id)
                if stored_at is None:
                    stored_at = self._store_sample(unit, task, new_end[parent_id], uc)
                    store_complete[sample_id] = stored_at
                fetch_request = max(ready - uc, stored_at)
                fetch_request = max(fetch_request, 0)
                access = unit.fetch(sample_id, fetch_request)
                ready = max(ready, access.finished_at + uc)

            start = ready
            end = start + duration
            new_start[op_id] = start
            new_end[op_id] = end
            device_free[device_id] = end

            # Store this operation's result immediately if any of its children
            # needs caching (store as early as possible, as the baseline does).
            for child_id in graph.successors(op_id):
                task_id = f"{op_id}->{child_id}"
                task = stored_tasks.get(task_id)
                if task is not None and task.sample.sample_id not in store_complete:
                    store_complete[task.sample.sample_id] = self._store_sample(unit, task, end, uc)

        makespan = max(new_end.values(), default=0)
        return RetimedSchedule(
            schedule=schedule,
            makespan=makespan,
            storage_unit=unit,
            start_times=new_start,
            end_times=new_end,
            total_queueing_delay=unit.total_queueing_delay(),
            stored_samples=len(store_complete),
        )

    @staticmethod
    def _store_sample(unit: DedicatedStorageUnit, task: TransportTask, producer_end: int, uc: int) -> int:
        sample = FluidSample(
            sample_id=task.sample.sample_id,
            producer=task.sample.producer,
            consumer=task.sample.consumer,
        )
        access = unit.store(sample, producer_end + uc)
        return access.finished_at
