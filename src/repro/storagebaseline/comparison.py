"""Distributed channel storage vs. dedicated storage unit (Fig. 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.archsyn.architecture import ChipArchitecture
from repro.archsyn.router import SynthesisConfig
from repro.scheduling.schedule import Schedule
from repro.storagebaseline.resources import BaselineResources, baseline_resources
from repro.storagebaseline.retiming import DedicatedStorageRetiming, RetimedSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    from repro.synthesis.flow import SynthesisResult


@dataclass
class StorageComparison:
    """Ratios of the proposed architecture to the dedicated-storage baseline.

    Values below 1.0 mean the distributed-channel-storage chip wins — the
    paper reports an execution-time ratio of roughly 0.72 (28% faster) for
    RA100 and valve ratios well below 1 across all assays.
    """

    assay: str
    proposed_execution_time: int
    baseline_execution_time: int
    proposed_valves: int
    baseline_valves: int
    baseline: BaselineResources
    retimed: RetimedSchedule

    @property
    def execution_time_ratio(self) -> float:
        if self.baseline_execution_time <= 0:
            return 1.0
        return self.proposed_execution_time / self.baseline_execution_time

    @property
    def valve_ratio(self) -> float:
        if self.baseline_valves <= 0:
            return 1.0
        return self.proposed_valves / self.baseline_valves

    @property
    def execution_time_improvement(self) -> float:
        """Fractional speed-up of the proposed flow (0.28 = 28% faster)."""
        return 1.0 - self.execution_time_ratio


def compare_with_dedicated_storage(
    schedule: Schedule,
    architecture: ChipArchitecture,
    num_ports: int = 1,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> StorageComparison:
    """Build the Fig. 10 comparison for one assay.

    ``schedule``/``architecture`` are the storage-aware results of the
    proposed flow; the baseline is derived from the same schedule by routing
    every cached sample through a dedicated storage unit (port queueing
    prolongs execution) and adding the unit's valves to the budget.
    """
    retimer = DedicatedStorageRetiming(num_ports=num_ports)
    retimed = retimer.retime(schedule)
    resources = baseline_resources(
        schedule, synthesis_config=synthesis_config, transport_architecture=architecture
    )
    return StorageComparison(
        assay=schedule.graph.name,
        proposed_execution_time=schedule.makespan,
        baseline_execution_time=max(retimed.makespan, schedule.makespan),
        proposed_valves=architecture.num_valves,
        baseline_valves=resources.total_valves,
        baseline=resources,
        retimed=retimed,
    )


def compare_result(
    result: "SynthesisResult",
    num_ports: int = 1,
    synthesis_config: Optional[SynthesisConfig] = None,
) -> StorageComparison:
    """Fig. 10 comparison straight from an assembled synthesis result.

    ``SynthesisResult`` is a view over the pipeline's stage artifacts, so
    this works identically whether the schedule and architecture were
    computed fresh or replayed from the stage cache.  The comparison is
    labeled with the *result's* graph name (not the schedule's), so a
    content-aliased result compares under the name the caller asked for.
    """
    comparison = compare_with_dedicated_storage(
        result.schedule,
        result.architecture,
        num_ports=num_ports,
        synthesis_config=synthesis_config,
    )
    if comparison.assay != result.graph.name:
        comparison.assay = result.graph.name
    return comparison
