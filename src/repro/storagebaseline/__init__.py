"""Dedicated storage-unit baseline (the conventional architecture of Fig. 10).

Previous synthesis methods assume every intermediate fluid sample is parked
in a single dedicated storage unit.  This package models that architecture so
the distributed-channel-storage result can be compared against it:

* :mod:`repro.storagebaseline.retiming` — replays a schedule with all caching
  traffic funnelled through the storage unit's port, whose limited bandwidth
  queues simultaneous accesses and prolongs the assay;
* :mod:`repro.storagebaseline.resources` — valve/segment accounting of the
  baseline chip (transport channels to the unit + the unit's multiplexer and
  cell-isolation valves);
* :mod:`repro.storagebaseline.comparison` — the Fig. 10 ratios (execution
  time and valves, distributed vs. dedicated).
"""

from repro.storagebaseline.retiming import DedicatedStorageRetiming, RetimedSchedule
from repro.storagebaseline.resources import BaselineResources, baseline_resources
from repro.storagebaseline.comparison import (
    StorageComparison,
    compare_result,
    compare_with_dedicated_storage,
)

__all__ = [
    "DedicatedStorageRetiming",
    "RetimedSchedule",
    "BaselineResources",
    "baseline_resources",
    "StorageComparison",
    "compare_result",
    "compare_with_dedicated_storage",
]
