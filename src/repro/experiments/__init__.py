"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning plain dataclasses/rows so
the benchmark suite (``benchmarks/``) and the examples can print the same
series the paper reports.  The default parameters use fast settings (the
heuristic engines and reduced ILP time limits) so the whole evaluation runs
in minutes on a laptop; pass ``fast=False`` for the full-fidelity setup.
"""

from repro.experiments.common import (
    ExperimentSettings,
    assay_names,
    assay_result,
    prefetch_assay_results,
    result_cache,
)
from repro.experiments.table2 import Table2Row, run_table2
from repro.experiments.fig8 import Fig8Point, run_fig8
from repro.experiments.fig9 import Fig9Row, run_fig9
from repro.experiments.fig10 import Fig10Row, run_fig10
from repro.experiments.fig11 import Fig11Snapshot, run_fig11
from repro.experiments.ablation import AblationRow, run_grid_ablation, run_weight_ablation

__all__ = [
    "ExperimentSettings",
    "assay_result",
    "assay_names",
    "prefetch_assay_results",
    "result_cache",
    "Table2Row",
    "run_table2",
    "Fig8Point",
    "run_fig8",
    "Fig9Row",
    "run_fig9",
    "Fig10Row",
    "run_fig10",
    "Fig11Snapshot",
    "run_fig11",
    "AblationRow",
    "run_grid_ablation",
    "run_weight_ablation",
]
