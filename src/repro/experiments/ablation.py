"""Ablation studies (beyond the paper's figures).

Two sweeps exercise the design choices that DESIGN.md calls out:

* **grid-size ablation** — how the connection-grid size affects edge/valve
  usage and layout area for a fixed assay;
* **objective-weight ablation** — how the alpha/beta trade-off of objective
  (6) moves execution time versus total caching time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.batch.engine import BatchSynthesisEngine
from repro.batch.jobs import BatchJob
from repro.experiments.common import ExperimentSettings, result_cache
from repro.graph.library import assay_by_name
from repro.scheduling.transport import cross_device_gap_sum, total_storage_time
from repro.synthesis.config import SchedulerEngine
from repro.synthesis.flow import SynthesisResult
from repro.synthesis.metrics import collect_metrics


@dataclass
class AblationRow:
    """One configuration point of an ablation sweep."""

    label: str
    execution_time: int
    num_edges: int
    num_valves: int
    compact_area: int
    total_storage_time: int
    cross_device_gap: int


def _ablation_row(label: str, result: SynthesisResult) -> AblationRow:
    metrics = collect_metrics(result)
    dims = metrics.dim_compact
    return AblationRow(
        label=label,
        execution_time=metrics.execution_time,
        num_edges=metrics.num_edges,
        num_valves=metrics.num_valves,
        compact_area=dims[0] * dims[1],
        total_storage_time=total_storage_time(result.schedule),
        cross_device_gap=cross_device_gap_sum(result.schedule),
    )


def run_grid_ablation(
    assay: str = "RA30",
    grid_sizes: Sequence[Tuple[int, int]] = ((3, 3), (4, 4), (5, 5), (6, 6)),
    settings: Optional[ExperimentSettings] = None,
) -> List[AblationRow]:
    """Sweep the connection-grid size for one assay.

    The sweep points run as one batch through the engine.  The grid size
    only enters the architecture stage's config slice, so the whole sweep
    performs exactly one scheduling solve — every point shares the cached
    schedule artifact and re-runs placement/routing + physical design.  A
    grid too small for the assay simply fails its job and is dropped from
    the rows.
    """
    settings = settings or ExperimentSettings()
    graph = assay_by_name(assay)
    jobs: List[BatchJob] = []
    for rows_count, cols_count in grid_sizes:
        config = settings.flow_config(assay)
        config.grid_rows = rows_count
        config.grid_cols = cols_count
        config.auto_expand_grid = False
        jobs.append(BatchJob(job_id=f"{rows_count}x{cols_count}", graph=graph, config=config))
    engine = BatchSynthesisEngine(max_workers=settings.max_workers, cache=result_cache())
    report = engine.run(jobs)
    return [
        _ablation_row(outcome.job_id, outcome.result)
        for outcome in report
        if outcome.result is not None  # a too-small grid is a legitimate outcome
    ]


def run_weight_ablation(
    assay: str = "PCR",
    betas: Sequence[float] = (0.0, 0.5, 1.0, 5.0, 20.0),
    settings: Optional[ExperimentSettings] = None,
) -> List[AblationRow]:
    """Sweep the storage weight ``beta`` of objective (6) for one assay.

    Uses the exact ILP scheduler so the objective weights actually drive the
    result (the heuristic only has an on/off storage-awareness switch).
    """
    settings = settings or ExperimentSettings()
    graph = assay_by_name(assay)
    jobs: List[BatchJob] = []
    for beta in betas:
        config = settings.flow_config(assay)
        config.scheduler = SchedulerEngine.ILP
        config.beta = beta
        config.storage_aware = beta > 0
        jobs.append(BatchJob(job_id=f"beta={beta:g}", graph=graph, config=config))
    engine = BatchSynthesisEngine(
        max_workers=settings.max_workers, cache=result_cache(), fail_fast=True
    )
    report = engine.run(jobs)
    return [_ablation_row(outcome.job_id, outcome.result) for outcome in report]
