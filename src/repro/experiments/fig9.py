"""Fig. 9: storage-aware optimization vs. execution-time-only scheduling.

The paper compares, for RA30 / IVD / PCR, the execution time, the number of
channel segments and the number of valves obtained when the scheduler
optimizes (a) execution time only and (b) execution time *and* storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    ExperimentSettings,
    assay_names,
    assay_result,
    prefetch_assay_results,
)
from repro.synthesis.metrics import collect_metrics


@dataclass
class Fig9Row:
    """One assay's comparison between the two scheduling objectives."""

    assay: str
    exec_time_only: int
    exec_time_with_storage: int
    edges_only: int
    edges_with_storage: int
    valves_only: int
    valves_with_storage: int

    @property
    def execution_time_overhead(self) -> float:
        """Storage-aware execution time relative to time-only (1.0 = equal).

        The paper reports comparable times for IVD/PCR and a slight increase
        for RA30 — the price paid for much lower edge/valve usage.
        """
        if self.exec_time_only <= 0:
            return 1.0
        return self.exec_time_with_storage / self.exec_time_only

    @property
    def edge_saving(self) -> float:
        if self.edges_only <= 0:
            return 0.0
        return 1.0 - self.edges_with_storage / self.edges_only

    @property
    def valve_saving(self) -> float:
        if self.valves_only <= 0:
            return 0.0
        return 1.0 - self.valves_with_storage / self.valves_only


def run_fig9(settings: Optional[ExperimentSettings] = None) -> List[Fig9Row]:
    """Regenerate the Fig. 9 comparison (RA30, IVD, PCR by default)."""
    settings = settings or ExperimentSettings()
    names = assay_names(settings, small=True)
    prefetch_assay_results(names, settings, storage_aware_variants=(True, False))
    rows: List[Fig9Row] = []
    for name in names:
        with_storage = collect_metrics(assay_result(name, settings, storage_aware=True))
        time_only = collect_metrics(assay_result(name, settings, storage_aware=False))
        rows.append(
            Fig9Row(
                assay=name,
                exec_time_only=time_only.execution_time,
                exec_time_with_storage=with_storage.execution_time,
                edges_only=time_only.num_edges,
                edges_with_storage=with_storage.num_edges,
                valves_only=time_only.num_valves,
                valves_with_storage=with_storage.num_valves,
            )
        )
    return rows


def format_fig9(rows: List[Fig9Row]) -> str:
    lines = [
        "Assay    tE(time-only)  tE(+storage)  ne(only/+st)  nv(only/+st)",
    ]
    for row in rows:
        lines.append(
            f"{row.assay:<8} {row.exec_time_only:>13} {row.exec_time_with_storage:>13}  "
            f"{row.edges_only:>5}/{row.edges_with_storage:<6} {row.valves_only:>5}/{row.valves_with_storage:<6}"
        )
    return "\n".join(lines)
