"""Table 2: scheduling, architectural synthesis and physical design results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    ExperimentSettings,
    assay_names,
    assay_result,
    prefetch_assay_results,
)
from repro.synthesis.metrics import FlowMetrics, collect_metrics
from repro.synthesis.report import format_table2_row, table2_header


#: The paper's Table 2 values, used by EXPERIMENTS.md and the comparison
#: helpers below.  Dimensions are (width, height) strings as printed.
PAPER_TABLE2 = {
    "RA100": {"|O|": 100, "tE": 1820, "G": "5x5", "ne": 32, "nv": 58, "dr": "20x20", "de": "26x26", "dp": "16x16"},
    "RA70": {"|O|": 70, "tE": 1180, "G": "4x4", "ne": 20, "nv": 38, "dr": "15x15", "de": "21x21", "dp": "11x12"},
    "CPA": {"|O|": 55, "tE": 1070, "G": "4x4", "ne": 20, "nv": 40, "dr": "15x15", "de": "21x21", "dp": "11x13"},
    "RA30": {"|O|": 30, "tE": 670, "G": "4x4", "ne": 8, "nv": 16, "dr": "15x10", "de": "21x16", "dp": "13x9"},
    "IVD": {"|O|": 12, "tE": 280, "G": "4x4", "ne": 5, "nv": 10, "dr": "10x5", "de": "16x9", "dp": "12x5"},
    "PCR": {"|O|": 7, "tE": 290, "G": "4x4", "ne": 5, "nv": 8, "dr": "5x10", "de": "7x14", "dp": "4x8"},
}


@dataclass
class Table2Row:
    """One measured row of Table 2 plus the corresponding paper values."""

    metrics: FlowMetrics
    paper: dict

    @property
    def assay(self) -> str:
        return self.metrics.assay

    def formatted(self) -> str:
        return format_table2_row(self.metrics)

    def execution_time_vs_paper(self) -> float:
        """Measured tE / paper tE (1.0 = identical)."""
        paper_te = self.paper.get("tE", 0)
        return self.metrics.execution_time / paper_te if paper_te else 0.0


def run_table2(settings: Optional[ExperimentSettings] = None) -> List[Table2Row]:
    """Regenerate Table 2 for all six assays (paper order)."""
    settings = settings or ExperimentSettings()
    names = assay_names(settings)
    prefetch_assay_results(names, settings)
    rows: List[Table2Row] = []
    for name in names:
        result = assay_result(name, settings)
        metrics = collect_metrics(result)
        rows.append(Table2Row(metrics=metrics, paper=PAPER_TABLE2.get(name, {})))
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """The measured table as printable text (same columns as the paper)."""
    lines = [table2_header()]
    lines.extend(row.formatted() for row in rows)
    return "\n".join(lines)
