"""Fig. 10: distributed channel storage vs. dedicated storage unit."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    ExperimentSettings,
    assay_names,
    assay_result,
    prefetch_assay_results,
)
from repro.storagebaseline.comparison import StorageComparison, compare_result


@dataclass
class Fig10Row:
    """Execution-time and valve ratios (proposed / dedicated baseline)."""

    assay: str
    execution_time_ratio: float
    valve_ratio: float
    proposed_execution_time: int
    baseline_execution_time: int
    proposed_valves: int
    baseline_valves: int

    @property
    def execution_improvement(self) -> float:
        return 1.0 - self.execution_time_ratio


def run_fig10(settings: Optional[ExperimentSettings] = None) -> List[Fig10Row]:
    """Regenerate the Fig. 10 ratios for all six assays."""
    settings = settings or ExperimentSettings()
    names = assay_names(settings)
    prefetch_assay_results(names, settings)
    rows: List[Fig10Row] = []
    for name in names:
        result = assay_result(name, settings)
        comparison: StorageComparison = compare_result(result)
        rows.append(
            Fig10Row(
                assay=name,
                execution_time_ratio=comparison.execution_time_ratio,
                valve_ratio=comparison.valve_ratio,
                proposed_execution_time=comparison.proposed_execution_time,
                baseline_execution_time=comparison.baseline_execution_time,
                proposed_valves=comparison.proposed_valves,
                baseline_valves=comparison.baseline_valves,
            )
        )
    return rows


def format_fig10(rows: List[Fig10Row]) -> str:
    lines = ["Assay    exec-ratio  valve-ratio  (tE proposed/baseline, valves proposed/baseline)"]
    for row in rows:
        lines.append(
            f"{row.assay:<8} {row.execution_time_ratio:>9.2f}  {row.valve_ratio:>10.2f}  "
            f"({row.proposed_execution_time}/{row.baseline_execution_time}, "
            f"{row.proposed_valves}/{row.baseline_valves})"
        )
    return "\n".join(lines)
