"""Shared plumbing of the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.graph.sequencing_graph import SequencingGraph
from repro.synthesis.config import FlowConfig, SchedulerEngine
from repro.synthesis.flow import SynthesisResult, synthesize

#: The evaluation order used by the paper's Table 2.
PAPER_ASSAY_ORDER = ["RA100", "RA70", "CPA", "RA30", "IVD", "PCR"]

#: Smaller subset used by the figures that only evaluate three assays and by
#: the fast benchmark settings.
SMALL_ASSAY_ORDER = ["RA30", "IVD", "PCR"]


@dataclass
class ExperimentSettings:
    """Settings shared by every experiment.

    ``fast`` selects a configuration that completes quickly (list scheduler
    for everything but the tiny assays, short ILP caps); with ``fast=False``
    the exact engines run with the paper-like time limits.
    """

    fast: bool = True
    transport_time: int = 10
    ilp_time_limit_s: float = 20.0
    assays: Optional[List[str]] = None

    def assay_list(self, default: List[str]) -> List[str]:
        return list(self.assays) if self.assays else list(default)

    def flow_config(self, assay_name: str, storage_aware: bool = True) -> FlowConfig:
        config = FlowConfig.paper_defaults_for(assay_name)
        config.transport_time = self.transport_time
        config.storage_aware = storage_aware
        config.ilp_time_limit_s = self.ilp_time_limit_s
        if self.fast:
            config.ilp_operation_limit = 8
            config.ilp_time_limit_s = min(config.ilp_time_limit_s, 10.0)
        else:
            config.ilp_operation_limit = 14
        return config


def assay_names(settings: Optional[ExperimentSettings] = None, small: bool = False) -> List[str]:
    """Assay list for an experiment (paper order)."""
    settings = settings or ExperimentSettings()
    default = SMALL_ASSAY_ORDER if small else PAPER_ASSAY_ORDER
    return settings.assay_list(default)


_result_cache: Dict[Tuple[str, bool, int, bool], SynthesisResult] = {}


def assay_result(
    name: str,
    settings: Optional[ExperimentSettings] = None,
    storage_aware: bool = True,
    use_cache: bool = True,
) -> SynthesisResult:
    """Synthesize one of the paper's assays (with memoization across experiments).

    The cache keeps the experiments cheap: Table 2, Fig. 8 and Fig. 10 all
    reuse the same storage-aware synthesis result per assay.
    """
    settings = settings or ExperimentSettings()
    key = (name, storage_aware, settings.transport_time, settings.fast)
    if use_cache and key in _result_cache:
        return _result_cache[key]
    graph = assay_by_name(name)
    config = settings.flow_config(name, storage_aware=storage_aware)
    result = synthesize(graph, config)
    if use_cache:
        _result_cache[key] = result
    return result


def clear_result_cache() -> None:
    """Drop all memoized synthesis results (used by tests)."""
    _result_cache.clear()
