"""Shared plumbing of the experiment modules.

All experiments obtain synthesis results through the stage-granular batch
engine (:mod:`repro.batch`): each table/figure first *prefetches* the assays
it needs — fanning out over processes when the settings ask for it — and
then reads the individual results from the shared content-addressed cache.
Table 2, Fig. 8 and Fig. 10 all reuse the same storage-aware synthesis
result per assay, and a warm re-run of the whole evaluation performs zero
solver invocations.

Since the staged refactor the sharing is finer than whole results: the
cache also holds per-stage artifacts, so experiment variants that agree on
a *prefix* of the pipeline share it.  Fig. 9's time-only variants change
the scheduler objective and legitimately re-solve everything, but e.g. the
grid-size ablation re-uses one schedule artifact across every grid point —
only placement/routing and physical design run per point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.batch.cache import CacheStats, ResultCache
from repro.batch.engine import BatchSynthesisEngine
from repro.batch.jobs import BatchJob
from repro.batch.report import BatchReport
from repro.graph.library import assay_by_name
from repro.synthesis.config import FlowConfig
from repro.synthesis.flow import SynthesisResult, synthesize

#: The evaluation order used by the paper's Table 2.
PAPER_ASSAY_ORDER = ["RA100", "RA70", "CPA", "RA30", "IVD", "PCR"]

#: Smaller subset used by the figures that only evaluate three assays and by
#: the fast benchmark settings.
SMALL_ASSAY_ORDER = ["RA30", "IVD", "PCR"]


@dataclass
class ExperimentSettings:
    """Settings shared by every experiment.

    ``fast`` selects a configuration that completes quickly (list scheduler
    for everything but the tiny assays, short ILP caps); with ``fast=False``
    the exact engines run with the paper-like time limits.  ``max_workers``
    sets the process fan-out used when an experiment prefetches its assays
    through the batch engine (1 = serial, the default).
    """

    fast: bool = True
    transport_time: int = 10
    ilp_time_limit_s: float = 20.0
    assays: Optional[List[str]] = None
    max_workers: int = 1

    def assay_list(self, default: List[str]) -> List[str]:
        return list(self.assays) if self.assays else list(default)

    def flow_config(self, assay_name: str, storage_aware: bool = True) -> FlowConfig:
        config = FlowConfig.paper_defaults_for(assay_name)
        config.transport_time = self.transport_time
        config.storage_aware = storage_aware
        config.ilp_time_limit_s = self.ilp_time_limit_s
        if self.fast:
            config.ilp_operation_limit = 8
            config.ilp_time_limit_s = min(config.ilp_time_limit_s, 10.0)
        else:
            config.ilp_operation_limit = 14
        return config


def assay_names(settings: Optional[ExperimentSettings] = None, small: bool = False) -> List[str]:
    """Assay list for an experiment (paper order)."""
    settings = settings or ExperimentSettings()
    default = SMALL_ASSAY_ORDER if small else PAPER_ASSAY_ORDER
    return settings.assay_list(default)


#: Content-addressed cache shared by every experiment in this process.
#: Unbounded: the paper evaluation has a dozen distinct (graph, config)
#: pairs, far below any sensible LRU limit.
_result_cache = ResultCache(max_entries=None)


def result_cache() -> ResultCache:
    """The process-wide experiment result cache (exposed for tests/stats)."""
    return _result_cache


def assay_job(
    name: str,
    settings: Optional[ExperimentSettings] = None,
    storage_aware: bool = True,
) -> BatchJob:
    """The :class:`BatchJob` an experiment runs for one paper assay."""
    settings = settings or ExperimentSettings()
    graph = assay_by_name(name)
    config = settings.flow_config(name, storage_aware=storage_aware)
    job_id = name if storage_aware else f"{name}/time-only"
    return BatchJob(job_id=job_id, graph=graph, config=config)


def assay_result(
    name: str,
    settings: Optional[ExperimentSettings] = None,
    storage_aware: bool = True,
    use_cache: bool = True,
) -> SynthesisResult:
    """Synthesize one of the paper's assays (memoized across experiments).

    Goes through the batch engine's content-addressed cache, so any result
    previously produced by :func:`prefetch_assay_results` (or by another
    figure using the same configuration) is reused as-is.
    """
    job = assay_job(name, settings, storage_aware=storage_aware)
    if not use_cache:
        return synthesize(job.graph, job.config)
    engine = BatchSynthesisEngine(max_workers=1, cache=_result_cache)
    return engine.run_one(job)


def prefetch_assay_results(
    names: Sequence[str],
    settings: Optional[ExperimentSettings] = None,
    storage_aware_variants: Sequence[bool] = (True,),
    max_workers: Optional[int] = None,
) -> BatchReport:
    """Warm the shared cache for ``names`` via the batch engine.

    With ``max_workers > 1`` (or ``settings.max_workers > 1``) the misses run
    N-way parallel; results land in the shared cache so the subsequent
    per-assay :func:`assay_result` calls are pure cache hits.  Failures are
    recorded in the returned report, not raised — the experiment's own
    :func:`assay_result` call re-raises the memoized error (same exception
    type, with the original failure's formatted traceback attached) without
    re-running the solver.  Load-dependent failures (solver limits, worker
    crashes) are never memoized, so those retry instead.
    """
    settings = settings or ExperimentSettings()
    workers = max_workers if max_workers is not None else settings.max_workers
    jobs = [
        assay_job(name, settings, storage_aware=variant)
        for name in names
        for variant in storage_aware_variants
    ]
    engine = BatchSynthesisEngine(max_workers=workers, cache=_result_cache)
    return engine.run(jobs)


def clear_result_cache() -> None:
    """Drop all memoized synthesis results and counters (used by tests).

    Clears in place, so references obtained through :func:`result_cache`
    before the call keep observing the live cache afterwards.
    """
    _result_cache.clear()
    _result_cache.stats = CacheStats()
