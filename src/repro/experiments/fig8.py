"""Fig. 8: edge and valve ratios versus the full connection grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    ExperimentSettings,
    assay_names,
    assay_result,
    prefetch_assay_results,
)


#: Approximate ratios read off the paper's Fig. 8 bar chart (for
#: EXPERIMENTS.md comparison; the bars are not labelled with exact numbers).
PAPER_FIG8 = {
    "RA100": {"edge": 0.80, "valve": 0.73},
    "RA70": {"edge": 0.83, "valve": 0.79},
    "CPA": {"edge": 0.83, "valve": 0.83},
    "RA30": {"edge": 0.33, "valve": 0.33},
    "IVD": {"edge": 0.21, "valve": 0.21},
    "PCR": {"edge": 0.21, "valve": 0.17},
}


@dataclass
class Fig8Point:
    """Edge/valve ratio of one assay's synthesized architecture."""

    assay: str
    edge_ratio: float
    valve_ratio: float
    used_edges: int
    grid_edges: int
    used_valves: int
    grid_valves: int

    def is_reduced(self) -> bool:
        """The paper's claim: every ratio is (strictly) below 1."""
        return self.edge_ratio < 1.0 and self.valve_ratio < 1.0


def run_fig8(settings: Optional[ExperimentSettings] = None) -> List[Fig8Point]:
    """Regenerate the Fig. 8 series for all six assays."""
    settings = settings or ExperimentSettings()
    names = assay_names(settings)
    prefetch_assay_results(names, settings)
    points: List[Fig8Point] = []
    for name in names:
        result = assay_result(name, settings)
        architecture = result.architecture
        points.append(
            Fig8Point(
                assay=name,
                edge_ratio=architecture.edge_ratio(),
                valve_ratio=architecture.valve_ratio(),
                used_edges=architecture.num_edges,
                grid_edges=architecture.grid_edge_count(),
                used_valves=architecture.num_valves,
                grid_valves=architecture.grid_valve_count(),
            )
        )
    return points


def format_fig8(points: List[Fig8Point]) -> str:
    lines = ["Assay    edge_ratio  valve_ratio  (used/total edges, used/total valves)"]
    for point in points:
        lines.append(
            f"{point.assay:<8} {point.edge_ratio:>9.2f}  {point.valve_ratio:>10.2f}  "
            f"({point.used_edges}/{point.grid_edges}, {point.used_valves}/{point.grid_valves})"
        )
    return "\n".join(lines)
