"""Fig. 11: execution snapshots of the synthesized RA30 chip."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentSettings, assay_result, prefetch_assay_results
from repro.simulation.simulator import ChipSimulator
from repro.simulation.snapshot import Snapshot, render_snapshot_ascii


@dataclass
class Fig11Snapshot:
    """One execution snapshot plus its rendering."""

    assay: str
    time: int
    snapshot: Snapshot
    ascii_art: str
    busy_segments: int
    storing_segments: int
    transporting_segments: int


def run_fig11(
    settings: Optional[ExperimentSettings] = None,
    assay: str = "RA30",
    times: Optional[Sequence[int]] = None,
) -> List[Fig11Snapshot]:
    """Take execution snapshots of an assay's synthesized chip.

    By default the snapshot times are chosen automatically: the first instant
    a sample is being cached (the Fig. 11(a) situation) and the first instant
    a transport happens while a sample is cached elsewhere (Fig. 11(b)).
    """
    settings = settings or ExperimentSettings()
    prefetch_assay_results([assay], settings)
    result = assay_result(assay, settings)
    simulator = ChipSimulator(result.schedule, result.architecture)
    simulation = simulator.run()

    if times is None:
        times = _default_snapshot_times(result, simulation.makespan)

    snapshots: List[Fig11Snapshot] = []
    for time in times:
        snap = simulator.snapshot(time)
        snapshots.append(
            Fig11Snapshot(
                assay=assay,
                time=time,
                snapshot=snap,
                ascii_art=render_snapshot_ascii(snap),
                busy_segments=snap.busy_segment_count(),
                storing_segments=len(snap.storing_segments()),
                transporting_segments=len(snap.transporting_segments()),
            )
        )
    return snapshots


def _default_snapshot_times(result, makespan: int) -> List[int]:
    """Pick one instant with caching and one with caching + transport."""
    storing_time = None
    both_time = None
    for routed in result.architecture.routed_tasks:
        window = routed.storage_window
        if window is None:
            continue
        if storing_time is None:
            storing_time = window[0]
        # Look for a transport of another task inside this storage window.
        for other in result.architecture.routed_tasks:
            if other.task.task_id == routed.task.task_id:
                continue
            for sub in other.subpaths:
                if sub.purpose != "transport":
                    continue
                overlap_start = max(window[0], sub.start)
                overlap_end = min(window[1], sub.end)
                if overlap_start < overlap_end:
                    both_time = overlap_start
                    break
            if both_time is not None:
                break
        if both_time is not None:
            break
    times = []
    times.append(storing_time if storing_time is not None else makespan // 3)
    times.append(both_time if both_time is not None else (2 * makespan) // 3)
    return times
