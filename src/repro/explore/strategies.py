"""Pluggable search strategies behind a string-keyed registry.

Mirrors :mod:`repro.ilp.backends`: strategies register under a name, an
exploration spec selects one by that name, and tests can register stub
strategies to drive the engine deterministically.  Three ship built in:

``"exhaustive"``
    Every candidate of the space, in spec order, until the budget runs out.
``"random"``
    A seeded uniform sample (without replacement) of ``budget`` candidates —
    the classic baseline when the space is too large to enumerate.
``"successive-halving"``
    Pays the *cheap* stage first: every candidate's scheduling solve runs
    (deduplicated by the stage cache, so configs sharing a schedule slice
    solve once), candidates whose cheap-objective vectors are Pareto
    dominated are pruned, and only the survivors receive the expensive
    architecture-synthesis and physical-design stages.  Exact when every
    spec objective is cheap (schedule-derivable); with full-only objectives
    in play it is a heuristic — a pruned config could have redeemed itself
    on chip area — which is the usual successive-halving trade.

A strategy only *selects* candidates; evaluation, budget enforcement,
frontier updates, and resume bookkeeping all live in the engine-provided
:class:`StrategyContext`, so strategies stay ~ten lines of policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.explore.frontier import dominates
from repro.explore.objectives import cheap_objective_names
from repro.explore.spec import Candidate, ExplorationSpec


@dataclass
class StrategyContext:
    """What the engine hands a strategy: the space plus evaluation callbacks.

    ``evaluate`` runs full syntheses (through the batch engine, budget
    capped, resume aware) and updates the frontier; ``cheap_values`` runs
    only the schedule stage and returns each candidate's cheap-objective
    vector (candidates whose scheduling fails are absent from the map);
    ``remaining_budget`` is how many more *full* evaluations the budget
    admits; ``evaluated_ids`` is the set of candidate ids already resolved
    (this run or a resumed one).  ``rng`` is seeded from the spec, so a
    strategy's randomness is reproducible and identical on resume.
    """

    spec: ExplorationSpec
    candidates: List[Candidate]
    rng: random.Random
    evaluate: Callable[[Sequence[Candidate]], None]
    cheap_values: Callable[[Sequence[Candidate]], Dict[str, Dict[str, float]]]
    remaining_budget: Callable[[], int]
    evaluated_ids: Callable[[], Set[str]]


class SearchStrategy:
    """Base class: subclasses set :attr:`name` and implement :meth:`run`."""

    name: str = ""

    def run(self, context: StrategyContext) -> None:
        """Select and evaluate candidates until done or out of budget."""
        raise NotImplementedError


class ExhaustiveStrategy(SearchStrategy):
    """Grid search: evaluate the whole space in spec order (budget capped)."""

    name = "exhaustive"

    def run(self, context: StrategyContext) -> None:
        """Evaluate every candidate; the context stops at the budget."""
        context.evaluate(context.candidates)


class RandomStrategy(SearchStrategy):
    """Seeded uniform sampling without replacement, ``budget`` candidates."""

    name = "random"

    def run(self, context: StrategyContext) -> None:
        """Sample the remaining budget from the *unevaluated* candidates.

        Resumed candidates already consumed budget, so the pool excludes
        them — a resumed random exploration tops the budget up instead of
        wasting draws on ids the engine would skip.  Identical reruns stay
        deterministic: same state, same seed, same pool, same sample.
        """
        done = context.evaluated_ids()
        pool = [c for c in context.candidates if c.candidate_id not in done]
        count = min(context.remaining_budget(), len(pool))
        if count <= 0:
            return
        sample = context.rng.sample(pool, count)
        context.evaluate(sample)


class SuccessiveHalvingStrategy(SearchStrategy):
    """Cheap-stage triage, then full synthesis only for the non-dominated."""

    name = "successive-halving"

    def run(self, context: StrategyContext) -> None:
        """Prune on cheap objectives, then fully evaluate the survivors.

        With no cheap objective in the spec there is nothing to triage on,
        so every candidate advances (the strategy degrades to exhaustive).
        """
        cheap_names = cheap_objective_names(context.spec.objectives)
        if not cheap_names:
            context.evaluate(context.candidates)
            return
        vectors = context.cheap_values(context.candidates)
        survivors = [
            candidate
            for candidate in context.candidates
            if candidate.candidate_id in vectors
            and not _cheap_dominated(
                candidate.candidate_id, vectors, cheap_names
            )
        ]
        context.evaluate(survivors)


def _cheap_dominated(
    candidate_id: str,
    vectors: Dict[str, Dict[str, float]],
    names: Tuple[str, ...],
) -> bool:
    """Whether another candidate's cheap vector dominates this one's."""
    mine = vectors[candidate_id]
    return any(
        other_id != candidate_id and dominates(other, mine, names)
        for other_id, other in vectors.items()
    )


# ------------------------------------------------------------------- registry

_REGISTRY: Dict[str, SearchStrategy] = {}


def register_strategy(strategy: SearchStrategy) -> None:
    """Register a strategy instance under its :attr:`~SearchStrategy.name`."""
    if not strategy.name:
        raise ValueError("strategy must declare a non-empty name")
    _REGISTRY[strategy.name] = strategy


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (tests clean up stub strategies)."""
    _REGISTRY.pop(name, None)


def get_strategy(name: str) -> SearchStrategy:
    """Resolve a registered strategy by name (:class:`ValueError` if absent)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r}; registered: {list(strategy_names())}"
        ) from None


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, sorted (spec validation and ``--help``)."""
    return tuple(sorted(_REGISTRY))


register_strategy(ExhaustiveStrategy())
register_strategy(RandomStrategy())
register_strategy(SuccessiveHalvingStrategy())
