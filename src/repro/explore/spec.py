"""The declarative exploration spec: axes × workloads → candidate space.

An exploration spec is a JSON object (a file for ``repro explore``, a body
for ``POST /jobs``) describing *what* to search — the engine and strategies
decide *how*::

    {
      "name": "pcr-vs-synthetic",
      "workloads": [
        {"assay": "PCR"},
        {"generator": "random_assay", "num_operations": 40, "seed": 7,
         "id": "ra40"}
      ],
      "axes": {"num_mixers": [2, 3, 4], "pitch": [5.0, 6.0]},
      "base": {"ilp_operation_limit": 0},
      "objectives": ["makespan", "storage_cells", "device_count"],
      "strategy": "successive-halving",
      "budget": 16,
      "seed": 42
    }

``workloads`` entries are batch-manifest job fragments (named assay, inline
generator spec, or — for file-based specs — a ``protocol`` path resolved
relative to the spec file).  ``axes`` maps :class:`FlowConfig` fields to
value lists exactly like a sweep grid; the candidate space is the cartesian
product of the axes crossed with every workload.  ``base`` underlies every
point, ``objectives`` names registered members of
:mod:`repro.explore.objectives` (all minimized), ``strategy`` names a
registered search strategy, and ``budget`` caps how many candidates receive
a *full* synthesis evaluation.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.batch.jobs import BatchJob, _format_sweep_value, job_from_spec
from repro.explore.objectives import DEFAULT_OBJECTIVES, OBJECTIVES, objective_names
from repro.graph.generators import generator_spec_id
from repro.keys import stable_digest
from repro.synthesis.config import FlowConfig

#: Keys an exploration-spec payload may carry at top level.
SPEC_KEYS = ("name", "workloads", "axes", "base", "objectives", "strategy",
             "budget", "seed")


@dataclass(frozen=True)
class Candidate:
    """One point of the candidate space: a workload plus an axes assignment."""

    candidate_id: str
    workload: Dict[str, Any]
    point: Dict[str, Any]


@dataclass
class ExplorationSpec:
    """A validated exploration request (see the module docstring for the JSON).

    ``base_dir`` is runtime-only context (where ``protocol`` workload paths
    resolve); it never serializes, so a spec's :meth:`digest` — which binds
    persisted exploration state to the spec that produced it — is location
    independent.
    """

    workloads: List[Dict[str, Any]]
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    base: Dict[str, Any] = field(default_factory=dict)
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES
    strategy: str = "exhaustive"
    budget: Optional[int] = None
    seed: int = 0
    name: Optional[str] = None
    base_dir: Optional[Path] = None
    #: Runtime-only generator-graph memo (digest → graph), seeded by the
    #: validation probe so the engine never regenerates a graph validation
    #: already built.  Like ``base_dir``, it never serializes.
    graph_cache: Dict[str, Any] = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def from_payload(
        cls, payload: Any, base_dir: Optional[Path] = None, source: str = "exploration spec"
    ) -> "ExplorationSpec":
        """Validate a parsed JSON payload into a spec.

        Raises :class:`ValueError` on any structural problem — unknown keys,
        empty workloads, non-list axes, unknown objectives or strategies —
        so both the CLI (exit code 2) and the service (HTTP 400) reject a
        malformed spec before any solver runs.
        """
        from repro.explore.strategies import strategy_names

        if not isinstance(payload, dict):
            raise ValueError(f"{source} must be a JSON object")
        unknown = set(payload) - set(SPEC_KEYS)
        if unknown:
            raise ValueError(f"{source}: unknown keys {sorted(unknown)}")

        workloads = payload.get("workloads")
        if not isinstance(workloads, list) or not workloads:
            raise ValueError(f"{source}: 'workloads' must be a non-empty list")
        for index, workload in enumerate(workloads):
            if not isinstance(workload, dict):
                raise ValueError(f"{source}: workload {index} must be an object")
            if "config" in workload:
                raise ValueError(
                    f"{source}: workload {index} must not carry 'config' "
                    "(use 'base' and 'axes' for flow-config values)"
                )
        axes = payload.get("axes") or {}
        if not isinstance(axes, dict):
            raise ValueError(f"{source}: 'axes' must be an object of field -> values")
        known_fields = {spec.name for spec in dataclass_fields(FlowConfig)}
        unknown_axes = set(axes) - known_fields
        if unknown_axes:
            raise ValueError(
                f"{source}: unknown flow-config axes {sorted(unknown_axes)}"
            )
        for axis, values in axes.items():
            if not isinstance(values, list) or not values:
                raise ValueError(
                    f"{source}: axis {axis!r} must map to a non-empty list"
                )
            # Each value must be a valid assignment of its field on its
            # own, so a wrong-typed or out-of-range axis value fails at
            # submit time (CLI exit 2 / HTTP 400) like a sweep's would,
            # not asynchronously mid-exploration.
            for value in values:
                try:
                    FlowConfig.from_dict({axis: value})
                except ValueError as exc:
                    raise ValueError(f"{source}: axis {axis!r}: {exc}") from exc

        base = payload.get("base") or {}
        if not isinstance(base, dict):
            raise ValueError(f"{source}: 'base' must be an object")
        overlap = set(base) & set(axes)
        if overlap:
            raise ValueError(
                f"{source}: {sorted(overlap)} appear in both 'base' and 'axes'"
            )

        # Probe-build one axis-free job per workload so an unknown assay,
        # bad generator parameters, a missing protocol file, or an invalid
        # 'base' (which rides along as the probe's config) fail *now* — the
        # CLI exits 2 and the service answers 400 at submit time, exactly
        # as the same mistake in a batch manifest would — instead of
        # surfacing asynchronously halfway into an exploration.
        graph_cache: Dict[str, Any] = {}
        for index, workload in enumerate(workloads):
            probe = {k: v for k, v in workload.items() if k != "id"}
            probe["config"] = dict(base)
            try:
                job_from_spec(
                    probe, base_dir=base_dir, index=index, graph_cache=graph_cache
                )
            except ValueError as exc:
                message = str(exc)
                prefix = f"job {index}: "
                if message.startswith(prefix):
                    message = message[len(prefix):]
                raise ValueError(
                    f"{source}: workload {index}: {message}"
                ) from exc

        objectives = payload.get("objectives", list(DEFAULT_OBJECTIVES))
        if not isinstance(objectives, list) or not objectives:
            raise ValueError(f"{source}: 'objectives' must be a non-empty list")
        if len(set(objectives)) != len(objectives):
            raise ValueError(f"{source}: duplicate objectives in {objectives}")
        unknown_objectives = set(objectives) - set(objective_names())
        if unknown_objectives:
            raise ValueError(
                f"{source}: unknown objectives {sorted(unknown_objectives)} "
                f"(registered: {list(objective_names())})"
            )
        needs_verify = [
            name for name in objectives if OBJECTIVES[name].requires_verification
        ]
        if needs_verify and not base.get("verify") and "verify" not in axes:
            raise ValueError(
                f"{source}: objectives {needs_verify} require the "
                'Monte-Carlo verification stage; set "verify": true in '
                "'base'"
            )

        strategy = payload.get("strategy", "exhaustive")
        if strategy not in strategy_names():
            raise ValueError(
                f"{source}: unknown strategy {strategy!r} "
                f"(registered: {list(strategy_names())})"
            )

        budget = payload.get("budget")
        if budget is not None and (not isinstance(budget, int) or budget < 1):
            raise ValueError(f"{source}: 'budget' must be a positive integer")
        seed = payload.get("seed", 0)
        if not isinstance(seed, int):
            raise ValueError(f"{source}: 'seed' must be an integer")

        return cls(
            workloads=workloads,
            axes=dict(axes),
            base=dict(base),
            objectives=tuple(objectives),
            strategy=strategy,
            budget=budget,
            seed=seed,
            name=payload.get("name"),
            base_dir=base_dir,
            graph_cache=graph_cache,
        )

    def to_payload(self) -> Dict[str, Any]:
        """The spec back as its canonical JSON payload (``base_dir`` excluded)."""
        return {
            "name": self.name,
            "workloads": self.workloads,
            "axes": self.axes,
            "base": self.base,
            "objectives": list(self.objectives),
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
        }

    def digest(self) -> str:
        """Content digest binding persisted exploration state to this spec.

        Deliberately covers only the *candidate space and objectives* —
        workloads, axes, base, objectives — not the search-process knobs
        (strategy, budget, seed, name).  Raising the budget, switching
        strategy, or re-seeding and rerunning against the same state file
        is the intended "keep exploring" workflow; changing what a
        candidate *is* or how it is scored invalidates the state.
        """
        return stable_digest(
            {
                "exploration_space": {
                    "workloads": self.workloads,
                    "axes": self.axes,
                    "base": self.base,
                    "objectives": list(self.objectives),
                }
            }
        )

    def candidate_count(self) -> int:
        """Size of the full candidate space (workloads × axes grid)."""
        count = len(self.workloads)
        for values in self.axes.values():
            count *= len(values)
        return count


def workload_id(workload: Dict[str, Any], index: int) -> str:
    """Stable display id of one workload entry (explicit ``id`` wins)."""
    if workload.get("id"):
        return str(workload["id"])
    if workload.get("assay"):
        return str(workload["assay"])
    if workload.get("generator"):
        spec = {k: v for k, v in workload.items() if k != "id"}
        return generator_spec_id(spec)
    if workload.get("protocol"):
        return Path(str(workload["protocol"])).stem
    return f"workload{index}"


def enumerate_candidates(spec: ExplorationSpec) -> List[Candidate]:
    """The full candidate space in deterministic order.

    Workloads in spec order; within a workload, the axes grid in *sorted
    axis-name* order.  The sort is what keeps candidate ids canonical: the
    resume digest hashes the axes as a key-order-insensitive mapping, so a
    spec file whose author reordered the axes keys must enumerate the very
    same ``<workload>/<axis=value,...>`` ids — otherwise a resumed run
    would skip nothing and duplicate every design point under a second id.
    Candidate ids are ``<workload>/<axis=value,...>`` — or just the
    workload id for an axis-free spec.  Duplicate ids (two identical
    workloads, or axis values that render identically) are rejected: every
    frontier row must be addressable.
    """
    axes = sorted(spec.axes)
    combos = list(itertools.product(*(spec.axes[a] for a in axes)))
    candidates: List[Candidate] = []
    seen: set = set()
    for index, workload in enumerate(spec.workloads):
        wid = workload_id(workload, index)
        for combo in combos:
            point = dict(zip(axes, combo))
            suffix = ",".join(
                f"{a}={_format_sweep_value(v)}" for a, v in point.items()
            )
            candidate_id = f"{wid}/{suffix}" if suffix else wid
            if candidate_id in seen:
                raise ValueError(
                    f"exploration spec: duplicate candidate id {candidate_id!r} "
                    "(identical workloads, or axis values that render identically)"
                )
            seen.add(candidate_id)
            candidates.append(
                Candidate(candidate_id=candidate_id, workload=workload, point=point)
            )
    return candidates


def candidate_job(
    spec: ExplorationSpec,
    candidate: Candidate,
    graph_cache: Optional[Dict[str, Any]] = None,
) -> BatchJob:
    """Build the :class:`BatchJob` evaluating one candidate.

    Delegates to the batch layer's :func:`job_from_spec`, so generator
    workloads, paper-default configs for named assays, and config validation
    all behave exactly as in a manifest; the candidate's axes point overrides
    the spec's ``base``.  ``graph_cache`` memoizes generator graphs across
    candidates of the same workload (the engine passes one per run, so a
    workload crossed with a k-point grid generates its graph once, not k
    times).
    """
    source = {k: v for k, v in candidate.workload.items() if k != "id"}
    job_spec = {
        **source,
        "id": candidate.candidate_id,
        "config": {**spec.base, **candidate.point},
    }
    return job_from_spec(job_spec, base_dir=spec.base_dir, graph_cache=graph_cache)


def load_spec(path: Union[str, Path]) -> ExplorationSpec:
    """Load and validate an exploration spec file.

    ``protocol`` workload paths resolve relative to the spec file's
    directory, mirroring batch manifests.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    return ExplorationSpec.from_payload(
        payload, base_dir=path.parent, source=f"exploration spec {path}"
    )
