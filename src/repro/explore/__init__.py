"""Design-space exploration: multi-objective Pareto search over flow configs
and synthetic workloads.

The subsystem the ``repro explore`` CLI subcommand and the synthesis
service's exploration submissions are built on:

* :mod:`repro.explore.spec` — the declarative JSON
  :class:`~repro.explore.spec.ExplorationSpec` (workloads × config axes,
  objectives, strategy, budget) and candidate enumeration;
* :mod:`repro.explore.objectives` — the registry of minimized objectives
  (makespan, storage cells, device count, chip area, wall time) with the
  cheap/full split the triage strategy exploits;
* :mod:`repro.explore.frontier` — the incremental
  :class:`~repro.explore.frontier.ParetoFrontier`;
* :mod:`repro.explore.strategies` — pluggable search strategies behind a
  string-keyed registry (exhaustive, random, successive-halving);
* :mod:`repro.explore.engine` — the
  :class:`~repro.explore.engine.ExplorationEngine` driving everything
  through the stage-granular batch layer, with resumable persisted state.

See ``docs/explore.md`` for the spec format and semantics.
"""

from repro.explore.engine import (
    ExplorationEngine,
    ExplorationReport,
    ExplorationState,
    format_exploration_report,
)
from repro.explore.frontier import (
    FrontierEntry,
    ParetoFrontier,
    dominates,
    is_dominance_consistent,
)
from repro.explore.objectives import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    cheap_objective_names,
    objective_names,
    objective_values,
    schedule_objective_values,
)
from repro.explore.spec import (
    Candidate,
    ExplorationSpec,
    candidate_job,
    enumerate_candidates,
    load_spec,
)
from repro.explore.strategies import (
    SearchStrategy,
    StrategyContext,
    get_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)

__all__ = [
    "Candidate",
    "DEFAULT_OBJECTIVES",
    "ExplorationEngine",
    "ExplorationReport",
    "ExplorationSpec",
    "ExplorationState",
    "FrontierEntry",
    "OBJECTIVES",
    "ParetoFrontier",
    "SearchStrategy",
    "StrategyContext",
    "candidate_job",
    "cheap_objective_names",
    "dominates",
    "enumerate_candidates",
    "format_exploration_report",
    "get_strategy",
    "is_dominance_consistent",
    "load_spec",
    "objective_names",
    "objective_values",
    "register_strategy",
    "schedule_objective_values",
    "strategy_names",
    "unregister_strategy",
]
