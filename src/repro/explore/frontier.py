"""The Pareto frontier: incremental dominance updates over objective vectors.

All objectives are minimized.  A candidate *dominates* another when it is no
worse on every objective and strictly better on at least one; the frontier
is the set of evaluated candidates no other evaluated candidate dominates.
:meth:`ParetoFrontier.add` maintains that set incrementally — each new entry
is compared against the current frontier only (dominated entries already
removed can never return), so an exploration of *n* candidates costs
O(n · frontier size) dominance checks, not O(n²) against all history.

The frontier serializes to a plain JSON payload (:meth:`to_payload` /
:meth:`from_payload`); the exploration engine persists it inside its state
file so an interrupted exploration resumes with the frontier it had.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class FrontierEntry:
    """One evaluated candidate: its id, objective vector, and report row.

    ``metrics`` carries the candidate's Table-2 metrics dict (when the full
    pipeline produced one) purely for reporting — dominance looks only at
    ``objectives``.
    """

    candidate_id: str
    objectives: Dict[str, float]
    metrics: Optional[Dict[str, Any]] = None

    def payload(self) -> Dict[str, Any]:
        """JSON-serializable form (stable key order for byte-stable files)."""
        return {
            "candidate_id": self.candidate_id,
            "objectives": dict(sorted(self.objectives.items())),
            "metrics": self.metrics,
        }


def dominates(
    a: Dict[str, float], b: Dict[str, float], names: Sequence[str]
) -> bool:
    """Whether vector ``a`` Pareto-dominates ``b`` on the named objectives.

    Minimization semantics: ``a`` is never worse and strictly better at
    least once.  Both vectors must carry every name (missing values are a
    caller bug, surfaced as :class:`KeyError`).
    """
    strictly_better = False
    for name in names:
        if a[name] > b[name]:
            return False
        if a[name] < b[name]:
            strictly_better = True
    return strictly_better


class ParetoFrontier:
    """The non-dominated set of evaluated candidates, updated incrementally."""

    def __init__(
        self,
        objective_names: Sequence[str],
        entries: Optional[Sequence[FrontierEntry]] = None,
    ) -> None:
        if not objective_names:
            raise ValueError("a Pareto frontier needs at least one objective")
        self.objective_names = tuple(objective_names)
        self._entries: List[FrontierEntry] = []
        for entry in entries or ():
            self.add(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FrontierEntry]:
        return iter(self._entries)

    def entries(self) -> List[FrontierEntry]:
        """Current frontier entries, in insertion order of the survivors."""
        return list(self._entries)

    def is_dominated(self, objectives: Dict[str, float]) -> bool:
        """Whether an objective vector is dominated by the current frontier."""
        return any(
            dominates(entry.objectives, objectives, self.objective_names)
            for entry in self._entries
        )

    def add(self, entry: FrontierEntry) -> bool:
        """Offer one evaluated candidate; return whether it joined.

        A dominated entry is refused; an accepted entry evicts every current
        member it dominates.  Re-offering an id already on the frontier
        replaces that entry (resume replays candidates through here).
        """
        missing = set(self.objective_names) - set(entry.objectives)
        if missing:
            raise ValueError(
                f"candidate {entry.candidate_id!r} lacks objectives {sorted(missing)}"
            )
        self._entries = [
            e for e in self._entries if e.candidate_id != entry.candidate_id
        ]
        if self.is_dominated(entry.objectives):
            return False
        self._entries = [
            e
            for e in self._entries
            if not dominates(entry.objectives, e.objectives, self.objective_names)
        ]
        self._entries.append(entry)
        return True

    # ------------------------------------------------------------ persistence
    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form of the whole frontier."""
        return {
            "objectives": list(self.objective_names),
            "entries": [entry.payload() for entry in self._entries],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ParetoFrontier":
        """Rebuild a frontier persisted with :meth:`to_payload`.

        Entries pass through :meth:`add`, so a hand-edited (or corrupted)
        payload containing dominated rows is repaired on load rather than
        trusted.
        """
        if not isinstance(payload, dict) or not payload.get("objectives"):
            raise ValueError("frontier payload must carry an 'objectives' list")
        frontier = cls(payload["objectives"])
        for raw in payload.get("entries", ()):
            frontier.add(
                FrontierEntry(
                    candidate_id=raw["candidate_id"],
                    objectives={k: float(v) for k, v in raw["objectives"].items()},
                    metrics=raw.get("metrics"),
                )
            )
        return frontier


def is_dominance_consistent(
    entries: Sequence[FrontierEntry], names: Sequence[str]
) -> bool:
    """Whether no entry of ``entries`` dominates another (a frontier invariant).

    The CI explore-smoke job and the regression tests call this on reported
    frontiers: a frontier containing a dominated row means the incremental
    update broke.
    """
    for a in entries:
        for b in entries:
            if a is not b and dominates(a.objectives, b.objectives, names):
                return False
    return True
