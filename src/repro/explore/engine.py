"""The exploration engine: strategy-driven Pareto search over the batch layer.

The engine owns everything a :class:`~repro.explore.strategies.SearchStrategy`
should not have to think about:

* **evaluation** — candidates become :class:`~repro.batch.jobs.BatchJob`\\ s
  and run through the stage-granular
  :class:`~repro.batch.engine.BatchSynthesisEngine`, so candidates agreeing
  on upstream stage keys (a pitch axis under a fixed schedule slice, two
  workloads sharing a graph) share solves exactly like sweep points do, and
  a warm cache replays stages across whole explorations;
* **cheap probes** — the schedule stage alone, through the same cache, so a
  triage pass and the later full pass never solve the same schedule twice;
* **budget** — the spec's cap on full evaluations, enforced centrally;
* **the frontier** — every completed candidate's objective vector is offered
  to one incremental :class:`~repro.explore.frontier.ParetoFrontier`;
* **resume** — after every evaluation chunk the engine persists its state
  (spec digest, evaluated candidates, frontier) to ``state_path``; a rerun
  pointed at the same file skips finished candidates and continues, while
  the stage cache replays whatever an interrupted run had completed.
"""

from __future__ import annotations

import json
import os
import random
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.batch.engine import BatchSynthesisEngine
from repro.batch.cache import ResultCache
from repro.explore.frontier import FrontierEntry, ParetoFrontier
from repro.explore.objectives import objective_values, schedule_objective_values
from repro.explore.spec import (
    Candidate,
    ExplorationSpec,
    candidate_job,
    enumerate_candidates,
)
from repro.explore.strategies import StrategyContext, get_strategy
from repro.scheduling.list_scheduler import ListSchedulerWorkspace
from repro.synthesis.config import apply_solver_override
from repro.synthesis.flow import build_library
from repro.synthesis.pipeline import StageContext


@dataclass
class ExplorationState:
    """Everything a resumed exploration needs: digest, outcomes, frontier.

    ``evaluated`` maps candidate ids to ``{"objectives": {...}}`` for
    completed syntheses or ``{"error": msg}`` for failed ones — both count
    against the budget, so a resumed run never re-pays for either.  A
    failure caught by the cheap triage pass additionally carries
    ``"triage": true``: it is remembered (and reported) like any failure,
    but does *not* consume budget — the budget caps full synthesis
    evaluations, and a schedule-only probe isn't one, so a triage casualty
    must not starve a healthy survivor of its slot.
    """

    spec_digest: str
    evaluated: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    frontier: Optional[Dict[str, Any]] = None

    def save(self, path: Union[str, Path]) -> None:
        """Atomically persist the state as JSON (write-then-rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "spec_digest": self.spec_digest,
            "evaluated": self.evaluated,
            "frontier": self.frontier,
        }
        tmp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["ExplorationState"]:
        """Load persisted state; ``None`` when the file does not exist.

        A syntactically broken state file raises — silently restarting a
        half-paid exploration would hide real corruption.
        """
        path = Path(path)
        if not path.exists():
            return None
        payload = json.loads(path.read_text())
        if not isinstance(payload, dict) or "spec_digest" not in payload:
            raise ValueError(f"exploration state {path} is not a state file")
        return cls(
            spec_digest=payload["spec_digest"],
            evaluated=dict(payload.get("evaluated") or {}),
            frontier=payload.get("frontier"),
        )


@dataclass
class ExplorationReport:
    """Outcome of one :meth:`ExplorationEngine.run` call.

    Duck-types the slice of :class:`~repro.batch.report.BatchReport` the
    synthesis service consumes (:meth:`summary`, :meth:`to_json_payload`),
    so an exploration submitted over HTTP reports through the same
    endpoints as a batch.
    """

    spec: ExplorationSpec
    frontier: ParetoFrontier
    candidate_count: int
    evaluated: int
    failed: int
    stage_totals: Dict[str, Dict[str, Any]]
    errors: Dict[str, str]
    wall_time_s: float = 0.0
    resumed: bool = False
    #: Candidates whose scheduling solve consumed a warm-start incumbent
    #: (self-seeded heuristic or a neighboring candidate's schedule).
    warm_started: int = 0

    @property
    def num_failed(self) -> int:
        """Candidates whose synthesis failed (mirrors ``BatchReport``)."""
        return self.failed

    @property
    def scheduling_solves(self) -> int:
        """Scheduling solves this exploration actually paid for.

        The acceptance number: stage sharing and cache replays must keep
        this *strictly below* the number of evaluated configs whenever the
        spec varies any downstream-only knob.
        """
        return int(self.stage_totals.get("schedule", {}).get("ran", 0))

    def summary(self) -> Dict[str, Any]:
        """Exploration totals, JSON-serializable (service status payload)."""
        return {
            "kind": "exploration",
            "name": self.spec.name,
            "strategy": self.spec.strategy,
            "objectives": list(self.spec.objectives),
            "candidates": self.candidate_count,
            "budget": self.spec.budget,
            "evaluated": self.evaluated,
            "failed": self.failed,
            "frontier_size": len(self.frontier),
            "resumed": self.resumed,
            "stages": self.stage_totals,
            "scheduling_solves": self.scheduling_solves,
            "warm_started": self.warm_started,
            "wall_time_s": round(self.wall_time_s, 3),
        }

    def to_json_payload(self) -> Dict[str, Any]:
        """The full machine-readable result: summary + frontier + errors.

        Written verbatim by ``repro explore --json`` and returned verbatim
        by the service's result endpoint.
        """
        return {
            "summary": self.summary(),
            "spec": self.spec.to_payload(),
            "frontier": [entry.payload() for entry in self.frontier],
            "errors": dict(sorted(self.errors.items())),
        }


class ExplorationEngine:
    """Drive one exploration spec to a Pareto frontier.

    Parameters
    ----------
    spec:
        The validated :class:`ExplorationSpec`.
    cache:
        Shared stage cache; ignored when ``batch_engine`` is given (the
        engine's cache wins).  A private in-memory cache is created when
        both are omitted.
    batch_engine:
        An existing :class:`BatchSynthesisEngine` to evaluate through — the
        synthesis service passes its long-lived engine here so exploration
        candidates share the single-flight stage cache with every other
        submission.
    max_workers:
        Process count for a private engine (ignored with ``batch_engine``).
    state_path:
        JSON file for resumable state; ``None`` disables persistence.
    solver:
        Optional ``--solver``-style backend override applied to every
        candidate's config (see
        :func:`repro.synthesis.config.apply_solver_override`).
    checkpoint_every:
        Candidates per evaluation chunk — the state file is rewritten after
        each chunk, bounding how much work an interruption can lose.
    warm_start:
        When true (the default), each candidate's job carries the schedule
        of the nearest already-solved candidate of the *same workload*
        (nearest by axes Hamming distance) as a solver warm-start hint.
        Hints are runtime advice: they never enter cache keys or the
        persisted state, so disabling them is a pure A/B switch — the
        frontier contents must not change.
    """

    def __init__(
        self,
        spec: ExplorationSpec,
        cache: Optional[ResultCache] = None,
        batch_engine: Optional[BatchSynthesisEngine] = None,
        max_workers: int = 1,
        state_path: Optional[Union[str, Path]] = None,
        solver: Optional[str] = None,
        checkpoint_every: int = 8,
        warm_start: bool = True,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be at least 1")
        self.spec = spec
        self.batch_engine = batch_engine or BatchSynthesisEngine(
            max_workers=max_workers,
            cache=cache if cache is not None else ResultCache(),
        )
        self.cache = self.batch_engine.cache
        self.state_path = Path(state_path) if state_path is not None else None
        self.solver = solver
        self.checkpoint_every = checkpoint_every
        self.warm_start = warm_start
        #: In-memory schedules of this run's solved candidates, keyed by
        #: candidate id — the warm-start neighbor pool.  Deliberately not
        #: persisted: a resumed run re-warms from what it solves itself.
        self._schedules: Dict[str, Any] = {}
        #: Per-graph list-scheduler workspaces for the cheap triage probes,
        #: keyed by graph identity (workload graphs are shared objects via
        #: the generator/assay memo, so identity is stable for a run).
        self._list_workspaces: Dict[int, Any] = {}
        self._state: Optional[ExplorationState] = None
        self._frontier: Optional[ParetoFrontier] = None
        self._stage_totals: Dict[str, Dict[str, Any]] = {}
        self._budget: int = 0
        #: Generator-graph memo shared by every candidate of this engine —
        #: one generation per distinct workload, not per candidate.  Seeded
        #: with whatever the spec's validation probe already built, so a
        #: spec-then-run flow generates each graph exactly once overall.
        self._graph_cache: Dict[str, Any] = getattr(spec, "graph_cache", None) or {}

    # ------------------------------------------------------------------- api
    def run(self) -> ExplorationReport:
        """Execute the spec's strategy and return the frontier report."""
        start = time.perf_counter()
        candidates = enumerate_candidates(self.spec)
        resumed = self._load_state()
        self._budget = (
            self.spec.budget if self.spec.budget is not None else len(candidates)
        )
        self._stage_totals = {}

        context = StrategyContext(
            spec=self.spec,
            candidates=candidates,
            rng=random.Random(self.spec.seed),
            evaluate=self._evaluate,
            cheap_values=self._cheap_values,
            remaining_budget=self._remaining_budget,
            evaluated_ids=lambda: set(self._state.evaluated),
        )
        get_strategy(self.spec.strategy).run(context)
        self._persist()

        errors = {
            cid: record["error"]
            for cid, record in self._state.evaluated.items()
            if "error" in record
        }
        return ExplorationReport(
            spec=self.spec,
            frontier=self._frontier,
            candidate_count=len(candidates),
            evaluated=len(self._state.evaluated),
            failed=len(errors),
            stage_totals=self._stage_totals,
            errors=errors,
            wall_time_s=time.perf_counter() - start,
            resumed=resumed,
            warm_started=sum(
                1
                for record in self._state.evaluated.values()
                if record.get("warm_start_used")
            ),
        )

    # -------------------------------------------------------------- internals
    def _load_state(self) -> bool:
        """Initialize (or resume) state and frontier; return whether resumed."""
        state = (
            ExplorationState.load(self.state_path)
            if self.state_path is not None
            else None
        )
        digest = self.spec.digest()
        if state is not None and state.spec_digest != digest:
            raise ValueError(
                f"exploration state {self.state_path} belongs to a different "
                "spec; point --state-dir somewhere fresh or restore the "
                "original spec"
            )
        if state is None:
            self._state = ExplorationState(spec_digest=digest)
            self._frontier = ParetoFrontier(self.spec.objectives)
            return False
        self._state = state
        self._frontier = (
            ParetoFrontier.from_payload(state.frontier)
            if state.frontier
            else ParetoFrontier(self.spec.objectives)
        )
        return bool(state.evaluated)

    def _remaining_budget(self) -> int:
        """Full evaluations the budget still admits (resumed ones included).

        Triage-flagged failures are excluded: they never received a full
        evaluation, so they hold no budget slot.
        """
        used = sum(
            1
            for record in self._state.evaluated.values()
            if not record.get("triage")
        )
        return max(0, self._budget - used)

    def _persist(self) -> None:
        """Write the current state file, when persistence is configured."""
        if self.state_path is None:
            return
        self._state.frontier = self._frontier.to_payload()
        self._state.save(self.state_path)

    def _candidate_job(self, candidate: Candidate):
        """Build the candidate's job with the solver override applied."""
        job = candidate_job(self.spec, candidate, graph_cache=self._graph_cache)
        job.config = apply_solver_override(job.config, self.solver)
        return job

    def _neighbor_hint(self, candidate: Candidate) -> Optional[Any]:
        """Schedule of the nearest already-solved same-workload candidate.

        Nearest by Hamming distance over the axes point (neighboring sweep
        configs differ in one axis, so their schedules are the most likely
        to transfer), ties broken by candidate id for determinism.  Only
        same-workload candidates qualify — a warm start must describe the
        same sequencing graph to have any chance of fitting.
        """
        best_key = None
        best_schedule = None
        for cid, (other, schedule) in self._schedules.items():
            if other.workload != candidate.workload:
                continue
            distance = sum(
                1
                for axis in set(candidate.point) | set(other.point)
                if candidate.point.get(axis) != other.point.get(axis)
            )
            key = (distance, cid)
            if best_key is None or key < best_key:
                best_key = key
                best_schedule = schedule
        return best_schedule

    def _bump_stage(
        self, stage: str, action: str, wall_time_s: float = 0.0
    ) -> None:
        """Accumulate one stage execution into the exploration totals."""
        row = self._stage_totals.setdefault(
            stage, {"ran": 0, "replayed": 0, "shared": 0, "wall_time_s": 0.0}
        )
        row[action] += 1
        if wall_time_s:
            row["wall_time_s"] = round(row["wall_time_s"] + wall_time_s, 3)

    def _merge_stage_summary(self, summary: Dict[str, Dict[str, Any]]) -> None:
        """Fold one batch report's per-stage breakdown into the totals."""
        for stage, row in summary.items():
            totals = self._stage_totals.setdefault(
                stage, {"ran": 0, "replayed": 0, "shared": 0, "wall_time_s": 0.0}
            )
            for action in ("ran", "replayed", "shared"):
                totals[action] += row.get(action, 0)
            totals["wall_time_s"] = round(
                totals["wall_time_s"] + row.get("wall_time_s", 0.0), 3
            )

    def _evaluate(self, candidates: Sequence[Candidate]) -> None:
        """Fully evaluate candidates (budget capped, resume aware).

        Runs in chunks of :attr:`checkpoint_every`; each chunk is one batch
        engine run (so stage sharing works within a chunk and the cache
        carries it across chunks) followed by a state checkpoint.
        """
        todo: List[Candidate] = []
        seen: set = set()
        for candidate in candidates:
            if candidate.candidate_id in seen:
                continue
            seen.add(candidate.candidate_id)
            if candidate.candidate_id in self._state.evaluated:
                continue
            todo.append(candidate)

        while todo and self._remaining_budget() > 0:
            chunk = todo[: min(self.checkpoint_every, self._remaining_budget())]
            todo = todo[len(chunk) :]
            jobs = [self._candidate_job(candidate) for candidate in chunk]
            if self.warm_start:
                for candidate, job in zip(chunk, jobs):
                    job.warm_hint = self._neighbor_hint(candidate)
            report = self.batch_engine.run(jobs)
            self._merge_stage_summary(report.stage_summary())
            for candidate, outcome in zip(chunk, report):
                if outcome.ok:
                    values = objective_values(
                        self.spec.objectives,
                        outcome.result,
                        outcome.result.config,
                        wall_time_s=outcome.wall_time_s,
                    )
                    self._frontier.add(
                        FrontierEntry(
                            candidate_id=candidate.candidate_id,
                            objectives=values,
                            metrics=outcome.metrics().as_dict(),
                        )
                    )
                    record: Dict[str, Any] = {
                        "objectives": dict(sorted(values.items()))
                    }
                    if getattr(outcome.result, "scheduler_warm_start_used", False):
                        record["warm_start_used"] = True
                    self._state.evaluated[candidate.candidate_id] = record
                    self._schedules[candidate.candidate_id] = (
                        candidate,
                        outcome.result.schedule,
                    )
                else:
                    self._state.evaluated[candidate.candidate_id] = {
                        "error": outcome.error
                    }
            self._persist()

    def _cheap_values(
        self, candidates: Sequence[Candidate]
    ) -> Dict[str, Dict[str, float]]:
        """Run only the schedule stage per candidate; return cheap vectors.

        Goes through the shared stage cache under the schedule stage's real
        key, so a subsequent full evaluation — or a concurrent service
        submission — replays these solves instead of re-paying them, and
        duplicated schedule slices within the candidate set solve once.
        Candidates whose scheduling fails are recorded as evaluated
        failures and omitted from the returned map.
        """
        schedule_stage = self.batch_engine.pipeline.stages[0]
        vectors: Dict[str, Dict[str, float]] = {}
        for candidate in candidates:
            if candidate.candidate_id in self._state.evaluated:
                record = self._state.evaluated[candidate.candidate_id]
                if "objectives" in record:
                    vectors[candidate.candidate_id] = {
                        name: value
                        for name, value in record["objectives"].items()
                    }
                continue
            job = self._candidate_job(candidate)
            key = self.batch_engine.pipeline.plan(job.graph, job.config)[0].key
            artifact = self.cache.get(key)
            if artifact is not None:
                self._bump_stage(schedule_stage.name, "replayed")
            else:
                workspace = self._list_workspaces.get(id(job.graph))
                if workspace is None:
                    workspace = ListSchedulerWorkspace()
                    self._list_workspaces[id(job.graph)] = workspace
                context = StageContext(
                    graph=job.graph,
                    config=job.config,
                    library=build_library(job.config),
                    schedule_workspace=workspace,
                )
                start = time.perf_counter()
                try:
                    artifact = schedule_stage.run(context, None)
                except Exception as exc:  # noqa: BLE001 - recorded per candidate
                    # Under a single-flight cache the miss above claimed the
                    # key; release it so concurrent engines don't wait out
                    # the claim timeout on an artifact that is never coming.
                    abandon = getattr(self.cache, "abandon", None)
                    if abandon is not None:
                        abandon(key)
                    self._state.evaluated[candidate.candidate_id] = {
                        "error": f"{type(exc).__name__}: {exc}",
                        "triage": True,
                    }
                    continue
                self.cache.put(key, artifact)
                self._bump_stage(
                    schedule_stage.name, "ran",
                    wall_time_s=time.perf_counter() - start,
                )
            vectors[candidate.candidate_id] = schedule_objective_values(
                self.spec.objectives, artifact.schedule, job.config
            )
        self._persist()
        return vectors


def format_exploration_report(report: ExplorationReport) -> str:
    """Human-readable exploration report (frontier table + stage totals)."""
    lines: List[str] = []
    name = report.spec.name or "exploration"
    resumed = " (resumed)" if report.resumed else ""
    lines.append(
        f"{name}{resumed}: strategy={report.spec.strategy}, "
        f"{report.evaluated}/{report.candidate_count} candidates evaluated "
        f"({report.failed} failed), frontier size {len(report.frontier)}"
    )
    lines.append("objectives (minimized): " + ", ".join(report.spec.objectives))
    for entry in sorted(report.frontier, key=lambda e: e.candidate_id):
        values = " ".join(
            f"{objective}={entry.objectives[objective]:g}"
            for objective in report.spec.objectives
        )
        lines.append(f"  {entry.candidate_id:<40} {values}")
    for stage, row in report.stage_totals.items():
        lines.append(
            f"stage {stage}: {row['ran']} ran, {row['replayed']} replayed, "
            f"{row['shared']} shared, {row['wall_time_s']:.2f} s solve time"
        )
    warm_note = (
        f", {report.warm_started} warm-started" if report.warm_started else ""
    )
    lines.append(
        f"exploration: {report.scheduling_solves} scheduling solve(s) for "
        f"{report.evaluated} evaluated config(s){warm_note}, "
        f"{report.wall_time_s:.2f} s wall clock"
    )
    return "\n".join(lines)
