"""Objective extraction: what the exploration engine minimizes.

Every objective is *minimized*.  An objective is either **cheap** — computable
from the schedule stage's artifact and the flow config alone — or **full**,
requiring the complete synthesis result (architecture + physical design).
The distinction is what lets the successive-halving strategy prune dominated
configurations after paying only for the scheduling solve: it ranks
candidates on the cheap subset of the spec's objectives before the expensive
stages run.

The registry is a plain name → :class:`ObjectiveDef` map; the exploration
spec validates objective names against it at load time so a typo fails with
exit code 2, not mid-exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.scheduling.transport import peak_storage_demand, total_storage_time
from repro.synthesis.config import FlowConfig


@dataclass(frozen=True)
class ObjectiveDef:
    """One named quantity the Pareto search can minimize.

    ``cheap`` marks objectives computable from ``(schedule, config)`` alone;
    ``from_schedule`` is that extraction (``None`` for full-only objectives),
    and ``from_result`` extracts the final value from a completed
    :class:`~repro.synthesis.flow.SynthesisResult` plus the job's measured
    wall time.
    """

    name: str
    description: str
    cheap: bool
    from_result: Callable[[Any, FlowConfig, float], float]
    from_schedule: Optional[Callable[[Any, FlowConfig], float]] = None
    #: Whether extraction reads the Monte-Carlo verification report — the
    #: exploration spec refuses such objectives at load time unless the
    #: candidate configs enable the verify stage.
    requires_verification: bool = False


def _device_count(config: FlowConfig) -> float:
    return float(config.num_mixers + config.num_detectors + config.num_heaters)


def _verification_of(result: Any) -> Any:
    """The result's Monte-Carlo report, or a clear error when absent.

    The robustness objectives only exist for configs that enabled the
    verify stage; naming one in a spec whose base config leaves
    ``verify=false`` must fail with an actionable message, not an
    ``AttributeError`` deep inside objective extraction.
    """
    report = getattr(result, "verification", None)
    if report is None:
        raise ValueError(
            "objective requires the Monte-Carlo verification stage; set "
            '"verify": true in the exploration base config'
        )
    return report


#: All objectives the exploration spec may name, keyed by spec name.
OBJECTIVES: Dict[str, ObjectiveDef] = {
    "makespan": ObjectiveDef(
        name="makespan",
        description="assay completion time t_E (seconds)",
        cheap=True,
        from_result=lambda result, config, wall: float(result.schedule.makespan),
        from_schedule=lambda schedule, config: float(schedule.makespan),
    ),
    "storage_cells": ObjectiveDef(
        name="storage_cells",
        description="peak number of concurrently stored fluid samples",
        cheap=True,
        from_result=lambda result, config, wall: float(
            peak_storage_demand(result.schedule)
        ),
        from_schedule=lambda schedule, config: float(peak_storage_demand(schedule)),
    ),
    "storage_time": ObjectiveDef(
        name="storage_time",
        description="total fluid-seconds spent in channel storage",
        cheap=True,
        from_result=lambda result, config, wall: float(
            total_storage_time(result.schedule)
        ),
        from_schedule=lambda schedule, config: float(total_storage_time(schedule)),
    ),
    "device_count": ObjectiveDef(
        name="device_count",
        description="mixers + detectors + heaters the config provisions",
        cheap=True,
        from_result=lambda result, config, wall: _device_count(config),
        from_schedule=lambda schedule, config: _device_count(config),
    ),
    "chip_area": ObjectiveDef(
        name="chip_area",
        description="compact-layout area d_p (layout units squared)",
        cheap=False,
        from_result=lambda result, config, wall: float(
            result.physical.compact_dimensions[0]
            * result.physical.compact_dimensions[1]
        ),
    ),
    "wall_time": ObjectiveDef(
        name="wall_time",
        description="synthesis wall time the job itself paid (seconds; "
        "machine-dependent and zero for cache hits)",
        cheap=False,
        from_result=lambda result, config, wall: float(wall),
    ),
    "makespan_p99": ObjectiveDef(
        name="makespan_p99",
        description="99th-percentile Monte-Carlo makespan under jitter and "
        "faults (requires verify=true in the config)",
        cheap=False,
        from_result=lambda result, config, wall: float(
            _verification_of(result).makespan_p99
        ),
        requires_verification=True,
    ),
    "recovery_rate": ObjectiveDef(
        name="recovery_rate",
        description="fault-recovery failure fraction 1 - recovery_rate "
        "(minimized, so robust designs dominate; requires verify=true)",
        cheap=False,
        from_result=lambda result, config, wall: 1.0
        - float(_verification_of(result).recovery_rate),
        requires_verification=True,
    ),
}

#: The default objective set of an exploration spec: the paper's central
#: makespan-versus-storage-versus-resources trade-off.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("makespan", "storage_cells", "device_count")


def objective_names() -> Tuple[str, ...]:
    """All registered objective names, sorted (for errors and docs)."""
    return tuple(sorted(OBJECTIVES))


def cheap_objective_names(names: Sequence[str]) -> Tuple[str, ...]:
    """The subset of ``names`` computable from the schedule stage alone."""
    return tuple(name for name in names if OBJECTIVES[name].cheap)


def objective_values(
    names: Sequence[str], result: Any, config: FlowConfig, wall_time_s: float = 0.0
) -> Dict[str, float]:
    """Extract the named objective vector from a completed synthesis result."""
    return {
        name: OBJECTIVES[name].from_result(result, config, wall_time_s)
        for name in names
    }


def schedule_objective_values(
    names: Sequence[str], schedule: Any, config: FlowConfig
) -> Dict[str, float]:
    """Extract the *cheap* subset of ``names`` from a schedule artifact."""
    values: Dict[str, float] = {}
    for name in cheap_objective_names(names):
        values[name] = OBJECTIVES[name].from_schedule(schedule, config)
    return values
