"""HiGHS backend: solve a :class:`repro.ilp.Model` via ``scipy.optimize.milp``.

This is the historical solve path of ``repro.ilp.solver``, lowered into a
:class:`~repro.ilp.backends.base.SolverBackend` so it is one option among
several instead of a hard dependency.  scipy is imported behind a guard:
without it the backend reports itself unavailable (and the default
portfolio backend falls through to the dependency-free branch-and-bound),
so the repository imports and runs on a scipy-free interpreter.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.ilp.backends.base import BackendUnavailableError, SolverBackend, empty_model_result
from repro.ilp.model import Model
from repro.ilp.status import SolverStatus

try:  # scipy is an optional extra since the backend refactor
    from scipy.optimize import Bounds, LinearConstraint, milp
except ImportError:  # pragma: no cover - exercised by the scipy-free CI leg
    Bounds = LinearConstraint = milp = None

_STATUS_BY_CODE = {
    0: SolverStatus.OPTIMAL,
    1: SolverStatus.TIME_LIMIT,   # iteration or time limit
    2: SolverStatus.INFEASIBLE,
    3: SolverStatus.UNBOUNDED,
    4: SolverStatus.ERROR,
}

#: Tolerance for deciding that a returned value is integral.
_INTEGRALITY_TOL = 1e-4


def _usable_incumbent(x, model: Model) -> bool:
    """True when ``x`` is a finite solution vector respecting integrality.

    scipy's ``milp`` reports status code 1 for *any* iteration or time limit.
    Depending on where HiGHS was interrupted, ``result.x`` may then be absent,
    or hold a fractional/non-finite relaxation instead of a true MILP
    incumbent.  Reporting such a vector as ``FEASIBLE`` would push garbage
    start times and bindings into the scheduler, so anything non-finite or
    non-integral is treated as "no incumbent".
    """
    if x is None:
        return False
    arr = np.asarray(x, dtype=float)
    if arr.size != len(model.variables) or not np.all(np.isfinite(arr)):
        return False
    for var in model.variables:
        if var.kind in ("integer", "binary"):
            value = arr[var.index]
            if abs(value - round(value)) > _INTEGRALITY_TOL:
                return False
    return True


class HighsBackend(SolverBackend):
    """Lower a model to matrix form and solve it with scipy's HiGHS."""

    name = "highs"

    def is_available(self) -> bool:
        """True when scipy (and therefore ``scipy.optimize.milp``) imported."""
        return milp is not None

    def solve(self, model: Model, options=None):
        """Solve with HiGHS, filling variable values on a feasible outcome.

        Raises
        ------
        BackendUnavailableError
            When scipy is not installed; select ``branch-and-bound`` or the
            ``portfolio`` backend (which skips unavailable members) instead.
        """
        from repro.ilp.solver import SolveResult, SolverOptions

        options = options or SolverOptions()
        trivial = empty_model_result(model)
        if trivial is not None:
            trivial.backend_name = self.name
            return trivial
        if not self.is_available():
            raise BackendUnavailableError(
                "the 'highs' backend needs scipy (pip install 'repro[highs]'); "
                "use the 'branch-and-bound' or 'portfolio' backend on scipy-free "
                "environments"
            )
        start = time.perf_counter()

        c, A, lower, upper, lb, ub, integrality = model.to_matrices()

        constraints = []
        if A.shape[0] > 0:
            constraints.append(LinearConstraint(A, lower, upper))

        milp_options = {"disp": options.verbose, "presolve": options.presolve}
        if options.time_limit_s is not None:
            milp_options["time_limit"] = float(options.time_limit_s)
        if options.mip_rel_gap is not None:
            milp_options["mip_rel_gap"] = float(options.mip_rel_gap)
        if options.node_limit is not None:
            milp_options["node_limit"] = int(options.node_limit)

        result = milp(
            c=c,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lb, ub),
            options=milp_options,
        )
        elapsed = time.perf_counter() - start

        status = _STATUS_BY_CODE.get(result.status, SolverStatus.ERROR)
        has_solution = _usable_incumbent(result.x, model)
        if status is SolverStatus.TIME_LIMIT:
            # Code 1 covers both "limit hit, incumbent available" (a feasible
            # best-effort result, the paper's 30-minute practice) and "limit
            # hit with no usable incumbent" — the latter must stay
            # non-feasible so callers raise a clear error (or, under the
            # portfolio backend, fall back) instead of consuming garbage.
            status = SolverStatus.FEASIBLE if has_solution else SolverStatus.TIME_LIMIT
        if status is SolverStatus.OPTIMAL and not has_solution:
            status = SolverStatus.ERROR

        values = {}
        objective_value: Optional[float] = None
        if has_solution and status.is_feasible():
            x = np.asarray(result.x, dtype=float)
            for var in model.variables:
                raw = float(x[var.index])
                if var.kind in ("integer", "binary"):
                    raw = float(round(raw))
                var.value = raw
                values[var.name] = raw
            objective_value = float(model.objective_value()) if model.objective else 0.0
        else:
            for var in model.variables:
                var.value = None

        gap = getattr(result, "mip_gap", None)
        return SolveResult(
            status=status,
            objective=objective_value,
            values=values,
            wall_time_s=elapsed,
            message=str(getattr(result, "message", "")),
            mip_gap=float(gap) if gap is not None else None,
            backend_name=self.name,
        )
