"""Dependency-free MILP backend: best-first branch and bound, LP-free.

The backend solves a :class:`repro.ilp.Model` with nothing beyond the
standard library and the matrices the model already knows how to produce
(:meth:`Model.to_matrices`).  It exists so the whole synthesis flow runs on
an interpreter without scipy — as the portfolio's fallback, and as an
explicitly selectable ``"branch-and-bound"`` backend in tests and CI.

Instead of an LP relaxation, nodes are bounded by *interval propagation*:

* every constraint row ``row_lo <= a . x <= row_hi`` tightens each of its
  variables' bounds from the residual activity of the others, iterated to a
  fixpoint (integer bounds are rounded inward);
* a node's objective bound is the box minimum ``sum_j min(c_j lo_j, c_j
  hi_j)`` — valid for any point in the box, no LP needed;
* incumbents come from a greedy *dive*: repeatedly fix the first unfixed
  integer to its objective-preferred bound (falling back to the opposite
  bound when propagation refutes it), then assign the remaining continuous
  variables greedily; every candidate assignment is verified against all
  rows before it is accepted, so the backend never returns an invalid
  solution.

Search is best-first over the node bound (a heap), branching by halving the
first unfixed integer variable's range, which keeps the tree logarithmic in
the bound widths.  The backend is exact on the small models it is meant for
(the golden-assay ILPs, the parity fixtures); on large instances it honors
``time_limit_s``/``node_limit`` and reports its best incumbent —
``FEASIBLE`` with a solution, ``TIME_LIMIT`` without one — mirroring the
HiGHS status contract.  Models that are *unbounded* (an improving direction
on an infinite box) are not detected as such and may enumerate until a
limit fires; the synthesis formulations never produce them.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ilp.backends.base import SolverBackend, empty_model_result
from repro.ilp.model import Model
from repro.ilp.status import SolverStatus

_INF = math.inf
#: Absolute feasibility tolerance for row activities and bound crossings.
_FEAS_TOL = 1e-6
#: Tolerance for treating an integer bound as attained.
_INT_TOL = 1e-6
#: Objective epsilon under which two incumbents are considered equal.
_OBJ_TOL = 1e-9
#: Fixpoint cap: propagation passes per node before settling for the
#: current (still valid, just less tight) box.
_MAX_PASSES = 40

#: One sparse constraint row: ``(terms, row_lo, row_hi)`` with
#: ``terms = [(var_index, coefficient), ...]``.
_Row = Tuple[List[Tuple[int, float]], float, float]


def _build_rows(A, lower, upper) -> List[_Row]:
    """Sparse rows from the dense matrix form of :meth:`Model.to_matrices`."""
    rows: List[_Row] = []
    for r in range(A.shape[0]):
        terms = [(j, float(A[r, j])) for j in range(A.shape[1]) if A[r, j] != 0.0]
        rows.append((terms, float(lower[r]), float(upper[r])))
    return rows


class BranchAndBoundBackend(SolverBackend):
    """Pure-Python best-first branch and bound over the model's matrices."""

    name = "branch-and-bound"

    def __init__(self, max_nodes: int = 500_000) -> None:
        #: Hard safety cap on explored nodes when the options carry no
        #: ``node_limit`` of their own; prevents an un-capped call on a hard
        #: model from spinning forever.
        self.max_nodes = max_nodes

    # ----------------------------------------------------------- propagation
    def _propagate(self, rows: Sequence[_Row], lo: List[float], hi: List[float],
                   is_int: Sequence[bool]) -> bool:
        """Tighten ``lo``/``hi`` in place; ``False`` when proven infeasible."""
        for _ in range(_MAX_PASSES):
            changed = False
            for terms, row_lo, row_hi in rows:
                min_fin = max_fin = 0.0
                min_inf = max_inf = 0
                for j, a in terms:
                    cmin = a * lo[j] if a > 0 else a * hi[j]
                    cmax = a * hi[j] if a > 0 else a * lo[j]
                    if cmin == -_INF:
                        min_inf += 1
                    else:
                        min_fin += cmin
                    if cmax == _INF:
                        max_inf += 1
                    else:
                        max_fin += cmax
                if min_inf == 0 and min_fin > row_hi + _FEAS_TOL:
                    return False
                if max_inf == 0 and max_fin < row_lo - _FEAS_TOL:
                    return False
                for j, a in terms:
                    cmin = a * lo[j] if a > 0 else a * hi[j]
                    cmax = a * hi[j] if a > 0 else a * lo[j]
                    if cmin == -_INF:
                        rest_min = min_fin if min_inf == 1 else -_INF
                    else:
                        rest_min = (min_fin - cmin) if min_inf == 0 else -_INF
                    if cmax == _INF:
                        rest_max = max_fin if max_inf == 1 else _INF
                    else:
                        rest_max = (max_fin - cmax) if max_inf == 0 else _INF
                    # a * x_j <= row_hi - rest_min
                    if row_hi < _INF and rest_min > -_INF:
                        limit = (row_hi - rest_min) / a
                        if a > 0:
                            if is_int[j]:
                                limit = math.floor(limit + _INT_TOL)
                            if limit < hi[j] - 1e-7:
                                hi[j] = limit
                                changed = True
                        else:
                            if is_int[j]:
                                limit = math.ceil(limit - _INT_TOL)
                            if limit > lo[j] + 1e-7:
                                lo[j] = limit
                                changed = True
                    # a * x_j >= row_lo - rest_max
                    if row_lo > -_INF and rest_max < _INF:
                        limit = (row_lo - rest_max) / a
                        if a > 0:
                            if is_int[j]:
                                limit = math.ceil(limit - _INT_TOL)
                            if limit > lo[j] + 1e-7:
                                lo[j] = limit
                                changed = True
                        else:
                            if is_int[j]:
                                limit = math.floor(limit + _INT_TOL)
                            if limit < hi[j] - 1e-7:
                                hi[j] = limit
                                changed = True
                    if lo[j] > hi[j] + _FEAS_TOL:
                        return False
            if not changed:
                break
        return True

    @staticmethod
    def _box_bound(c: Sequence[float], lo: Sequence[float], hi: Sequence[float]) -> float:
        """Objective lower bound of a box: each term at its cheapest end."""
        total = 0.0
        for j, cj in enumerate(c):
            if cj > 0:
                term = cj * lo[j]
            elif cj < 0:
                term = cj * hi[j]
            else:
                continue
            if term == -_INF:
                return -_INF
            total += term
        return total

    @staticmethod
    def _first_unfixed_int(int_indices: Sequence[int], lo: Sequence[float],
                           hi: Sequence[float]) -> Optional[int]:
        for j in int_indices:
            if hi[j] - lo[j] > _INT_TOL:
                return j
        return None

    @staticmethod
    def _verified(rows: Sequence[_Row], x: Sequence[float]) -> bool:
        """Check a full assignment against every row (absolute tolerance)."""
        for terms, row_lo, row_hi in rows:
            activity = sum(a * x[j] for j, a in terms)
            if activity > row_hi + _FEAS_TOL or activity < row_lo - _FEAS_TOL:
                return False
        return True

    def _complete(self, rows, c, lo, hi, is_int,
                  int_indices) -> Optional[Tuple[float, List[float], bool]]:
        """Greedily assign the continuous variables of an int-fixed box.

        Continuous variables are fixed to their objective-preferred bound in
        decreasing ``|c_j|`` order (deciding the expensive variables first,
        letting propagation push the cheap ones), re-propagating after each
        fix so forced consequences cascade.  Returns the verified
        ``(objective, x, exact)`` or ``None`` when the greedy choices dead
        end; the search never accepts an unverified point.  ``exact`` marks
        a completion that attains the box's objective bound — only then is
        the box provably closed, since without an LP a cheaper point with a
        different continuous trade-off cannot be ruled out.
        """
        lo, hi = list(lo), list(hi)
        entry_bound = self._box_bound(c, lo, hi)
        order = sorted(
            (j for j in range(len(c)) if not is_int[j]),
            key=lambda j: (-abs(c[j]), j),
        )
        for j in order:
            if hi[j] - lo[j] <= 1e-9:
                continue
            value = lo[j] if c[j] >= 0 else hi[j]
            if value == -_INF or value == _INF:
                other = hi[j] if value == -_INF else lo[j]
                value = other if other not in (-_INF, _INF) else 0.0
                value = min(max(value, lo[j]), hi[j])
            lo[j] = hi[j] = value
            if not self._propagate(rows, lo, hi, is_int):
                return None
        x = [round(lo[j]) if is_int[j] else lo[j] for j in range(len(c))]
        if not self._verified(rows, x):
            return None
        objective = sum(cj * x[j] for j, cj in enumerate(c) if cj)
        exact = objective <= entry_bound + _FEAS_TOL * max(1.0, abs(objective))
        return objective, x, exact

    def _dive(self, rows, c, lo, hi, is_int,
              int_indices) -> Optional[Tuple[float, List[float], bool]]:
        """Greedy rounding: fix integers toward the objective, repair once.

        The "schedule everything as early as possible" shape of the flow's
        models makes this dive a strong incumbent source; a failed dive is
        no loss of correctness (the search proper still explores the node).
        """
        lo, hi = list(lo), list(hi)
        while True:
            j = self._first_unfixed_int(int_indices, lo, hi)
            if j is None:
                return self._complete(rows, c, lo, hi, is_int, int_indices)
            candidates = [lo[j], hi[j]] if c[j] >= 0 else [hi[j], lo[j]]
            candidates = [v for v in candidates if v not in (-_INF, _INF)]
            if not candidates:
                candidates = [0.0]
            for value in candidates:
                trial_lo, trial_hi = list(lo), list(hi)
                trial_lo[j] = trial_hi[j] = value
                if self._propagate(rows, trial_lo, trial_hi, is_int):
                    lo, hi = trial_lo, trial_hi
                    break
            else:
                return None

    # ------------------------------------------------------------------ solve
    def solve(self, model: Model, options=None):
        """Solve ``model`` exactly (small instances) or best-effort at limits."""
        from repro.ilp.solver import SolveResult, SolverOptions

        options = options or SolverOptions()
        trivial = empty_model_result(model)
        if trivial is not None:
            trivial.backend_name = self.name
            return trivial

        start = time.perf_counter()
        deadline = None
        if options.time_limit_s is not None:
            deadline = start + float(options.time_limit_s)
        node_limit = options.node_limit if options.node_limit is not None else self.max_nodes

        c_arr, A, lower, upper, lb, ub, integrality = model.to_matrices()
        n = len(model.variables)
        c = [float(v) for v in c_arr]
        is_int = [bool(v) for v in integrality]
        rows = _build_rows(A, lower, upper)
        lo = [float(v) for v in lb]
        hi = [float(v) for v in ub]
        # Decide binaries (and other unit-range integers) before wide ranges:
        # in the flow's models the binaries are the assignment/ordering
        # decisions, and once they are fixed propagation collapses the start
        # times — which makes both the greedy dive and the search behave
        # like an as-soon-as-possible scheduler instead of bisecting time.
        int_indices = sorted(
            (j for j in range(n) if is_int[j]),
            key=lambda j: (0 if hi[j] - lo[j] <= 1.0 else 1, j),
        )

        best: Optional[Tuple[float, List[float]]] = None
        nodes = 0
        status: Optional[SolverStatus] = None
        # True while every leaf reached so far was provably closed (an exact
        # completion, or refuted by propagation).  An open leaf downgrades
        # the exhausted-search claim: OPTIMAL → FEASIBLE with an incumbent,
        # INFEASIBLE → TIME_LIMIT (feasibility unknown) without one.
        leaves_closed = True
        # Lowest bound discarded by margin pruning while strictly below the
        # incumbent.  With a mip_rel_gap the widened margin may prune the
        # true optimum, so the final gap is reported against this bound
        # instead of being asserted as zero.
        discarded_below_best: Optional[float] = None

        if not self._propagate(rows, lo, hi, is_int):
            status = SolverStatus.INFEASIBLE
        else:
            dived = self._dive(rows, c, lo, hi, is_int, int_indices)
            if dived is not None:
                best = (dived[0], dived[1])
            heap: List[Tuple[float, int, List[float], List[float]]] = [
                (self._box_bound(c, lo, hi), 0, lo, hi)
            ]
            seq = 1
            while heap:
                if deadline is not None and time.perf_counter() > deadline:
                    status = SolverStatus.FEASIBLE if best else SolverStatus.TIME_LIMIT
                    break
                if nodes >= node_limit:
                    status = SolverStatus.FEASIBLE if best else SolverStatus.TIME_LIMIT
                    break
                bound, _, lo_n, hi_n = heapq.heappop(heap)
                if best is not None and bound >= best[0] - self._margin(best[0], options):
                    if bound < best[0] - _OBJ_TOL and (
                        discarded_below_best is None or bound < discarded_below_best
                    ):
                        discarded_below_best = bound
                    continue
                nodes += 1
                j = self._first_unfixed_int(int_indices, lo_n, hi_n)
                if j is None:
                    candidate = self._complete(rows, c, lo_n, hi_n, is_int, int_indices)
                    if candidate is None:
                        leaves_closed = False
                        continue
                    obj, x, exact = candidate
                    if not exact:
                        leaves_closed = False
                    if best is None or obj < best[0] - _OBJ_TOL:
                        best = (obj, x)
                    continue
                if lo_n[j] == -_INF and hi_n[j] == _INF:
                    # Doubly unbounded: fix zero and keep the two open rays.
                    splits = [(0.0, 0.0), (-_INF, -1.0), (1.0, _INF)]
                elif hi_n[j] == _INF:
                    # Unbounded range: peel the finite endpoint off so every
                    # branch still shrinks the box.
                    splits = [(lo_n[j], lo_n[j]), (lo_n[j] + 1, _INF)]
                elif lo_n[j] == -_INF:
                    splits = [(hi_n[j], hi_n[j]), (-_INF, hi_n[j] - 1)]
                else:
                    mid = int(math.floor((lo_n[j] + hi_n[j]) / 2 + 1e-9))
                    splits = [(lo_n[j], float(mid)), (float(mid) + 1, hi_n[j])]
                for child_lo_j, child_hi_j in splits:
                    child_lo, child_hi = list(lo_n), list(hi_n)
                    child_lo[j], child_hi[j] = child_lo_j, child_hi_j
                    if not self._propagate(rows, child_lo, child_hi, is_int):
                        continue
                    child_bound = self._box_bound(c, child_lo, child_hi)
                    if best is not None and child_bound >= best[0] - self._margin(best[0], options):
                        if child_bound < best[0] - _OBJ_TOL and (
                            discarded_below_best is None
                            or child_bound < discarded_below_best
                        ):
                            discarded_below_best = child_bound
                        continue
                    heapq.heappush(heap, (child_bound, seq, child_lo, child_hi))
                    seq += 1
            else:
                if best is not None:
                    status = SolverStatus.OPTIMAL if leaves_closed else SolverStatus.FEASIBLE
                else:
                    status = SolverStatus.INFEASIBLE if leaves_closed else SolverStatus.TIME_LIMIT

        elapsed = time.perf_counter() - start
        values: Dict[str, float] = {}
        objective_value: Optional[float] = None
        if best is not None and status in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE):
            _, x = best
            for var in model.variables:
                raw = float(x[var.index])
                if var.kind in ("integer", "binary"):
                    raw = float(round(raw))
                var.value = raw
                values[var.name] = raw
            objective_value = float(model.objective_value()) if model.objective else 0.0
        else:
            for var in model.variables:
                var.value = None

        mip_gap: Optional[float] = None
        if status is SolverStatus.OPTIMAL:
            if best is not None and discarded_below_best is not None:
                # Gap-widened pruning may have discarded the true optimum;
                # report the (upper bound on the) remaining gap honestly.
                mip_gap = max(
                    0.0,
                    (best[0] - discarded_below_best) / max(1.0, abs(best[0])),
                )
            else:
                mip_gap = 0.0
        return SolveResult(
            status=status,
            objective=objective_value,
            values=values,
            wall_time_s=elapsed,
            message=f"branch-and-bound: {nodes} nodes explored",
            mip_gap=mip_gap,
            backend_name=self.name,
        )

    @staticmethod
    def _margin(incumbent_obj: float, options) -> float:
        """Pruning margin: exactness epsilon, widened by ``mip_rel_gap``."""
        if options.mip_rel_gap:
            return max(_OBJ_TOL, float(options.mip_rel_gap) * abs(incumbent_obj))
        return _OBJ_TOL
