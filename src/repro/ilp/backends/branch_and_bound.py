"""Dependency-free MILP backend: best-first branch and bound, LP-free.

The backend solves a :class:`repro.ilp.Model` with nothing beyond numpy and
the matrices the model already knows how to produce
(:meth:`Model.to_matrices`).  It exists so the whole synthesis flow runs on
an interpreter without scipy — as the portfolio's fallback, and as an
explicitly selectable ``"branch-and-bound"`` backend in tests and CI.

Instead of an LP relaxation, nodes are bounded by *interval propagation*:

* every constraint row ``row_lo <= a . x <= row_hi`` tightens each of its
  variables' bounds from the residual activity of the others, iterated to a
  fixpoint (integer bounds are rounded inward);
* a node's objective bound is the box minimum ``sum_j min(c_j lo_j, c_j
  hi_j)`` — valid for any point in the box, no LP needed;
* once an incumbent exists, an *objective-cut row* ``c . x <= incumbent -
  eps`` joins the propagated system, so bound tightening actively shrinks
  every surviving box toward strictly-improving solutions instead of only
  refuting whole boxes at pruning time;
* incumbents come from a greedy *dive*: repeatedly fix the first unfixed
  integer to its objective-preferred bound (falling back to the opposite
  bound when propagation refutes it), then assign the remaining continuous
  variables greedily; every candidate assignment is verified against all
  original rows before it is accepted, so the backend never returns an
  invalid solution.

The propagation, bounding and verification kernels are vectorized over the
dense matrices (row activities as masked matrix products, residual bounds
as element-wise division over the full ``rows x vars`` plane).  Setting
``REPRO_BB_SCALAR=1`` in the environment selects the original pure-Python
per-term loops instead — kept solely as a differential-testing oracle; both
paths share the same tolerances (:data:`_TIGHTEN_TOL` et al.) and reach the
same propagation fixpoint.

A :class:`~repro.ilp.solver.WarmStart` in ``SolverOptions.warm_start`` is
verified against the model and, when valid, seeds the search: nodes whose
bound cannot beat the warm objective are pruned from the start (the cut row
opens at ``warm_objective + eps``, so equally-good solutions remain
reachable and the search still returns its own incumbent on ties — a warm
start changes node counts, never the reported status or objective).  The
warm point itself is the returned incumbent only when the search finds
nothing at least as good, e.g. at a time limit.

Search is best-first over the node bound (a heap), branching by halving the
first unfixed integer variable's range, which keeps the tree logarithmic in
the bound widths.  The backend is exact on the small models it is meant for
(the golden-assay ILPs, the parity fixtures); on large instances it honors
``time_limit_s``/``node_limit`` and reports its best incumbent —
``FEASIBLE`` with a solution, ``TIME_LIMIT`` without one — mirroring the
HiGHS status contract.  Models that are *unbounded* (an improving direction
on an infinite box) are not detected as such and may enumerate until a
limit fires; the synthesis formulations never produce them.
"""

from __future__ import annotations

import heapq
import math
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ilp.backends.base import SolverBackend, empty_model_result
from repro.ilp.model import Model
from repro.ilp.status import SolverStatus
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span, tracing_enabled

_INF = math.inf
#: Absolute feasibility tolerance for row activities and bound crossings.
_FEAS_TOL = 1e-6
#: Tolerance for treating an integer bound as attained.
_INT_TOL = 1e-6
#: Objective epsilon under which two incumbents are considered equal.
_OBJ_TOL = 1e-9
#: Minimum improvement for a propagation pass to book a bound as tightened.
#: Shared by the vectorized and scalar kernels — a private literal in either
#: would make them disagree on marginal tightenings and break the
#: differential contract.
_TIGHTEN_TOL = 1e-7
#: Fixpoint cap: propagation passes per node before settling for the
#: current (still valid, just less tight) box.
_MAX_PASSES = 40

#: Environment flag selecting the scalar (pure-Python loop) kernels.
_SCALAR_ENV = "REPRO_BB_SCALAR"

#: One sparse constraint row: ``(terms, row_lo, row_hi)`` with
#: ``terms = [(var_index, coefficient), ...]``.
_Row = Tuple[List[Tuple[int, float]], float, float]


def _build_rows(A, lower, upper) -> List[_Row]:
    """Sparse rows from the dense matrix form of :meth:`Model.to_matrices`."""
    rows: List[_Row] = []
    for r in range(A.shape[0]):
        terms = [(j, float(A[r, j])) for j in range(A.shape[1]) if A[r, j] != 0.0]
        rows.append((terms, float(lower[r]), float(upper[r])))
    return rows


class _RowSystem:
    """Constraint rows in both kernel representations, plus the cut row.

    Holds the dense matrices with the masks the vectorized kernels need
    (sign masks, a division-safe coefficient matrix) and the sparse
    per-term rows the scalar kernels iterate.  The *last* dense row is the
    mutable objective cut ``c . x <= cut_hi``; an infinite ``cut_hi``
    disables it.  Verification always runs against the original rows only,
    so a solution that merely fails to *improve* the incumbent is never
    misreported as infeasible.
    """

    def __init__(self, A, lower, upper, c) -> None:
        A = np.asarray(A, dtype=float)
        self.m = A.shape[0]
        self.A = np.vstack([A, np.asarray(c, dtype=float)[None, :]])
        self.lower = np.append(np.asarray(lower, dtype=float), -_INF)
        self.upper = np.append(np.asarray(upper, dtype=float), _INF)
        self.nz = self.A != 0.0
        self.pos = self.A > 0.0
        self.neg = self.A < 0.0
        self.Apos = np.where(self.pos, self.A, 0.0)
        self.Aneg = np.where(self.neg, self.A, 0.0)
        #: Division-safe coefficients (zeros replaced; masked out anyway).
        self.Asafe = np.where(self.nz, self.A, 1.0)
        #: Sparse view for the scalar kernels (original rows only).
        self.rows = _build_rows(A, lower, upper)
        self.cut_terms: List[Tuple[int, float]] = [
            (j, float(cj)) for j, cj in enumerate(np.asarray(c, dtype=float)) if cj
        ]

    # The cut bound lives in ``upper[-1]``; nothing precomputed depends on it.
    def set_cut(self, cut_hi: float) -> None:
        self.upper[-1] = cut_hi

    @property
    def cut_hi(self) -> float:
        return float(self.upper[-1])

    def scalar_rows(self) -> List[_Row]:
        """Sparse rows including the cut row when it is active."""
        if self.cut_hi < _INF and self.cut_terms:
            return self.rows + [(self.cut_terms, -_INF, self.cut_hi)]
        return self.rows


class BranchAndBoundBackend(SolverBackend):
    """Vectorized best-first branch and bound over the model's matrices."""

    name = "branch-and-bound"

    def __init__(self, max_nodes: int = 500_000) -> None:
        #: Hard safety cap on explored nodes when the options carry no
        #: ``node_limit`` of their own; prevents an un-capped call on a hard
        #: model from spinning forever.
        self.max_nodes = max_nodes
        self._scalar = os.environ.get(_SCALAR_ENV, "") == "1"

    # ----------------------------------------------------------- propagation
    def _propagate(self, rows: "_RowSystem", lo, hi, is_int) -> bool:
        """Tighten ``lo``/``hi`` in place; ``False`` when proven infeasible."""
        if self._scalar:
            return self._propagate_scalar(rows.scalar_rows(), lo, hi, is_int)
        return self._propagate_vec(rows, lo, hi, is_int)

    @staticmethod
    def _propagate_vec(sys: "_RowSystem", lo, hi, is_int) -> bool:
        """One Jacobi-style pass per iteration over the whole row plane.

        Activities are recomputed from the *current* bounds at the top of
        every pass, so — unlike the historical scalar loop, which reused
        row activities computed before its own mid-pass mutations — no
        tightening is ever derived from a stale activity sum.
        """
        A, Apos, Aneg = sys.A, sys.Apos, sys.Aneg
        pos, neg, nz, Asafe = sys.pos, sys.neg, sys.nz, sys.Asafe
        row_lo, row_hi = sys.lower, sys.upper
        has_rhi = np.isfinite(row_hi)[:, None]
        has_rlo = np.isfinite(row_lo)[:, None]
        int_mask = is_int
        for _ in range(_MAX_PASSES):
            lo_inf = np.isinf(lo)
            hi_inf = np.isinf(hi)
            lo_f = np.where(lo_inf, 0.0, lo)
            hi_f = np.where(hi_inf, 0.0, hi)
            # Finite activity parts and infinite-contribution counts, per
            # (row, var) term and summed per row.
            cmin = Apos * lo_f + Aneg * hi_f
            cmax = Apos * hi_f + Aneg * lo_f
            cmin_inf = (pos & lo_inf) | (neg & hi_inf)
            cmax_inf = (pos & hi_inf) | (neg & lo_inf)
            min_fin = cmin.sum(axis=1)
            max_fin = cmax.sum(axis=1)
            min_ninf = cmin_inf.sum(axis=1)
            max_ninf = cmax_inf.sum(axis=1)
            if bool(np.any((min_ninf == 0) & (min_fin > row_hi + _FEAS_TOL))):
                return False
            if bool(np.any((max_ninf == 0) & (max_fin < row_lo - _FEAS_TOL))):
                return False
            # Residual activity of the *other* terms in each row: finite
            # exactly when no other term contributes an infinity.
            rest_min_ok = (min_ninf[:, None] - cmin_inf) == 0
            rest_max_ok = (max_ninf[:, None] - cmax_inf) == 0
            ok_hi = nz & has_rhi & rest_min_ok
            ok_lo = nz & has_rlo & rest_max_ok
            lim_hi = np.where(
                ok_hi, (row_hi[:, None] - (min_fin[:, None] - cmin)) / Asafe, 0.0
            )
            lim_lo = np.where(
                ok_lo, (row_lo[:, None] - (max_fin[:, None] - cmax)) / Asafe, 0.0
            )
            # a > 0: a x_j <= row_hi - rest_min caps hi, row_lo side lifts lo;
            # a < 0 swaps the directions.
            cand_hi = np.minimum(
                np.where(ok_hi & pos, lim_hi, _INF).min(axis=0),
                np.where(ok_lo & neg, lim_lo, _INF).min(axis=0),
            )
            cand_lo = np.maximum(
                np.where(ok_hi & neg, lim_hi, -_INF).max(axis=0),
                np.where(ok_lo & pos, lim_lo, -_INF).max(axis=0),
            )
            cand_hi = np.where(
                int_mask & np.isfinite(cand_hi), np.floor(cand_hi + _INT_TOL), cand_hi
            )
            cand_lo = np.where(
                int_mask & np.isfinite(cand_lo), np.ceil(cand_lo - _INT_TOL), cand_lo
            )
            upd_hi = cand_hi < hi - _TIGHTEN_TOL
            upd_lo = cand_lo > lo + _TIGHTEN_TOL
            if not (bool(upd_hi.any()) or bool(upd_lo.any())):
                return True
            hi[upd_hi] = cand_hi[upd_hi]
            lo[upd_lo] = cand_lo[upd_lo]
            if bool(np.any(lo > hi + _FEAS_TOL)):
                return False
        return True

    @staticmethod
    def _propagate_scalar(rows: Sequence[_Row], lo, hi, is_int) -> bool:
        """Reference per-term loops (``REPRO_BB_SCALAR=1``), Gauss-Seidel.

        Row activities are updated incrementally as bounds tighten mid-pass
        (a ``hi`` move feeds the max-activity sums, a ``lo`` move the min
        sums), so the residual bounds later terms see are never stale —
        both kernels therefore iterate to the same propagation fixpoint,
        the scalar one just visits it row by row.
        """
        for _ in range(_MAX_PASSES):
            changed = False
            for terms, row_lo, row_hi in rows:
                min_fin = max_fin = 0.0
                min_inf = max_inf = 0
                for j, a in terms:
                    cmin = a * lo[j] if a > 0 else a * hi[j]
                    cmax = a * hi[j] if a > 0 else a * lo[j]
                    if cmin == -_INF:
                        min_inf += 1
                    else:
                        min_fin += cmin
                    if cmax == _INF:
                        max_inf += 1
                    else:
                        max_fin += cmax
                if min_inf == 0 and min_fin > row_hi + _FEAS_TOL:
                    return False
                if max_inf == 0 and max_fin < row_lo - _FEAS_TOL:
                    return False
                for j, a in terms:
                    # a * x_j <= row_hi - rest_min (min side reads, max side
                    # absorbs the move: for a > 0 the capped hi only changes
                    # this term's cmax, and symmetrically for a < 0).
                    if row_hi < _INF:
                        cmin = a * lo[j] if a > 0 else a * hi[j]
                        if cmin == -_INF:
                            rest_min = min_fin if min_inf == 1 else -_INF
                        else:
                            rest_min = (min_fin - cmin) if min_inf == 0 else -_INF
                        if rest_min > -_INF:
                            limit = (row_hi - rest_min) / a
                            if a > 0:
                                if is_int[j]:
                                    limit = math.floor(limit + _INT_TOL)
                                if limit < hi[j] - _TIGHTEN_TOL:
                                    old = hi[j]
                                    hi[j] = limit
                                    changed = True
                                    if old == _INF:
                                        max_inf -= 1
                                        max_fin += a * limit
                                    else:
                                        max_fin += a * (limit - old)
                            else:
                                if is_int[j]:
                                    limit = math.ceil(limit - _INT_TOL)
                                if limit > lo[j] + _TIGHTEN_TOL:
                                    old = lo[j]
                                    lo[j] = limit
                                    changed = True
                                    if old == -_INF:
                                        max_inf -= 1
                                        max_fin += a * limit
                                    else:
                                        max_fin += a * (limit - old)
                    # a * x_j >= row_lo - rest_max (max side reads — fresh,
                    # including any move just made above — min side absorbs).
                    if row_lo > -_INF:
                        cmax = a * hi[j] if a > 0 else a * lo[j]
                        if cmax == _INF:
                            rest_max = max_fin if max_inf == 1 else _INF
                        else:
                            rest_max = (max_fin - cmax) if max_inf == 0 else _INF
                        if rest_max < _INF:
                            limit = (row_lo - rest_max) / a
                            if a > 0:
                                if is_int[j]:
                                    limit = math.ceil(limit - _INT_TOL)
                                if limit > lo[j] + _TIGHTEN_TOL:
                                    old = lo[j]
                                    lo[j] = limit
                                    changed = True
                                    if old == -_INF:
                                        min_inf -= 1
                                        min_fin += a * limit
                                    else:
                                        min_fin += a * (limit - old)
                            else:
                                if is_int[j]:
                                    limit = math.floor(limit + _INT_TOL)
                                if limit < hi[j] - _TIGHTEN_TOL:
                                    old = hi[j]
                                    hi[j] = limit
                                    changed = True
                                    if old == _INF:
                                        min_inf -= 1
                                        min_fin += a * limit
                                    else:
                                        min_fin += a * (limit - old)
                    if lo[j] > hi[j] + _FEAS_TOL:
                        return False
            if not changed:
                break
        return True

    # -------------------------------------------------------------- bounding
    def _box_bound(self, c, lo, hi) -> float:
        """Objective lower bound of a box: each term at its cheapest end."""
        if self._scalar:
            return self._box_bound_scalar(c, lo, hi)
        lo_t = np.where(c > 0.0, lo, 0.0)
        hi_t = np.where(c < 0.0, hi, 0.0)
        return float((c * (lo_t + hi_t)).sum())

    @staticmethod
    def _box_bound_scalar(c, lo, hi) -> float:
        total = 0.0
        for j, cj in enumerate(c):
            if cj > 0:
                term = cj * lo[j]
            elif cj < 0:
                term = cj * hi[j]
            else:
                continue
            if term == -_INF:
                return -_INF
            total += term
        return total

    @staticmethod
    def _first_unfixed_int(int_indices: Sequence[int], lo, hi) -> Optional[int]:
        for j in int_indices:
            if hi[j] - lo[j] > _INT_TOL:
                return j
        return None

    def _verified(self, rows: "_RowSystem", x) -> bool:
        """Check a full assignment against every *original* row."""
        if self._scalar:
            return self._verified_scalar(rows.rows, x)
        activity = rows.A[: rows.m] @ np.asarray(x, dtype=float)
        return bool(
            np.all(activity <= rows.upper[: rows.m] + _FEAS_TOL)
            and np.all(activity >= rows.lower[: rows.m] - _FEAS_TOL)
        )

    @staticmethod
    def _verified_scalar(rows: Sequence[_Row], x) -> bool:
        for terms, row_lo, row_hi in rows:
            activity = sum(a * x[j] for j, a in terms)
            if activity > row_hi + _FEAS_TOL or activity < row_lo - _FEAS_TOL:
                return False
        return True

    # ------------------------------------------------------------ incumbents
    def _complete(self, rows, c, lo, hi, is_int) -> Optional[Tuple[float, np.ndarray, bool]]:
        """Greedily assign the continuous variables of an int-fixed box.

        Continuous variables are fixed to their objective-preferred bound in
        decreasing ``|c_j|`` order (deciding the expensive variables first,
        letting propagation push the cheap ones), re-propagating after each
        fix so forced consequences cascade.  Returns the verified
        ``(objective, x, exact)`` or ``None`` when the greedy choices dead
        end; the search never accepts an unverified point.  ``exact`` marks
        a completion that attains the box's objective bound — only then is
        the box provably closed, since without an LP a cheaper point with a
        different continuous trade-off cannot be ruled out.
        """
        lo, hi = np.array(lo, dtype=float), np.array(hi, dtype=float)
        entry_bound = self._box_bound(c, lo, hi)
        order = sorted(
            (j for j in range(len(c)) if not is_int[j]),
            key=lambda j: (-abs(c[j]), j),
        )
        for j in order:
            if hi[j] - lo[j] <= 1e-9:
                continue
            value = lo[j] if c[j] >= 0 else hi[j]
            if value == -_INF or value == _INF:
                other = hi[j] if value == -_INF else lo[j]
                value = other if other not in (-_INF, _INF) else 0.0
                value = min(max(value, lo[j]), hi[j])
            lo[j] = hi[j] = value
            if not self._propagate(rows, lo, hi, is_int):
                return None
        x = np.where(np.asarray(is_int), np.round(lo), lo)
        if not self._verified(rows, x):
            return None
        objective = float(np.dot(c, x))
        exact = objective <= entry_bound + _FEAS_TOL * max(1.0, abs(objective))
        return objective, x, exact

    def _dive(self, rows, c, lo, hi, is_int,
              int_indices) -> Optional[Tuple[float, np.ndarray, bool]]:
        """Greedy rounding: fix integers toward the objective, repair once.

        The "schedule everything as early as possible" shape of the flow's
        models makes this dive a strong incumbent source; a failed dive is
        no loss of correctness (the search proper still explores the node).
        """
        lo, hi = np.array(lo, dtype=float), np.array(hi, dtype=float)
        while True:
            j = self._first_unfixed_int(int_indices, lo, hi)
            if j is None:
                return self._complete(rows, c, lo, hi, is_int)
            candidates = [lo[j], hi[j]] if c[j] >= 0 else [hi[j], lo[j]]
            candidates = [v for v in candidates if v not in (-_INF, _INF)]
            if not candidates:
                candidates = [0.0]
            for value in candidates:
                trial_lo, trial_hi = lo.copy(), hi.copy()
                trial_lo[j] = trial_hi[j] = value
                if self._propagate(rows, trial_lo, trial_hi, is_int):
                    lo, hi = trial_lo, trial_hi
                    break
            else:
                return None

    # ------------------------------------------------------------ warm start
    def _usable_warm_start(self, model: Model, warm, c, lo, hi, is_int,
                           rows: "_RowSystem") -> Optional[Tuple[float, np.ndarray]]:
        """Validate a warm start against the model; ``None`` when unusable.

        The incumbent must name every variable, respect the root bounds and
        integrality, and satisfy every row — an invalid warm start is
        silently ignored (callers hand over heuristic schedules from
        *neighboring* configurations, which legitimately may not fit).
        """
        values = getattr(warm, "values", None)
        if not values:
            return None
        x = np.empty(len(model.variables), dtype=float)
        for var in model.variables:
            if var.name not in values:
                return None
            raw = float(values[var.name])
            if var.kind in ("integer", "binary"):
                rounded = round(raw)
                if abs(raw - rounded) > _FEAS_TOL:
                    return None
                raw = float(rounded)
            x[var.index] = raw
        if bool(np.any(x < lo - _FEAS_TOL)) or bool(np.any(x > hi + _FEAS_TOL)):
            return None
        if not self._verified(rows, x):
            return None
        return float(np.dot(c, x)), x

    # ------------------------------------------------------------------ solve
    def solve(self, model: Model, options=None):
        """Solve ``model`` exactly (small instances) or best-effort at limits."""
        with obs_span("bb:search", category="solver") as bb_span:
            return self._solve_in_span(model, options, bb_span)

    def _solve_in_span(self, model: Model, options, bb_span):
        """The search proper; reports its phase breakdown into ``bb_span``."""
        from repro.ilp.solver import SolveResult, SolverOptions

        options = options or SolverOptions()
        self._scalar = os.environ.get(_SCALAR_ENV, "") == "1"
        trivial = empty_model_result(model)
        if trivial is not None:
            trivial.backend_name = self.name
            return trivial

        start = time.perf_counter()
        # Phase accumulators are only kept (and the timing only paid) when a
        # recorder is active; the untraced hot path calls the kernels direct.
        phase: Optional[Dict[str, float]] = (
            {"propagation_s": 0.0, "verification_s": 0.0}
            if tracing_enabled()
            else None
        )
        propagate = self._propagate
        complete = self._complete
        dive = self._dive
        if phase is not None:
            def _timed(key: str, fn):
                def wrapper(*args):
                    t0 = time.perf_counter()
                    try:
                        return fn(*args)
                    finally:
                        phase[key] += time.perf_counter() - t0
                return wrapper

            propagate = _timed("propagation_s", self._propagate)
            complete = _timed("verification_s", self._complete)
            dive = _timed("verification_s", self._dive)
        deadline = None
        if options.time_limit_s is not None:
            deadline = start + float(options.time_limit_s)
        node_limit = options.node_limit if options.node_limit is not None else self.max_nodes

        c_arr, A, lower, upper, lb, ub, integrality = model.to_matrices()
        n = len(model.variables)
        c = np.asarray(c_arr, dtype=float)
        is_int = np.asarray(integrality, dtype=bool)
        rows = _RowSystem(A, lower, upper, c)
        lo = np.asarray(lb, dtype=float).copy()
        hi = np.asarray(ub, dtype=float).copy()
        # Decide binaries (and other unit-range integers) before wide ranges:
        # in the flow's models the binaries are the assignment/ordering
        # decisions, and once they are fixed propagation collapses the start
        # times — which makes both the greedy dive and the search behave
        # like an as-soon-as-possible scheduler instead of bisecting time.
        int_indices = sorted(
            (j for j in range(n) if is_int[j]),
            key=lambda j: (0 if hi[j] - lo[j] <= 1.0 else 1, j),
        )

        warm = self._usable_warm_start(model, options.warm_start, c, lo, hi, is_int, rows) \
            if options.warm_start is not None else None
        warm_used = warm is not None
        warm_obj: Optional[float] = warm[0] if warm else None

        best: Optional[Tuple[float, np.ndarray]] = None
        nodes = 0
        status: Optional[SolverStatus] = None
        # True while every leaf reached so far was provably closed (an exact
        # completion, or refuted by propagation).  An open leaf downgrades
        # the exhausted-search claim: OPTIMAL → FEASIBLE with an incumbent,
        # INFEASIBLE → TIME_LIMIT (feasibility unknown) without one.
        leaves_closed = True
        # Lowest bound discarded by margin pruning while strictly below the
        # incumbent.  With a mip_rel_gap the widened margin may prune the
        # true optimum, so the final gap is reported against this bound
        # instead of being asserted as zero.
        discarded_below_best: Optional[float] = None

        def refresh_cut() -> None:
            # The cut admits ties (+eps around the reference objective): a
            # strictly-improving point always survives it, and on ties the
            # search can still reach its own incumbent, keeping the returned
            # solution independent of the warm start.  Gap-widened pruning
            # stays in the explicit margin checks below so its discarded
            # bounds remain accounted for.
            cut = _INF
            if best is not None:
                cut = best[0] - _OBJ_TOL
            if warm_obj is not None:
                cut = min(cut, warm_obj + _OBJ_TOL)
            rows.set_cut(cut)

        def prunable(bound: float) -> bool:
            nonlocal discarded_below_best
            if best is not None and bound >= best[0] - self._margin(best[0], options):
                if bound < best[0] - _OBJ_TOL and (
                    discarded_below_best is None or bound < discarded_below_best
                ):
                    discarded_below_best = bound
                return True
            # Boxes that provably cannot beat the warm incumbent (ties keep
            # surviving: the comparison is strict and eps above it).
            return warm_obj is not None and bound > warm_obj + _OBJ_TOL

        refresh_cut()
        if not propagate(rows, lo, hi, is_int):
            # Refuted at the root: with an active warm cut this only proves
            # "nothing at least as good as the warm incumbent", which *is*
            # the optimality proof for the warm point itself.
            if warm:
                best = warm
                status = SolverStatus.OPTIMAL
            else:
                status = SolverStatus.INFEASIBLE
        else:
            dived = dive(rows, c, lo, hi, is_int, int_indices)
            if dived is not None and (warm_obj is None or dived[0] <= warm_obj + _OBJ_TOL):
                best = (dived[0], dived[1])
                refresh_cut()
            heap: List[Tuple[float, int, np.ndarray, np.ndarray]] = [
                (self._box_bound(c, lo, hi), 0, lo, hi)
            ]
            seq = 1
            while heap:
                if deadline is not None and time.perf_counter() > deadline:
                    status = SolverStatus.FEASIBLE if best or warm else SolverStatus.TIME_LIMIT
                    break
                if nodes >= node_limit:
                    status = SolverStatus.FEASIBLE if best or warm else SolverStatus.TIME_LIMIT
                    break
                bound, _, lo_n, hi_n = heapq.heappop(heap)
                if prunable(bound):
                    continue
                nodes += 1
                j = self._first_unfixed_int(int_indices, lo_n, hi_n)
                if j is None:
                    candidate = complete(rows, c, lo_n, hi_n, is_int)
                    if candidate is None:
                        leaves_closed = False
                        continue
                    obj, x, exact = candidate
                    if not exact:
                        leaves_closed = False
                    if (best is None or obj < best[0] - _OBJ_TOL) and (
                        warm_obj is None or obj <= warm_obj + _OBJ_TOL
                    ):
                        best = (obj, x)
                        refresh_cut()
                    continue
                if lo_n[j] == -_INF and hi_n[j] == _INF:
                    # Doubly unbounded: fix zero and keep the two open rays.
                    splits = [(0.0, 0.0), (-_INF, -1.0), (1.0, _INF)]
                elif hi_n[j] == _INF:
                    # Unbounded range: peel the finite endpoint off so every
                    # branch still shrinks the box.
                    splits = [(lo_n[j], lo_n[j]), (lo_n[j] + 1, _INF)]
                elif lo_n[j] == -_INF:
                    splits = [(hi_n[j], hi_n[j]), (-_INF, hi_n[j] - 1)]
                else:
                    mid = int(math.floor((lo_n[j] + hi_n[j]) / 2 + 1e-9))
                    splits = [(lo_n[j], float(mid)), (float(mid) + 1, hi_n[j])]
                for child_lo_j, child_hi_j in splits:
                    child_lo, child_hi = lo_n.copy(), hi_n.copy()
                    child_lo[j], child_hi[j] = child_lo_j, child_hi_j
                    if not propagate(rows, child_lo, child_hi, is_int):
                        continue
                    child_bound = self._box_bound(c, child_lo, child_hi)
                    if prunable(child_bound):
                        continue
                    heapq.heappush(heap, (child_bound, seq, child_lo, child_hi))
                    seq += 1
            else:
                if best is None and warm:
                    # The search closed every box at least as good as the
                    # warm incumbent without beating it: the warm point is
                    # optimal (or, with open leaves, simply the best known).
                    best = warm
                if best is not None:
                    status = SolverStatus.OPTIMAL if leaves_closed else SolverStatus.FEASIBLE
                else:
                    status = SolverStatus.INFEASIBLE if leaves_closed else SolverStatus.TIME_LIMIT
            if status is SolverStatus.FEASIBLE and best is None and warm:
                best = warm

        elapsed = time.perf_counter() - start
        values: Dict[str, float] = {}
        objective_value: Optional[float] = None
        if best is not None and status in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE):
            _, x = best
            for var in model.variables:
                raw = float(x[var.index])
                if var.kind in ("integer", "binary"):
                    raw = float(round(raw))
                var.value = raw
                values[var.name] = raw
            objective_value = float(model.objective_value()) if model.objective else 0.0
        else:
            for var in model.variables:
                var.value = None

        mip_gap: Optional[float] = None
        if status is SolverStatus.OPTIMAL:
            if best is not None and discarded_below_best is not None:
                # Gap-widened pruning may have discarded the true optimum;
                # report the (upper bound on the) remaining gap honestly.
                mip_gap = max(
                    0.0,
                    (best[0] - discarded_below_best) / max(1.0, abs(best[0])),
                )
            else:
                mip_gap = 0.0
        obs_metrics.solver_nodes_counter().inc(nodes)
        if warm_used:
            obs_metrics.warm_start_counter().inc()
        if phase is not None:
            branching_s = max(
                0.0, elapsed - phase["propagation_s"] - phase["verification_s"]
            )
            bb_span.set(
                nodes=nodes,
                warm_start=warm_used,
                propagation_s=round(phase["propagation_s"], 6),
                verification_s=round(phase["verification_s"], 6),
                branching_s=round(branching_s, 6),
            )
        message = f"branch-and-bound: {nodes} nodes explored"
        if warm_used:
            message += ", warm start seeded"
        return SolveResult(
            status=status,
            objective=objective_value,
            values=values,
            wall_time_s=elapsed,
            message=message,
            mip_gap=mip_gap,
            backend_name=self.name,
            warm_start_used=warm_used,
        )

    @staticmethod
    def _margin(incumbent_obj: float, options) -> float:
        """Pruning margin: exactness epsilon, widened by ``mip_rel_gap``."""
        if options.mip_rel_gap:
            return max(_OBJ_TOL, float(options.mip_rel_gap) * abs(incumbent_obj))
        return _OBJ_TOL
