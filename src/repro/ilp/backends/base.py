"""Solver-backend protocol and the string-keyed backend registry.

The paper solves its two ILPs (scheduling, architecture synthesis) with a
commercial solver behind a wall-clock cap; this repository treats the solve
step as a *seam* instead of a hard-wired call.  A :class:`SolverBackend`
turns a :class:`repro.ilp.Model` into a :class:`repro.ilp.SolveResult`; the
registry maps stable string keys (``"highs"``, ``"branch-and-bound"``,
``"portfolio"``) to backend instances so every layer above — engine
configs, :class:`~repro.synthesis.config.FlowConfig`, batch manifests, the
CLI's ``--solver`` flag — can name a backend without importing it.

Backend names participate in the stage cache keys of
:mod:`repro.synthesis.pipeline` (via the ``scheduler_backend`` /
``archsyn_backend`` config fields), so two runs differing only in backend
never alias each other's cached artifacts.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.ilp.status import SolverStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.ilp.model import Model
    from repro.ilp.solver import SolveResult, SolverOptions


class BackendUnavailableError(RuntimeError):
    """A backend was selected whose runtime dependency is not installed.

    Raised by :meth:`SolverBackend.solve` when the backend cannot run at all
    (e.g. :class:`~repro.ilp.backends.highs.HighsBackend` without scipy) —
    as opposed to a solve that ran and failed.  The portfolio backend treats
    it like a skip and moves on to the next backend in its chain.
    """


class SolverBackend(abc.ABC):
    """One way of solving a :class:`repro.ilp.Model`.

    Subclasses set :attr:`name` (the registry key and the value reported in
    :attr:`repro.ilp.SolveResult.backend_name`) and implement :meth:`solve`.
    Backends must be stateless across solves — one shared instance serves
    every thread and every model — and must populate each variable's
    ``.value`` on a feasible outcome, exactly like the historical
    ``solve_model`` contract.
    """

    #: Registry key; also stamped on every result the backend returns.
    name: str = ""

    def is_available(self) -> bool:
        """Whether the backend can run in this environment.

        The default is ``True``; backends with optional dependencies
        override this so the portfolio can skip them instead of crashing.
        """
        return True

    @abc.abstractmethod
    def solve(self, model: "Model", options: Optional["SolverOptions"] = None) -> "SolveResult":
        """Solve ``model`` under ``options`` and return a stamped result.

        Implementations must set ``backend_name`` on the result to
        :attr:`name` and fill variable ``.value`` attributes when the
        outcome is feasible (clearing them to ``None`` otherwise).
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


def empty_model_result(model: "Model") -> Optional["SolveResult"]:
    """The trivial result for a variable-less model, or ``None``.

    Shared by every backend so the empty-model contract ("trivially optimal
    unless a constant constraint is violated") cannot drift between them.
    The caller stamps its own ``backend_name`` on the returned result.
    """
    from repro.ilp.solver import SolveResult

    if model.variables:
        return None
    infeasible = any(con.is_trivially_infeasible() for con in model.constraints)
    status = SolverStatus.INFEASIBLE if infeasible else SolverStatus.OPTIMAL
    return SolveResult(status=status, objective=0.0, wall_time_s=0.0, message="empty model")


# ------------------------------------------------------------------- registry

_REGISTRY: Dict[str, SolverBackend] = {}

#: Registry key of the backend used when options name none: the portfolio,
#: whose primary is HiGHS with the paper's time cap and whose fallback keeps
#: the flow running when the primary returns no usable incumbent.
DEFAULT_BACKEND = "portfolio"


def register_backend(backend: SolverBackend, *, replace: bool = False) -> SolverBackend:
    """Register ``backend`` under its :attr:`~SolverBackend.name`.

    Re-registering an existing name raises unless ``replace=True`` — a
    silent overwrite would re-route every config naming that backend.
    Returns the backend so registration can be used as an expression.
    """
    name = backend.name
    if not name:
        raise ValueError(f"backend {backend!r} has no name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"solver backend {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op when absent).

    Intended for tests and short-lived experimental backends; the built-in
    names are re-registered only on interpreter restart.
    """
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> SolverBackend:
    """The backend registered under ``name``.

    Raises
    ------
    ValueError
        When no backend has that name, listing the known keys so a manifest
        typo is one read away from its fix.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; registered backends: {sorted(_REGISTRY)}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))
