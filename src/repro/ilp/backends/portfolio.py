"""Portfolio backend: a primary solver with automatic fallback.

The paper runs its ILPs under a 30-minute cap and accepts best-effort
incumbents; what it never specifies is what to do when the cap fires with
*no* usable incumbent.  Historically the reproduction aborted
(``SolverLimitError``).  :class:`PortfolioBackend` closes that gap: it runs
a chain of backends in order, returns the first *decisive* outcome, and
records on the result which backend won (``backend_name``) and whether the
primary had to be abandoned (``fallback_used``).

Decisive means OPTIMAL / FEASIBLE (a usable solution) or INFEASIBLE /
UNBOUNDED (a proof — retrying another backend cannot change mathematics).
TIME_LIMIT-without-incumbent and ERROR outcomes fall through to the next
backend; unavailable backends (e.g. HiGHS on a scipy-free interpreter) are
skipped.  Every member runs under the caller's own ``SolverOptions`` — the
paper's time cap applies per attempt, not to the chain as a whole.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ilp.backends.base import (
    BackendUnavailableError,
    SolverBackend,
    empty_model_result,
    get_backend,
)
from repro.ilp.model import Model
from repro.ilp.status import SolverStatus
from repro.obs.logs import get_logger
from repro.obs.trace import span as obs_span

_LOG = get_logger("solver")

#: Statuses that end the chain: a usable solution or a mathematical proof.
_DECISIVE = (
    SolverStatus.OPTIMAL,
    SolverStatus.FEASIBLE,
    SolverStatus.INFEASIBLE,
    SolverStatus.UNBOUNDED,
)


class PortfolioBackend(SolverBackend):
    """Run a chain of registered backends until one is decisive."""

    name = "portfolio"

    def __init__(self, chain: Tuple[str, ...] = ("highs", "branch-and-bound"),
                 name: Optional[str] = None) -> None:
        if len(chain) < 1:
            raise ValueError("a portfolio needs at least one backend name")
        #: Registry keys of the member backends, primary first.  Members are
        #: resolved at solve time, so a portfolio can be registered before
        #: (or independently of) its members.
        self.chain = tuple(chain)
        if name is not None:
            self.name = name

    def is_available(self) -> bool:
        """Available when any member backend is."""
        return any(get_backend(member).is_available() for member in self.chain)

    def solve(self, model: Model, options=None):
        """Try the chain in order; return the first decisive result.

        The returned result keeps the winning member's ``backend_name`` (so
        reports show *which solver actually produced the numbers*, never
        ``"portfolio"``), with ``fallback_used`` set whenever the primary
        was skipped or failed first.  When no member is decisive the last
        attempt's result is returned as-is — the callers' existing
        ``SolverLimitError`` handling then applies unchanged.

        Raises
        ------
        BackendUnavailableError
            When every member of the chain is unavailable.
        """
        from repro.ilp.solver import SolverOptions

        options = options or SolverOptions()
        trivial = empty_model_result(model)
        if trivial is not None:
            trivial.backend_name = self.chain[0]
            return trivial

        attempts = []
        last = None
        last_was_fallback = False
        last_attempt_index = -1
        for member_name in self.chain:
            member = get_backend(member_name)
            if not member.is_available():
                attempts.append(f"{member_name}: unavailable")
                continue
            with obs_span(
                "solver:attempt", category="solver", backend=member_name
            ) as attempt_span:
                result = member.solve(model, options)
                attempt_span.set(status=result.status.value)
            fallback = bool(attempts)
            if fallback:
                _LOG.info(
                    "portfolio fell back to %s after: %s",
                    member_name,
                    "; ".join(attempts),
                )
            if result.status in _DECISIVE:
                result.backend_name = result.backend_name or member.name
                result.fallback_used = fallback or result.fallback_used
                if fallback:
                    result.message = self._annotate(result.message, attempts)
                return result
            attempts.append(f"{member_name}: {result.status.value} ({result.message})")
            last = result
            last_was_fallback = fallback
            last_attempt_index = len(attempts) - 1
        if last is None:
            raise BackendUnavailableError(
                f"no backend of portfolio chain {self.chain} is available"
            )
        # fallback_used reflects whether a *fallback attempt* produced the
        # returned result — skips/failures recorded after it (e.g. a later
        # unavailable member) do not retroactively relabel it, and the
        # annotation lists every attempt except the returned one's own.
        last.fallback_used = last_was_fallback
        others = [a for i, a in enumerate(attempts) if i != last_attempt_index]
        last.message = self._annotate(last.message, others)
        return last

    @staticmethod
    def _annotate(message: str, attempts) -> str:
        """Append the abandoned attempts to a result message, if any."""
        if not attempts:
            return message
        return f"{message} [portfolio fallback after: {'; '.join(attempts)}]"
