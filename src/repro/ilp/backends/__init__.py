"""Pluggable solver backends for the MILP layer.

Three backends ship registered out of the box:

``"highs"``
    The historical scipy/HiGHS branch-and-cut path
    (:class:`~repro.ilp.backends.highs.HighsBackend`); unavailable — but
    harmless — when scipy is not installed.
``"branch-and-bound"``
    A dependency-free pure-Python best-first branch and bound
    (:class:`~repro.ilp.backends.branch_and_bound.BranchAndBoundBackend`),
    exact on the small golden models and always available.
``"portfolio"``
    The default (:data:`~repro.ilp.backends.base.DEFAULT_BACKEND`): HiGHS
    under the paper's time cap with automatic fallback to branch and bound
    whenever the primary is unavailable or returns no usable incumbent
    (:class:`~repro.ilp.backends.portfolio.PortfolioBackend`).

Custom backends register with :func:`register_backend`; any string a
:class:`~repro.synthesis.config.FlowConfig` or ``--solver`` flag names is
resolved through :func:`get_backend` at solve time.
"""

from repro.ilp.backends.base import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    SolverBackend,
    backend_names,
    empty_model_result,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.ilp.backends.branch_and_bound import BranchAndBoundBackend
from repro.ilp.backends.highs import HighsBackend
from repro.ilp.backends.portfolio import PortfolioBackend

register_backend(HighsBackend())
register_backend(BranchAndBoundBackend())
register_backend(PortfolioBackend())

__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "SolverBackend",
    "HighsBackend",
    "BranchAndBoundBackend",
    "PortfolioBackend",
    "backend_names",
    "empty_model_result",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
