"""Mixed-integer linear programming modeling layer.

The paper solves its scheduling and architectural-synthesis formulations with
Gurobi.  This package provides an in-repo substitute: a small, PuLP-like
modeling API (:class:`Variable`, :class:`LinExpr`, :class:`Constraint`,
:class:`Model`) whose instances are solved by a pluggable backend
(:mod:`repro.ilp.backends`): scipy's HiGHS branch and cut when available,
a dependency-free pure-Python branch and bound otherwise, with the default
``portfolio`` backend falling from the first to the second automatically.

The layer intentionally mirrors the modeling idioms used in the paper:

* binary assignment variables (``s_ik``, ``a_ik``, ``epsilon_jr`` ...),
* big-M conditional constraints (constraint (4) and (9) of the paper),
* weighted multi-objective minimization (objective (6) and (12)).

Example
-------
>>> from repro.ilp import Model, Variable
>>> m = Model("toy")
>>> x = m.add_var("x", low=0, up=10, kind="integer")
>>> y = m.add_var("y", low=0, up=10, kind="integer")
>>> m.add_constraint(x + y >= 7, name="cover")
>>> m.set_objective(2 * x + 3 * y)
>>> result = m.solve()
>>> result.status.is_feasible()
True
>>> int(x.value + y.value)
7
"""

from repro.ilp.expression import LinExpr, Variable, lin_sum
from repro.ilp.constraint import Constraint, ConstraintSense
from repro.ilp.model import Model, Objective, ObjectiveSense
from repro.ilp.solver import SolverOptions, SolveResult, WarmStart, solve_model
from repro.ilp.status import SolverLimitError, SolverStatus
from repro.ilp.backends import (
    BackendUnavailableError,
    BranchAndBoundBackend,
    HighsBackend,
    PortfolioBackend,
    SolverBackend,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.ilp.bigm import (
    BigMContext,
    add_implication,
    add_either_or,
    add_max_of,
    add_min_of,
    linearize_and,
    linearize_or,
    linearize_product_binary_continuous,
)

__all__ = [
    "LinExpr",
    "Variable",
    "lin_sum",
    "Constraint",
    "ConstraintSense",
    "Model",
    "Objective",
    "ObjectiveSense",
    "SolverOptions",
    "SolveResult",
    "WarmStart",
    "solve_model",
    "SolverStatus",
    "SolverLimitError",
    "SolverBackend",
    "BackendUnavailableError",
    "HighsBackend",
    "BranchAndBoundBackend",
    "PortfolioBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "BigMContext",
    "add_implication",
    "add_either_or",
    "add_max_of",
    "add_min_of",
    "linearize_and",
    "linearize_or",
    "linearize_product_binary_continuous",
]
