"""Solve entry point: options, result type, and backend dispatch.

Since the backend refactor the actual solving lives in
:mod:`repro.ilp.backends` (``"highs"``, ``"branch-and-bound"``,
``"portfolio"``); this module keeps the stable surface every caller uses —
:class:`SolverOptions`, :class:`SolveResult`, :func:`solve_model` — and
routes each solve to the backend named by ``options.backend`` (defaulting
to the portfolio: HiGHS with automatic branch-and-bound fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ilp.model import Model
from repro.ilp.status import SolverStatus


@dataclass
class WarmStart:
    """A known-good incumbent handed to a backend before its search starts.

    ``values`` maps *every* variable name of the model to a value; partial
    assignments are rejected.  Backends verify the point against the model
    (bounds, integrality, all rows) and silently ignore it when it does not
    fit — callers hand over solutions from *neighboring* configurations
    (e.g. the nearest already-solved exploration candidate), which may
    legitimately be infeasible under the current one.  A valid warm start
    bounds the search from the start; it never changes the reported status
    or objective, only how many nodes the proof takes.  ``objective`` is an
    optional advisory bound (backends recompute it from ``values``);
    ``label`` records provenance for diagnostics, e.g. the neighbor's
    candidate id.
    """

    values: Dict[str, float]
    objective: Optional[float] = None
    label: Optional[str] = None


@dataclass
class SolverOptions:
    """Backend options.

    ``time_limit_s`` mirrors the paper's 30-minute cap on the scheduling and
    synthesis ILPs; when the limit is reached the backend returns its best
    incumbent which is reported as :attr:`SolverStatus.FEASIBLE`.
    ``backend`` names a registered solver backend
    (:func:`repro.ilp.backends.get_backend`); ``None`` selects the default
    portfolio.  ``warm_start`` optionally seeds the search with a known
    incumbent; it is runtime advice, not part of the problem, and must
    never enter cache keys.
    """

    time_limit_s: Optional[float] = None
    mip_rel_gap: Optional[float] = None
    presolve: bool = True
    verbose: bool = False
    node_limit: Optional[int] = None
    backend: Optional[str] = None
    warm_start: Optional[WarmStart] = None


@dataclass
class SolveResult:
    """Outcome of a solve.

    ``backend_name`` records which backend actually produced the outcome
    (for a portfolio solve: the member that won, never ``"portfolio"``);
    ``fallback_used`` is set when that member was not the portfolio's
    primary.  ``warm_start_used`` records whether the winning backend
    actually consumed a valid :class:`WarmStart` (HiGHS via scipy has no
    warm-start API, so it always reports ``False``).  All three travel into
    the stage artifacts and from there into batch/service reports.
    """

    status: SolverStatus
    objective: Optional[float] = None
    values: Dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0
    message: str = ""
    mip_gap: Optional[float] = None
    backend_name: Optional[str] = None
    fallback_used: bool = False
    warm_start_used: bool = False

    def __bool__(self) -> bool:
        return self.status.is_feasible()

    def value(self, name: str) -> float:
        return self.values[name]


def solve_model(model: Model, options: Optional[SolverOptions] = None) -> SolveResult:
    """Solve ``model`` with the backend named in ``options``.

    The function dispatches to the registered backend (``options.backend``,
    or the default portfolio when unset); on a feasible outcome the chosen
    backend fills each variable's ``.value`` attribute, so downstream code
    can read ``var.solution`` directly.
    """
    # Imported here: the backends package imports this module for the
    # options/result types, so the dependency must stay one-directional at
    # import time.
    from repro.ilp.backends import DEFAULT_BACKEND, get_backend

    options = options or SolverOptions()
    backend = get_backend(options.backend or DEFAULT_BACKEND)
    return backend.solve(model, options)
