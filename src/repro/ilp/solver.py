"""HiGHS backend: solve a :class:`repro.ilp.Model` via ``scipy.optimize.milp``."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.ilp.model import Model, ObjectiveSense
from repro.ilp.status import SolverStatus


@dataclass
class SolverOptions:
    """Backend options.

    ``time_limit_s`` mirrors the paper's 30-minute cap on the scheduling and
    synthesis ILPs; when the limit is reached HiGHS returns its best incumbent
    which we report as :attr:`SolverStatus.FEASIBLE`.
    """

    time_limit_s: Optional[float] = None
    mip_rel_gap: Optional[float] = None
    presolve: bool = True
    verbose: bool = False
    node_limit: Optional[int] = None


@dataclass
class SolveResult:
    """Outcome of a solve."""

    status: SolverStatus
    objective: Optional[float] = None
    values: Dict[str, float] = field(default_factory=dict)
    wall_time_s: float = 0.0
    message: str = ""
    mip_gap: Optional[float] = None

    def __bool__(self) -> bool:
        return self.status.is_feasible()

    def value(self, name: str) -> float:
        return self.values[name]


_STATUS_BY_CODE = {
    0: SolverStatus.OPTIMAL,
    1: SolverStatus.TIME_LIMIT,   # iteration or time limit
    2: SolverStatus.INFEASIBLE,
    3: SolverStatus.UNBOUNDED,
    4: SolverStatus.ERROR,
}

#: Tolerance for deciding that a returned value is integral.
_INTEGRALITY_TOL = 1e-4


def _usable_incumbent(x, model: Model) -> bool:
    """True when ``x`` is a finite solution vector respecting integrality.

    scipy's ``milp`` reports status code 1 for *any* iteration or time limit.
    Depending on where HiGHS was interrupted, ``result.x`` may then be absent,
    or hold a fractional/non-finite relaxation instead of a true MILP
    incumbent.  Reporting such a vector as ``FEASIBLE`` would push garbage
    start times and bindings into the scheduler, so anything non-finite or
    non-integral is treated as "no incumbent".
    """
    if x is None:
        return False
    arr = np.asarray(x, dtype=float)
    if arr.size != len(model.variables) or not np.all(np.isfinite(arr)):
        return False
    for var in model.variables:
        if var.kind in ("integer", "binary"):
            value = arr[var.index]
            if abs(value - round(value)) > _INTEGRALITY_TOL:
                return False
    return True


def solve_model(model: Model, options: Optional[SolverOptions] = None) -> SolveResult:
    """Lower ``model`` to matrix form and solve it with HiGHS.

    The function fills each variable's ``.value`` attribute when a feasible
    solution is available, so downstream code can read ``var.solution``
    directly.
    """
    options = options or SolverOptions()
    start = time.perf_counter()

    if not model.variables:
        # A model without variables is either trivially feasible or infeasible.
        infeasible = any(con.is_trivially_infeasible() for con in model.constraints)
        status = SolverStatus.INFEASIBLE if infeasible else SolverStatus.OPTIMAL
        return SolveResult(status=status, objective=0.0, wall_time_s=0.0,
                           message="empty model")

    c, A, lower, upper, lb, ub, integrality = model.to_matrices()

    constraints = []
    if A.shape[0] > 0:
        constraints.append(LinearConstraint(A, lower, upper))

    milp_options = {"disp": options.verbose, "presolve": options.presolve}
    if options.time_limit_s is not None:
        milp_options["time_limit"] = float(options.time_limit_s)
    if options.mip_rel_gap is not None:
        milp_options["mip_rel_gap"] = float(options.mip_rel_gap)
    if options.node_limit is not None:
        milp_options["node_limit"] = int(options.node_limit)

    result = milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options=milp_options,
    )
    elapsed = time.perf_counter() - start

    status = _STATUS_BY_CODE.get(result.status, SolverStatus.ERROR)
    has_solution = _usable_incumbent(result.x, model)
    if status is SolverStatus.TIME_LIMIT:
        # Code 1 covers both "limit hit, incumbent available" (a feasible
        # best-effort result, the paper's 30-minute practice) and "limit hit
        # with no usable incumbent" — the latter must stay non-feasible so
        # callers raise a clear error instead of consuming garbage values
        # (the ILP scheduler/synthesizer abort; there is no automatic
        # fallback to the heuristics).
        status = SolverStatus.FEASIBLE if has_solution else SolverStatus.TIME_LIMIT
    if status is SolverStatus.OPTIMAL and not has_solution:
        status = SolverStatus.ERROR

    values: Dict[str, float] = {}
    objective_value: Optional[float] = None
    if has_solution and status.is_feasible():
        x = np.asarray(result.x, dtype=float)
        for var in model.variables:
            raw = float(x[var.index])
            if var.kind in ("integer", "binary"):
                raw = float(round(raw))
            var.value = raw
            values[var.name] = raw
        objective_value = float(model.objective_value()) if model.objective else 0.0
        if model.objective and model.objective.sense is ObjectiveSense.MAXIMIZE:
            # objective_value already computed from expression; nothing to flip
            pass
    else:
        for var in model.variables:
            var.value = None

    gap = getattr(result, "mip_gap", None)
    return SolveResult(
        status=status,
        objective=objective_value,
        values=values,
        wall_time_s=elapsed,
        message=str(getattr(result, "message", "")),
        mip_gap=float(gap) if gap is not None else None,
    )
