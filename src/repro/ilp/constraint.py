"""Linear constraints.

A :class:`Constraint` stores the normalized form ``expr <sense> 0`` where
``expr`` already contains the (negated) right-hand side.  The solver lowers it
to a row ``lhs_coeffs . x  in  [lower, upper]`` of a
``scipy.optimize.LinearConstraint``.
"""

from __future__ import annotations

import enum
import math
from typing import Optional

from repro.ilp.expression import LinExpr


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A linear constraint ``expression (<=|>=|==) 0``."""

    __slots__ = ("expression", "sense", "name")

    def __init__(self, expression: LinExpr, sense: ConstraintSense, name: Optional[str] = None) -> None:
        if not isinstance(expression, LinExpr):
            raise TypeError("constraint expression must be a LinExpr")
        self.expression = expression
        self.sense = sense
        self.name = name

    # ------------------------------------------------------------------ API
    @property
    def rhs(self) -> float:
        """Right hand side once the constant is moved to the right."""
        return -self.expression.constant

    def bounds(self) -> tuple:
        """Return ``(lower, upper)`` bounds for the row ``coeffs . x``."""
        if self.sense is ConstraintSense.LE:
            return (-math.inf, self.rhs)
        if self.sense is ConstraintSense.GE:
            return (self.rhs, math.inf)
        return (self.rhs, self.rhs)

    def is_trivially_satisfied(self) -> bool:
        """True when the constraint has no variables and already holds."""
        if self.expression.terms:
            return False
        value = self.expression.constant
        if self.sense is ConstraintSense.LE:
            return value <= 1e-9
        if self.sense is ConstraintSense.GE:
            return value >= -1e-9
        return abs(value) <= 1e-9

    def is_trivially_infeasible(self) -> bool:
        """True when the constraint has no variables and can never hold."""
        return not self.expression.terms and not self.is_trivially_satisfied()

    def violation(self, tolerance: float = 1e-6) -> float:
        """Amount by which the current solution violates this constraint."""
        value = self.expression.evaluate()
        if self.sense is ConstraintSense.LE:
            return max(0.0, value - tolerance * 0)
        if self.sense is ConstraintSense.GE:
            return max(0.0, -value)
        return abs(value)

    def is_satisfied(self, tolerance: float = 1e-6) -> bool:
        value = self.expression.evaluate()
        if self.sense is ConstraintSense.LE:
            return value <= tolerance
        if self.sense is ConstraintSense.GE:
            return value >= -tolerance
        return abs(value) <= tolerance

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expression!r} {self.sense.value} 0{label})"
