"""Linear expressions and decision variables.

A :class:`LinExpr` is an affine expression ``sum(coef_i * var_i) + constant``.
Expressions support the natural arithmetic operators so models read like the
mathematical formulation in the paper, e.g. ``alpha * t_end + beta * lin_sum(gaps)``.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterable, Mapping, Optional, Union

Number = Union[int, float]

_VALID_KINDS = ("continuous", "integer", "binary")

_counter = itertools.count()


class Variable:
    """A single decision variable.

    Parameters
    ----------
    name:
        Human readable identifier; must be unique within a model.
    low, up:
        Lower/upper bounds.  ``None`` means unbounded in that direction
        (binaries are always clamped to ``[0, 1]``).
    kind:
        ``"continuous"``, ``"integer"`` or ``"binary"``.
    """

    __slots__ = ("name", "low", "up", "kind", "value", "index", "_uid")

    def __init__(
        self,
        name: str,
        low: Optional[Number] = 0,
        up: Optional[Number] = None,
        kind: str = "continuous",
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValueError(f"unknown variable kind {kind!r}; expected one of {_VALID_KINDS}")
        if kind == "binary":
            low, up = 0, 1
        if low is not None and up is not None and low > up:
            raise ValueError(f"variable {name!r}: lower bound {low} exceeds upper bound {up}")
        self.name = name
        self.low = low
        self.up = up
        self.kind = kind
        #: Filled in by the solver after a successful solve.
        self.value: Optional[float] = None
        #: Column index assigned when the owning model is lowered to matrices.
        self.index: Optional[int] = None
        self._uid = next(_counter)

    # -- hashing / identity -------------------------------------------------
    def __hash__(self) -> int:
        return self._uid

    def __eq__(self, other: object):  # type: ignore[override]
        # ``==`` is reserved for building equality constraints.
        if isinstance(other, (Variable, LinExpr, int, float)):
            return LinExpr.from_term(self).__eq__(other)
        return NotImplemented

    def is_(self, other: "Variable") -> bool:
        """Identity comparison (``==`` is overloaded for constraint building)."""
        return self._uid == other._uid

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other):
        return LinExpr.from_term(self) + other

    __radd__ = __add__

    def __sub__(self, other):
        return LinExpr.from_term(self) - other

    def __rsub__(self, other):
        return (-LinExpr.from_term(self)) + other

    def __mul__(self, other):
        return LinExpr.from_term(self) * other

    __rmul__ = __mul__

    def __neg__(self):
        return LinExpr.from_term(self, coefficient=-1.0)

    def __le__(self, other):
        return LinExpr.from_term(self) <= other

    def __ge__(self, other):
        return LinExpr.from_term(self) >= other

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, kind={self.kind!r}, low={self.low}, up={self.up})"

    # -- solution access ----------------------------------------------------
    @property
    def solution(self) -> float:
        """Value after solve, rounded for integer/binary variables.

        Raises
        ------
        RuntimeError
            If the owning model has not been solved (or was infeasible).
        """
        if self.value is None:
            raise RuntimeError(f"variable {self.name!r} has no value; solve the model first")
        if self.kind in ("integer", "binary"):
            return float(round(self.value))
        return float(self.value)

    def as_bool(self, tolerance: float = 1e-6) -> bool:
        """Interpret a (binary) variable's solution as a boolean."""
        return self.solution > 0.5 + 0.0 * tolerance


class LinExpr:
    """An affine linear expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping[Variable, Number]] = None,
        constant: Number = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = {}
        if terms:
            for var, coef in terms.items():
                if coef:
                    self.terms[var] = float(coef)
        self.constant = float(constant)

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_term(cls, var: Variable, coefficient: Number = 1.0) -> "LinExpr":
        return cls({var: coefficient})

    @classmethod
    def constant_expr(cls, value: Number) -> "LinExpr":
        return cls(constant=value)

    @classmethod
    def coerce(cls, value: Union["LinExpr", Variable, Number]) -> "LinExpr":
        """Convert a variable or number into a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return cls.from_term(value)
        if isinstance(value, (int, float)):
            return cls.constant_expr(value)
        raise TypeError(f"cannot build a linear expression from {type(value).__name__}")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- arithmetic ---------------------------------------------------------
    def _add_in_place(self, other: "LinExpr", sign: float) -> "LinExpr":
        result = self.copy()
        for var, coef in other.terms.items():
            new_coef = result.terms.get(var, 0.0) + sign * coef
            if abs(new_coef) < 1e-15:
                result.terms.pop(var, None)
            else:
                result.terms[var] = new_coef
        result.constant += sign * other.constant
        return result

    def __add__(self, other):
        return self._add_in_place(LinExpr.coerce(other), 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        return self._add_in_place(LinExpr.coerce(other), -1.0)

    def __rsub__(self, other):
        return LinExpr.coerce(other)._add_in_place(self, -1.0)

    def __mul__(self, scalar):
        if isinstance(scalar, (Variable, LinExpr)):
            raise TypeError("products of variables are not linear; use the bigm helpers to linearize")
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return LinExpr({v: c * scalar for v, c in self.terms.items()}, self.constant * scalar)

    __rmul__ = __mul__

    def __neg__(self):
        return self * -1.0

    # -- comparisons build constraints ---------------------------------------
    def __le__(self, other):
        from repro.ilp.constraint import Constraint, ConstraintSense

        return Constraint(self - LinExpr.coerce(other), ConstraintSense.LE)

    def __ge__(self, other):
        from repro.ilp.constraint import Constraint, ConstraintSense

        return Constraint(self - LinExpr.coerce(other), ConstraintSense.GE)

    def __eq__(self, other):  # type: ignore[override]
        from repro.ilp.constraint import Constraint, ConstraintSense

        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint(self - LinExpr.coerce(other), ConstraintSense.EQ)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, values: Optional[Mapping[Variable, Number]] = None) -> float:
        """Evaluate the expression.

        If ``values`` is not given, uses each variable's ``.value`` from the
        last solve.
        """
        total = self.constant
        for var, coef in self.terms.items():
            if values is not None:
                val = float(values[var])
            else:
                if var.value is None:
                    raise RuntimeError(f"variable {var.name!r} has no value; solve the model first")
                val = float(var.value)
            total += coef * val
        return total

    @property
    def variables(self) -> list:
        return list(self.terms.keys())

    def is_constant(self) -> bool:
        return not self.terms

    def __repr__(self) -> str:
        parts = []
        for var, coef in self.terms.items():
            if coef == 1:
                parts.append(var.name)
            elif coef == -1:
                parts.append(f"-{var.name}")
            else:
                parts.append(f"{coef:g}*{var.name}")
        if self.constant or not parts:
            parts.append(f"{self.constant:g}")
        return " + ".join(parts).replace("+ -", "- ")


def lin_sum(items: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers into one :class:`LinExpr`.

    Equivalent to ``sum(items)`` but avoids building a long chain of
    intermediate expressions and accepts an empty iterable.
    """
    terms: Dict[Variable, float] = {}
    constant = 0.0
    for item in items:
        expr = LinExpr.coerce(item)
        constant += expr.constant
        for var, coef in expr.terms.items():
            terms[var] = terms.get(var, 0.0) + coef
    cleaned = {v: c for v, c in terms.items() if abs(c) > 1e-15}
    return LinExpr(cleaned, constant)


def infinity() -> float:
    """Convenience alias used for unbounded variable bounds."""
    return math.inf
