"""MILP model container.

A :class:`Model` owns variables, constraints and an objective, and knows how
to lower itself into the matrix form the solver backends consume
(``scipy.optimize.milp`` for the HiGHS backend, the same arrays for the
pure-Python branch and bound).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ilp.constraint import Constraint, ConstraintSense
from repro.ilp.expression import LinExpr, Number, Variable, lin_sum


class ObjectiveSense(enum.Enum):
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


class Objective:
    """Objective function: an expression plus a direction."""

    __slots__ = ("expression", "sense")

    def __init__(self, expression: LinExpr, sense: ObjectiveSense = ObjectiveSense.MINIMIZE) -> None:
        self.expression = LinExpr.coerce(expression)
        self.sense = sense

    def value(self) -> float:
        """Objective value under the current variable values."""
        return self.expression.evaluate()

    def __repr__(self) -> str:
        return f"Objective({self.sense.value} {self.expression!r})"


class Model:
    """A mixed-integer linear program.

    The model follows the familiar modeling-layer pattern: create variables
    through :meth:`add_var` / :meth:`add_binary` / :meth:`add_integer`, add
    constraints with :meth:`add_constraint`, set the objective and call
    :meth:`solve`.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: Optional[Objective] = None
        self._names: Dict[str, Variable] = {}

    # ------------------------------------------------------------ variables
    def add_var(
        self,
        name: str,
        low: Optional[Number] = 0,
        up: Optional[Number] = None,
        kind: str = "continuous",
    ) -> Variable:
        """Create a variable, register it and return it.

        Variable names must be unique; a duplicate name raises ``ValueError``
        to catch modeling bugs early (silently reusing a variable is a common
        source of wrong-but-feasible formulations).
        """
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r} in model {self.name!r}")
        var = Variable(name, low=low, up=up, kind=kind)
        self.variables.append(var)
        self._names[name] = var
        return var

    def add_binary(self, name: str) -> Variable:
        return self.add_var(name, kind="binary")

    def add_integer(self, name: str, low: Optional[Number] = 0, up: Optional[Number] = None) -> Variable:
        return self.add_var(name, low=low, up=up, kind="integer")

    def add_continuous(self, name: str, low: Optional[Number] = 0, up: Optional[Number] = None) -> Variable:
        return self.add_var(name, low=low, up=up, kind="continuous")

    def get_var(self, name: str) -> Variable:
        return self._names[name]

    def has_var(self, name: str) -> bool:
        return name in self._names

    # ---------------------------------------------------------- constraints
    def add_constraint(self, constraint: Constraint, name: Optional[str] = None) -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "expected a Constraint (build one with <=, >= or == on expressions); "
                f"got {type(constraint).__name__}"
            )
        if name is not None:
            constraint.name = name
        if constraint.is_trivially_infeasible():
            raise ValueError(f"constraint {constraint!r} is trivially infeasible")
        if not constraint.is_trivially_satisfied() or constraint.expression.terms:
            self.constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint], prefix: str = "") -> List[Constraint]:
        added = []
        for idx, con in enumerate(constraints):
            label = f"{prefix}[{idx}]" if prefix else None
            added.append(self.add_constraint(con, name=label))
        return added

    # ------------------------------------------------------------ objective
    def set_objective(
        self,
        expression: Union[LinExpr, Variable, Number],
        sense: ObjectiveSense = ObjectiveSense.MINIMIZE,
    ) -> Objective:
        self.objective = Objective(LinExpr.coerce(expression), sense)
        return self.objective

    def minimize(self, expression: Union[LinExpr, Variable, Number]) -> Objective:
        return self.set_objective(expression, ObjectiveSense.MINIMIZE)

    def maximize(self, expression: Union[LinExpr, Variable, Number]) -> Objective:
        return self.set_objective(expression, ObjectiveSense.MAXIMIZE)

    # ------------------------------------------------------------ statistics
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_binaries(self) -> int:
        return sum(1 for v in self.variables if v.kind == "binary")

    @property
    def num_integers(self) -> int:
        return sum(1 for v in self.variables if v.kind in ("integer", "binary"))

    def summary(self) -> str:
        return (
            f"Model {self.name!r}: {self.num_variables} variables "
            f"({self.num_integers} integer, {self.num_binaries} binary), "
            f"{self.num_constraints} constraints"
        )

    # -------------------------------------------------------------- lowering
    def _assign_indices(self) -> None:
        for idx, var in enumerate(self.variables):
            var.index = idx

    def to_matrices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Lower the model to the arrays expected by ``scipy.optimize.milp``.

        Returns
        -------
        tuple
            ``(c, A, lower, upper, lb, ub, integrality)`` where ``c`` is the
            objective vector (already negated for maximization), ``A`` is the
            dense constraint matrix with row bounds ``lower``/``upper`` and
            ``lb``/``ub``/``integrality`` describe the variables.
        """
        self._assign_indices()
        n = len(self.variables)

        c = np.zeros(n)
        sign = 1.0
        if self.objective is not None:
            if self.objective.sense is ObjectiveSense.MAXIMIZE:
                sign = -1.0
            for var, coef in self.objective.expression.terms.items():
                c[var.index] = sign * coef

        rows = [con for con in self.constraints if con.expression.terms]
        m = len(rows)
        A = np.zeros((m, n))
        lower = np.zeros(m)
        upper = np.zeros(m)
        for r, con in enumerate(rows):
            for var, coef in con.expression.terms.items():
                A[r, var.index] = coef
            lo, hi = con.bounds()
            lower[r] = lo
            upper[r] = hi

        lb = np.array([(-np.inf if v.low is None else float(v.low)) for v in self.variables])
        ub = np.array([(np.inf if v.up is None else float(v.up)) for v in self.variables])
        integrality = np.array([1 if v.kind in ("integer", "binary") else 0 for v in self.variables])
        return c, A, lower, upper, lb, ub, integrality

    # ----------------------------------------------------------------- solve
    def solve(self, options: Optional["SolverOptions"] = None) -> "SolveResult":
        """Solve the model with the backend named in ``options``.

        Defaults to the portfolio backend (HiGHS with branch-and-bound
        fallback).  On a feasible outcome every variable's ``.value`` is
        populated.
        """
        from repro.ilp.solver import solve_model

        return solve_model(self, options)

    # ------------------------------------------------------------ validation
    def check_solution(self, tolerance: float = 1e-5) -> List[Constraint]:
        """Return the constraints violated by the current variable values."""
        return [con for con in self.constraints if not con.is_satisfied(tolerance)]

    def objective_value(self) -> float:
        if self.objective is None:
            return 0.0
        return self.objective.value()

    def __repr__(self) -> str:
        return f"<{self.summary()}>"


def weighted_objective(terms: Sequence[Tuple[float, Union[LinExpr, Variable]]]) -> LinExpr:
    """Build ``sum(weight * expr)`` — the paper's multi-objective pattern.

    Example: ``weighted_objective([(alpha, t_end), (beta, total_gap)])``
    reproduces objective (6).
    """
    return lin_sum(weight * LinExpr.coerce(expr) for weight, expr in terms)
