"""Solver status codes."""

from __future__ import annotations

import enum


class SolverStatus(enum.Enum):
    """Outcome of a MILP solve.

    ``OPTIMAL``      proven optimal solution found.
    ``FEASIBLE``     a feasible (possibly sub-optimal) incumbent was returned,
                     typically because the time or iteration limit was hit —
                     this mirrors the paper's 30-minute best-effort results.
    ``INFEASIBLE``   the model has no feasible solution.
    ``UNBOUNDED``    the objective is unbounded.
    ``TIME_LIMIT``   the iteration or time limit was reached without a usable
                     incumbent; feasibility is unknown, so callers must treat
                     it like ``INFEASIBLE`` (no solution values exist).
    ``ERROR``        the backend failed for another reason.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"

    def is_feasible(self) -> bool:
        """True when a usable solution vector is available."""
        return self in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)

    def is_optimal(self) -> bool:
        return self is SolverStatus.OPTIMAL


class SolverLimitError(RuntimeError):
    """An iteration/time limit expired before any usable incumbent was found.

    Unlike infeasibility, this outcome depends on machine load and the
    configured limit, so an identical re-run may well succeed.  The batch
    engine keys off this type to never memoize such failures.
    """
