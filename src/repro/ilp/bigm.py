"""Big-M and linearization helpers.

The paper relies on the classic big-M device twice:

* constraint (4): two operations bound to the same device must not overlap in
  time — a disjunction "i finishes before j starts OR j finishes before i
  starts" activated only when both are on the same device;
* constraint (9): a node participates in a path only when its indicator
  ``y_{i,r}`` is set.

These helpers encapsulate the linearizations so the scheduling and synthesis
formulations read close to the paper's algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

from repro.ilp.constraint import Constraint
from repro.ilp.expression import LinExpr, Variable, lin_sum
from repro.ilp.model import Model

ExprLike = Union[LinExpr, Variable, int, float]


@dataclass
class BigMContext:
    """Holds the big-M constant used by a formulation.

    Choosing M as small as possible keeps the LP relaxation tight; the
    schedulers compute it from the total serial execution time of the assay.
    """

    model: Model
    big_m: float
    _fresh: int = 0

    def fresh_binary(self, prefix: str) -> Variable:
        """Create an auxiliary binary with a unique generated name."""
        self._fresh += 1
        return self.model.add_binary(f"{prefix}__aux{self._fresh}")


def add_implication(
    model: Model,
    indicator: Variable,
    constraint_if_true: Constraint,
    big_m: float,
    name: str = "",
) -> Constraint:
    """Add ``indicator == 1  =>  constraint_if_true``.

    Works for ``<=`` and ``>=`` constraints by relaxing the inequality with
    ``M * (1 - indicator)``.
    """
    from repro.ilp.constraint import ConstraintSense

    expr = constraint_if_true.expression
    if constraint_if_true.sense is ConstraintSense.LE:
        relaxed = expr - big_m * (1 - LinExpr.from_term(indicator)) <= 0
    elif constraint_if_true.sense is ConstraintSense.GE:
        relaxed = expr + big_m * (1 - LinExpr.from_term(indicator)) >= 0
    else:
        raise ValueError("implications of equality constraints are not supported; split into <= and >=")
    return model.add_constraint(relaxed, name=name or None)


def add_either_or(
    model: Model,
    first: Constraint,
    second: Constraint,
    big_m: float,
    selector_name: str,
    activate: ExprLike = 1,
) -> Variable:
    """Add the disjunction ``first OR second``, optionally gated by ``activate``.

    Creates a binary selector ``z``; ``z == 1`` enforces ``first`` and
    ``z == 0`` enforces ``second`` — but only when ``activate`` evaluates to 1
    (``activate`` may be an expression such as ``s_ik + s_jk - 1`` which is 1
    exactly when both operations share device ``k``).  This is the
    non-overlap linearization used for the paper's constraint (4).

    Returns the selector variable.
    """
    from repro.ilp.constraint import ConstraintSense

    z = model.add_binary(selector_name)
    activate_expr = LinExpr.coerce(activate)
    slack_not_active = big_m * (1 - activate_expr)

    def _relax(con: Constraint, active_when: LinExpr) -> None:
        if con.sense is ConstraintSense.LE:
            model.add_constraint(con.expression - big_m * (1 - active_when) - slack_not_active <= 0)
        elif con.sense is ConstraintSense.GE:
            model.add_constraint(con.expression + big_m * (1 - active_when) + slack_not_active >= 0)
        else:
            raise ValueError("either-or with equality constraints is not supported")

    _relax(first, LinExpr.from_term(z))
    _relax(second, 1 - LinExpr.from_term(z))
    return z


def add_max_of(model: Model, result: Variable, expressions: Sequence[ExprLike]) -> List[Constraint]:
    """Constrain ``result >= expr`` for every expression.

    Together with minimizing ``result`` this models ``result = max(exprs)``,
    exactly how the paper models the assay completion time ``t_E``
    (constraint (5)).
    """
    added = []
    for idx, expr in enumerate(expressions):
        added.append(model.add_constraint(LinExpr.from_term(result) >= LinExpr.coerce(expr)))
    return added


def add_min_of(model: Model, result: Variable, expressions: Sequence[ExprLike]) -> List[Constraint]:
    """Constrain ``result <= expr`` for every expression (use with maximize)."""
    added = []
    for expr in expressions:
        added.append(model.add_constraint(LinExpr.from_term(result) <= LinExpr.coerce(expr)))
    return added


def linearize_and(model: Model, name: str, binaries: Sequence[Variable]) -> Variable:
    """Return a binary equal to the logical AND of ``binaries``.

    Used to express "operations i and j are bound to the same device k"
    (``s_ik AND s_jk``) without quadratic terms.
    """
    z = model.add_binary(name)
    n = len(binaries)
    if n == 0:
        model.add_constraint(LinExpr.from_term(z) == 1)
        return z
    for b in binaries:
        model.add_constraint(LinExpr.from_term(z) <= LinExpr.from_term(b))
    model.add_constraint(
        LinExpr.from_term(z) >= lin_sum(binaries) - (n - 1)
    )
    return z


def linearize_or(model: Model, name: str, binaries: Sequence[Variable]) -> Variable:
    """Return a binary equal to the logical OR of ``binaries``."""
    z = model.add_binary(name)
    if not binaries:
        model.add_constraint(LinExpr.from_term(z) == 0)
        return z
    for b in binaries:
        model.add_constraint(LinExpr.from_term(z) >= LinExpr.from_term(b))
    model.add_constraint(LinExpr.from_term(z) <= lin_sum(binaries))
    return z


def linearize_product_binary_continuous(
    model: Model,
    name: str,
    binary: Variable,
    continuous: Variable,
    upper_bound: float,
) -> Variable:
    """Return a variable equal to ``binary * continuous``.

    ``continuous`` must satisfy ``0 <= continuous <= upper_bound``.
    The standard McCormick envelope for a binary factor is exact.
    """
    w = model.add_continuous(name, low=0, up=upper_bound)
    model.add_constraint(LinExpr.from_term(w) <= upper_bound * LinExpr.from_term(binary))
    model.add_constraint(LinExpr.from_term(w) <= LinExpr.from_term(continuous))
    model.add_constraint(
        LinExpr.from_term(w) >= LinExpr.from_term(continuous) - upper_bound * (1 - LinExpr.from_term(binary))
    )
    return w


def exactly_one(model: Model, binaries: Iterable[Variable], name: str = "") -> Constraint:
    """Add ``sum(binaries) == 1`` — the paper's uniqueness constraints (1), (8)."""
    return model.add_constraint(lin_sum(binaries) == 1, name=name or None)


def at_most_one(model: Model, binaries: Iterable[Variable], name: str = "") -> Constraint:
    """Add ``sum(binaries) <= 1`` — e.g. one device per grid node (8)."""
    return model.add_constraint(lin_sum(binaries) <= 1, name=name or None)
