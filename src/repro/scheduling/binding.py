"""Binding analysis: how operations map onto devices."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.scheduling.schedule import Schedule


@dataclass
class DeviceUsage:
    """Utilization summary of one device under a schedule."""

    device_id: str
    num_operations: int
    busy_time: int
    idle_time: int
    utilization: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.utilization <= 1.0 + 1e-9:
            raise ValueError("utilization must be within [0, 1]")


def device_utilization(schedule: Schedule) -> Dict[str, DeviceUsage]:
    """Per-device busy/idle accounting over the schedule's makespan."""
    makespan = schedule.makespan
    usage: Dict[str, DeviceUsage] = {}
    for device in schedule.library:
        entries = schedule.device_entries(device.device_id)
        busy = sum(e.duration for e in entries)
        idle = max(0, makespan - busy)
        utilization = (busy / makespan) if makespan > 0 else 0.0
        usage[device.device_id] = DeviceUsage(
            device_id=device.device_id,
            num_operations=len(entries),
            busy_time=busy,
            idle_time=idle,
            utilization=min(1.0, utilization),
        )
    return usage


def binding_summary(schedule: Schedule) -> List[str]:
    """Readable per-device binding report (used by examples and reports)."""
    lines: List[str] = []
    for device_id, usage in sorted(device_utilization(schedule).items()):
        ops = ", ".join(e.op_id for e in schedule.device_entries(device_id))
        lines.append(
            f"{device_id}: {usage.num_operations} ops, busy {usage.busy_time}s, "
            f"utilization {usage.utilization:.0%} [{ops}]"
        )
    return lines


def operations_per_device(schedule: Schedule) -> Dict[str, List[str]]:
    """Mapping device id -> ordered list of operation ids bound to it."""
    return {
        device.device_id: [e.op_id for e in schedule.device_entries(device.device_id)]
        for device in schedule.library
    }
