"""Schedule data model and validation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph


class ScheduleValidationError(ValueError):
    """Raised when a schedule violates a hard constraint."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(problems) if problems else "invalid schedule")


@dataclass(frozen=True)
class ScheduledOperation:
    """Assignment of one operation to a device and a time window.

    ``device_id`` is ``None`` for operations that need no device (inputs).
    """

    op_id: str
    device_id: Optional[str]
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"operation {self.op_id!r}: end {self.end} before start {self.start}")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "ScheduledOperation") -> bool:
        return self.start < other.end and other.start < self.end


class Schedule:
    """A complete schedule + binding for a sequencing graph.

    Parameters
    ----------
    graph:
        The assay being scheduled.
    library:
        The devices available; every device operation must be bound to one of
        them.
    transport_time:
        The constant pure device-to-device transport time ``u_c``.
    """

    def __init__(
        self,
        graph: SequencingGraph,
        library: DeviceLibrary,
        transport_time: int = 10,
    ) -> None:
        if transport_time < 0:
            raise ValueError("transport_time must be non-negative")
        self.graph = graph
        self.library = library
        self.transport_time = transport_time
        self._entries: Dict[str, ScheduledOperation] = {}

    # -------------------------------------------------------------- building
    def assign(self, op_id: str, device_id: Optional[str], start: int, end: int) -> ScheduledOperation:
        """Record the (device, start, end) assignment of one operation."""
        if op_id not in self.graph:
            raise KeyError(f"operation {op_id!r} is not in graph {self.graph.name!r}")
        operation = self.graph.operation(op_id)
        if operation.needs_device:
            if device_id is None:
                raise ValueError(f"operation {op_id!r} needs a device")
            if device_id not in self.library:
                raise KeyError(f"unknown device {device_id!r}")
        entry = ScheduledOperation(op_id, device_id, start, end)
        self._entries[op_id] = entry
        return entry

    # --------------------------------------------------------------- queries
    def entry(self, op_id: str) -> ScheduledOperation:
        return self._entries[op_id]

    def __contains__(self, op_id: str) -> bool:
        return op_id in self._entries

    def entries(self) -> List[ScheduledOperation]:
        return sorted(self._entries.values(), key=lambda e: (e.start, e.op_id))

    def device_entries(self, device_id: str) -> List[ScheduledOperation]:
        """Operations bound to a device, ordered by start time."""
        return sorted(
            (e for e in self._entries.values() if e.device_id == device_id),
            key=lambda e: e.start,
        )

    def devices_used(self) -> List[str]:
        return sorted({e.device_id for e in self._entries.values() if e.device_id is not None})

    @property
    def makespan(self) -> int:
        """Latest ending time of any operation — the paper's ``t_E``."""
        return max((e.end for e in self._entries.values()), default=0)

    def is_complete(self) -> bool:
        """True when every device operation of the graph has an entry."""
        return all(op.op_id in self._entries for op in self.graph.device_operations())

    def gap(self, parent_id: str, child_id: str) -> int:
        """Scheduled gap ``t_s(child) - t_e(parent)`` — the paper's ``u_ij``."""
        return self._entries[child_id].start - self._entries[parent_id].end

    def same_device(self, parent_id: str, child_id: str) -> bool:
        return (
            self._entries[parent_id].device_id is not None
            and self._entries[parent_id].device_id == self._entries[child_id].device_id
        )

    def device_busy_between(self, device_id: str, start: int, end: int, exclude: Iterable[str] = ()) -> bool:
        """True when another operation runs on ``device_id`` inside ``(start, end)``."""
        excluded = set(exclude)
        for entry in self.device_entries(device_id):
            if entry.op_id in excluded:
                continue
            if entry.start < end and start < entry.end:
                return True
        return False

    # ------------------------------------------------------------ validation
    def validate(self) -> List[str]:
        """Check all hard constraints; return a list of violations (empty = valid).

        Checks: completeness, device capability, duration, precedence with
        transport time, and device exclusivity (the paper's constraints
        (1)–(4)).
        """
        problems: List[str] = []

        for op in self.graph.device_operations():
            if op.op_id not in self._entries:
                problems.append(f"operation {op.op_id!r} is not scheduled")
        if problems:
            return problems

        for op in self.graph.device_operations():
            entry = self._entries[op.op_id]
            device = self.library.device(entry.device_id)
            if not device.supports(op.kind):
                problems.append(
                    f"operation {op.op_id!r} ({op.kind.value}) bound to incompatible device {device.device_id!r}"
                )
            required = device.execution_time(op.duration)
            if entry.duration < required:
                problems.append(
                    f"operation {op.op_id!r}: scheduled duration {entry.duration} < required {required}"
                )
            if entry.start < 0:
                problems.append(f"operation {op.op_id!r} starts before time 0")

        for parent_id, child_id in self.graph.edges():
            parent_op = self.graph.operation(parent_id)
            child_op = self.graph.operation(child_id)
            if not child_op.needs_device:
                continue
            if not parent_op.needs_device:
                # Inputs are available from time 0.
                continue
            if parent_id not in self._entries or child_id not in self._entries:
                continue
            gap = self.gap(parent_id, child_id)
            minimum = 0 if self.same_device(parent_id, child_id) else self.transport_time
            if gap < minimum:
                problems.append(
                    f"precedence violated on edge {parent_id!r}->{child_id!r}: gap {gap} < minimum {minimum}"
                )

        for device_id in self.devices_used():
            timeline = self.device_entries(device_id)
            for first, second in zip(timeline, timeline[1:]):
                if first.overlaps(second):
                    problems.append(
                        f"device {device_id!r}: operations {first.op_id!r} and {second.op_id!r} overlap "
                        f"([{first.start},{first.end}) vs [{second.start},{second.end}))"
                    )
        return problems

    def assert_valid(self) -> None:
        problems = self.validate()
        if problems:
            raise ScheduleValidationError(problems)

    # ------------------------------------------------------------- reporting
    def as_table(self) -> List[Tuple[str, str, int, int]]:
        """(op, device, start, end) rows sorted by start time, for reports."""
        return [(e.op_id, e.device_id or "-", e.start, e.end) for e in self.entries()]

    def __repr__(self) -> str:
        return (
            f"Schedule({self.graph.name!r}, {len(self._entries)} ops, "
            f"makespan={self.makespan})"
        )
