"""Storage-aware list scheduling heuristic.

The exact ILP of Section 3.1 does not scale to the largest assays within a
practical time budget (the paper caps Gurobi at 30 minutes and reports
best-effort results).  This module provides the deterministic heuristic used
for those instances: classic priority list scheduling, extended with the
paper's insight that the *order* in which ready operations are dispatched
determines how long intermediate products sit in storage.

Priority rules
--------------
* primary: critical-path length (longest downstream work first) — minimizes
  the makespan, as in standard list scheduling;
* storage-aware tie-break: among equally critical ready operations, prefer
  the one whose parents finished most recently, so fresh intermediate
  products are consumed quickly instead of lingering in storage (this is the
  o5-before-o3 choice in the paper's Fig. 2(c)).

Device choice: the compatible device that allows the earliest start; ties are
broken toward the device already holding one of the operation's parent
products (avoiding a transport altogether).

For callers that schedule the *same graph* many times — the exploration
engine's cheap triage probes, the ILP scheduler's warm-start seeding — a
:class:`ListSchedulerWorkspace` caches the graph-derived structures
(priorities, predecessor tuples, the operation sets) and reuses the per-run
containers across calls, so repeated probes pay only for the dispatch loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph
from repro.scheduling.schedule import Schedule


@dataclass
class ListSchedulerConfig:
    """Knobs of the heuristic scheduler.

    ``storage_aware`` disables the freshness tie-break when False, yielding
    the execution-time-only behaviour used as the Fig. 9 baseline.
    """

    transport_time: int = 10
    storage_aware: bool = True


class ListSchedulerWorkspace:
    """Reusable state for repeated list-scheduling runs over one graph.

    Everything the heuristic derives from the graph alone — critical-path
    priorities, predecessor tuples, the input/device operation id sets — is
    identical no matter which configuration or device library a probe runs
    under, so it is computed once per graph and kept.  The per-run
    containers (finish times, device horizons, the remaining pool, the
    option scratch list) are reused via ``clear()`` instead of reallocated,
    which is what makes a triage sweep's probes allocation-light.

    Priorities depend only on operation durations, never on the config, so
    one workspace safely serves any mix of configs over its graph; binding
    a *different* graph recomputes everything.  Not safe for concurrent use
    — give each worker its own workspace.
    """

    __slots__ = (
        "graph", "priorities", "predecessors", "input_ops", "device_ops",
        "finished", "device_free", "remaining", "options", "kind_devices",
    )

    def __init__(self) -> None:
        self.graph: Optional[SequencingGraph] = None
        self.priorities: Dict[str, int] = {}
        self.predecessors: Dict[str, Tuple[str, ...]] = {}
        self.input_ops: Tuple[str, ...] = ()
        self.device_ops: Tuple[str, ...] = ()
        # Per-run containers, cleared (not reallocated) on every run.
        self.finished: Dict[str, Tuple[int, Optional[str]]] = {}
        self.device_free: Dict[str, int] = {}
        self.remaining: set = set()
        self.options: List[Tuple[int, int, int, int, str, str]] = []
        self.kind_devices: Dict[object, list] = {}

    def bind(self, graph: SequencingGraph, priorities: Dict[str, int]) -> None:
        """Cache ``graph``'s derived structures (no-op when already bound)."""
        if graph is self.graph:
            return
        self.graph = graph
        self.priorities = priorities
        self.predecessors = {
            op.op_id: tuple(graph.predecessors(op.op_id)) for op in graph.operations()
        }
        self.input_ops = tuple(op.op_id for op in graph.input_operations())
        self.device_ops = tuple(op.op_id for op in graph.device_operations())

    def reset_run(self) -> None:
        """Prepare the reusable containers for one scheduling run."""
        self.finished.clear()
        self.device_free.clear()
        self.remaining.clear()
        self.remaining.update(self.device_ops)
        # The device set and its kinds follow the *library*, which can change
        # between runs of one workspace (a num_mixers axis), so the memo only
        # lives for a single run.
        self.kind_devices.clear()


class ListScheduler:
    """Deterministic storage-aware list scheduler."""

    def __init__(self, library: DeviceLibrary, config: Optional[ListSchedulerConfig] = None) -> None:
        if len(library) == 0:
            raise ValueError("the device library is empty")
        self.library = library
        self.config = config or ListSchedulerConfig()

    # ------------------------------------------------------------------ API
    def schedule(
        self,
        graph: SequencingGraph,
        workspace: Optional[ListSchedulerWorkspace] = None,
    ) -> Schedule:
        """Build and validate a schedule for ``graph``.

        ``workspace`` (optional) reuses graph-derived structures and per-run
        containers across repeated calls; the returned schedule is identical
        with or without one.
        """
        cfg = self.config
        schedule = Schedule(graph, self.library, cfg.transport_time)

        if workspace is None:
            workspace = ListSchedulerWorkspace()
        if workspace.graph is not graph:
            workspace.bind(graph, self._downstream_priority(graph))
        workspace.reset_run()

        priorities = workspace.priorities
        predecessors = workspace.predecessors
        device_free = workspace.device_free
        finished = workspace.finished
        remaining = workspace.remaining
        for device in self.library:
            device_free[device.device_id] = 0

        for op_id in workspace.input_ops:
            op = graph.operation(op_id)
            schedule.assign(op_id, None, 0, op.duration)
            finished[op_id] = (op.duration, None)

        while remaining:
            ready = [
                op_id
                for op_id in remaining
                if all(parent in finished for parent in predecessors[op_id])
            ]
            if not ready:
                raise RuntimeError(
                    f"no ready operation among {sorted(remaining)}; the graph may be malformed"
                )
            op_id, device_id, start = self._pick_assignment(
                graph, ready, workspace
            )
            op = graph.operation(op_id)
            device = self.library.device(device_id)
            duration = device.execution_time(op.duration)
            end = start + duration

            schedule.assign(op_id, device_id, start, end)
            device_free[device_id] = end
            finished[op_id] = (end, device_id)
            remaining.remove(op_id)

        schedule.assert_valid()
        return schedule

    # ------------------------------------------------------------ internals
    def _downstream_priority(self, graph: SequencingGraph) -> Dict[str, int]:
        """Length of the longest path from each operation to any sink."""
        priority: Dict[str, int] = {}
        for op_id in reversed(graph.topological_order()):
            op = graph.operation(op_id)
            children = graph.successors(op_id)
            downstream = max((priority[c] for c in children), default=0)
            priority[op_id] = op.duration + downstream
        return priority

    def _pick_assignment(
        self,
        graph: SequencingGraph,
        ready: List[str],
        workspace: ListSchedulerWorkspace,
    ) -> Tuple[str, str, int]:
        """Pick the next (operation, device, start time) to dispatch.

        The selection is global over all (ready op, compatible device) pairs:
        the pair with the earliest possible start wins, which keeps every
        device busy and the makespan short (completion time has priority in
        the paper's objective).  Ties are broken by the longest downstream
        work (critical path), then — when storage awareness is on — by
        freshness of the parents' products and by locality (running on the
        parent's device avoids a transport and therefore a potential cache).
        """
        uc = self.config.transport_time
        priorities = workspace.priorities
        predecessors = workspace.predecessors
        finished = workspace.finished
        device_free = workspace.device_free
        kind_devices = workspace.kind_devices

        def freshness(op_id: str) -> int:
            parent_ends = [
                finished[p][0]
                for p in predecessors[op_id]
                if finished[p][1] is not None
            ]
            return max(parent_ends, default=0)

        options = workspace.options
        options.clear()
        for op_id in ready:
            op = graph.operation(op_id)
            candidates = kind_devices.get(op.kind)
            if candidates is None:
                candidates = kind_devices[op.kind] = self.library.devices_for(op.kind)
            if not candidates:
                raise RuntimeError(f"no device can execute operation {op_id!r} ({op.kind.value})")
            parent_devices = {
                finished[p][1] for p in predecessors[op_id] if finished[p][1] is not None
            }
            for device in candidates:
                earliest = device_free[device.device_id]
                for parent in predecessors[op_id]:
                    parent_end, parent_device = finished[parent]
                    hop = 0 if (parent_device is None or parent_device == device.device_id) else uc
                    earliest = max(earliest, parent_end + hop)
                locality = 0 if device.device_id in parent_devices else 1
                options.append(
                    (earliest, locality, -priorities[op_id], -freshness(op_id), op_id, device.device_id)
                )

        if not self.config.storage_aware:
            best = min(options, key=lambda o: (o[0], o[2], o[4], o[5]))
            return (best[4], best[5], best[0])

        # Storage-aware selection: losing up to one transport time of start
        # slack is acceptable if it lets the operation run on the device that
        # already holds its parent's product — no transport, no cached sample
        # (the Fig. 2(c) trade-off: slightly longer schedules, far less
        # storage and therefore fewer segments and valves).
        t_star = min(option[0] for option in options)
        window = [o for o in options if o[0] <= t_star + uc]
        best = min(window, key=lambda o: (o[1], o[0], o[2], o[3], o[4], o[5]))
        return (best[4], best[5], best[0])
