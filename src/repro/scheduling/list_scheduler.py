"""Storage-aware list scheduling heuristic.

The exact ILP of Section 3.1 does not scale to the largest assays within a
practical time budget (the paper caps Gurobi at 30 minutes and reports
best-effort results).  This module provides the deterministic heuristic used
for those instances: classic priority list scheduling, extended with the
paper's insight that the *order* in which ready operations are dispatched
determines how long intermediate products sit in storage.

Priority rules
--------------
* primary: critical-path length (longest downstream work first) — minimizes
  the makespan, as in standard list scheduling;
* storage-aware tie-break: among equally critical ready operations, prefer
  the one whose parents finished most recently, so fresh intermediate
  products are consumed quickly instead of lingering in storage (this is the
  o5-before-o3 choice in the paper's Fig. 2(c)).

Device choice: the compatible device that allows the earliest start; ties are
broken toward the device already holding one of the operation's parent
products (avoiding a transport altogether).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph
from repro.scheduling.schedule import Schedule


@dataclass
class ListSchedulerConfig:
    """Knobs of the heuristic scheduler.

    ``storage_aware`` disables the freshness tie-break when False, yielding
    the execution-time-only behaviour used as the Fig. 9 baseline.
    """

    transport_time: int = 10
    storage_aware: bool = True


class ListScheduler:
    """Deterministic storage-aware list scheduler."""

    def __init__(self, library: DeviceLibrary, config: Optional[ListSchedulerConfig] = None) -> None:
        if len(library) == 0:
            raise ValueError("the device library is empty")
        self.library = library
        self.config = config or ListSchedulerConfig()

    # ------------------------------------------------------------------ API
    def schedule(self, graph: SequencingGraph) -> Schedule:
        """Build and validate a schedule for ``graph``."""
        cfg = self.config
        schedule = Schedule(graph, self.library, cfg.transport_time)

        priorities = self._downstream_priority(graph)
        device_free: Dict[str, int] = {d.device_id: 0 for d in self.library}

        finished: Dict[str, Tuple[int, Optional[str]]] = {}
        for op in graph.input_operations():
            schedule.assign(op.op_id, None, 0, op.duration)
            finished[op.op_id] = (op.duration, None)

        remaining = {op.op_id for op in graph.device_operations()}
        while remaining:
            ready = [
                op_id
                for op_id in remaining
                if all(parent in finished for parent in graph.predecessors(op_id))
            ]
            if not ready:
                raise RuntimeError(
                    f"no ready operation among {sorted(remaining)}; the graph may be malformed"
                )
            op_id, device_id, start = self._pick_assignment(graph, ready, priorities, finished, device_free)
            op = graph.operation(op_id)
            device = self.library.device(device_id)
            duration = device.execution_time(op.duration)
            end = start + duration

            schedule.assign(op_id, device_id, start, end)
            device_free[device_id] = end
            finished[op_id] = (end, device_id)
            remaining.remove(op_id)

        schedule.assert_valid()
        return schedule

    # ------------------------------------------------------------ internals
    def _downstream_priority(self, graph: SequencingGraph) -> Dict[str, int]:
        """Length of the longest path from each operation to any sink."""
        priority: Dict[str, int] = {}
        for op_id in reversed(graph.topological_order()):
            op = graph.operation(op_id)
            children = graph.successors(op_id)
            downstream = max((priority[c] for c in children), default=0)
            priority[op_id] = op.duration + downstream
        return priority

    def _pick_assignment(
        self,
        graph: SequencingGraph,
        ready: List[str],
        priorities: Dict[str, int],
        finished: Dict[str, Tuple[int, Optional[str]]],
        device_free: Dict[str, int],
    ) -> Tuple[str, str, int]:
        """Pick the next (operation, device, start time) to dispatch.

        The selection is global over all (ready op, compatible device) pairs:
        the pair with the earliest possible start wins, which keeps every
        device busy and the makespan short (completion time has priority in
        the paper's objective).  Ties are broken by the longest downstream
        work (critical path), then — when storage awareness is on — by
        freshness of the parents' products and by locality (running on the
        parent's device avoids a transport and therefore a potential cache).
        """
        uc = self.config.transport_time

        def freshness(op_id: str) -> int:
            parent_ends = [
                finished[p][0]
                for p in graph.predecessors(op_id)
                if finished[p][1] is not None
            ]
            return max(parent_ends, default=0)

        options: List[Tuple[int, int, int, int, str, str]] = []
        for op_id in ready:
            op = graph.operation(op_id)
            candidates = self.library.devices_for(op.kind)
            if not candidates:
                raise RuntimeError(f"no device can execute operation {op_id!r} ({op.kind.value})")
            parent_devices = {
                finished[p][1] for p in graph.predecessors(op_id) if finished[p][1] is not None
            }
            for device in candidates:
                earliest = device_free[device.device_id]
                for parent in graph.predecessors(op_id):
                    parent_end, parent_device = finished[parent]
                    hop = 0 if (parent_device is None or parent_device == device.device_id) else uc
                    earliest = max(earliest, parent_end + hop)
                locality = 0 if device.device_id in parent_devices else 1
                options.append(
                    (earliest, locality, -priorities[op_id], -freshness(op_id), op_id, device.device_id)
                )

        if not self.config.storage_aware:
            best = min(options, key=lambda o: (o[0], o[2], o[4], o[5]))
            return (best[4], best[5], best[0])

        # Storage-aware selection: losing up to one transport time of start
        # slack is acceptable if it lets the operation run on the device that
        # already holds its parent's product — no transport, no cached sample
        # (the Fig. 2(c) trade-off: slightly longer schedules, far less
        # storage and therefore fewer segments and valves).
        t_star = min(option[0] for option in options)
        window = [o for o in options if o[0] <= t_star + uc]
        best = min(window, key=lambda o: (o[1], o[0], o[2], o[3], o[4], o[5]))
        return (best[4], best[5], best[0])
