"""Scheduling and binding with storage minimization (paper Section 3.1).

Given a sequencing graph and a device library, the scheduler assigns every
device operation a device (*binding*) and a start time (*scheduling*) such
that precedence, device-exclusivity and transport-time constraints hold.  The
paper's key point is that the *choice* of schedule determines how many
intermediate fluid samples must be stored and for how long, so the objective
co-minimizes the assay completion time ``t_E`` and the total cross-device
gap time (objective (6)).

Two engines are provided:

* :class:`~repro.scheduling.ilp_scheduler.IlpScheduler` — the exact ILP of
  Table 1 / constraints (1)–(7), solved with the in-repo HiGHS backend;
* :class:`~repro.scheduling.list_scheduler.ListScheduler` — a deterministic
  storage-aware list-scheduling heuristic for instances beyond the ILP's
  practical size (mirroring the paper's 30-minute best-effort cap).

The execution-time-only baseline of Fig. 9 is in
:mod:`repro.scheduling.baseline`.
"""

from repro.scheduling.schedule import Schedule, ScheduledOperation, ScheduleValidationError
from repro.scheduling.transport import (
    StorageRequirement,
    TransportTask,
    extract_transport_tasks,
    storage_requirements,
    peak_storage_demand,
)
from repro.scheduling.ilp_scheduler import IlpScheduler, IlpSchedulerConfig
from repro.scheduling.list_scheduler import ListScheduler, ListSchedulerConfig
from repro.scheduling.baseline import ExecutionTimeOnlyScheduler
from repro.scheduling.binding import binding_summary, device_utilization, DeviceUsage

__all__ = [
    "Schedule",
    "ScheduledOperation",
    "ScheduleValidationError",
    "StorageRequirement",
    "TransportTask",
    "extract_transport_tasks",
    "storage_requirements",
    "peak_storage_demand",
    "IlpScheduler",
    "IlpSchedulerConfig",
    "ListScheduler",
    "ListSchedulerConfig",
    "ExecutionTimeOnlyScheduler",
    "binding_summary",
    "device_utilization",
    "DeviceUsage",
]
