"""Transport tasks and storage requirements derived from a schedule.

After scheduling, every cross-device sequencing-graph edge becomes a
*transportation task*: the parent's product must travel from the parent's
device to the child's device inside the scheduled gap.  When the gap exceeds
the pure transport time ``u_c``, the fluid must be cached somewhere for the
remainder — in a channel segment in the proposed architecture, or in the
dedicated storage unit in the baseline.

Same-device edges normally need no transport (the product stays inside the
device), *except* when another operation uses the device in between — then
the product must be evicted, cached and brought back.  The paper's ILP
objective ignores this case (it only sums cross-device gaps) but the
architectural synthesis must still realize these round trips, so the task
extraction here handles both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.devices.channel import FluidSample
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class TransportTask:
    """One fluid movement required by the schedule.

    Attributes
    ----------
    task_id:
        Unique id, ``"<parent>-><child>"``.
    sample:
        The fluid sample being moved.
    source_device / target_device:
        Devices of the parent and child operations (equal for evictions).
    depart_time:
        When the sample leaves the source device (= parent end time).
    arrive_time:
        When the sample must be inside the target device (= child start time).
    needs_storage:
        True when the sample must be cached along the way.
    storage_duration:
        Time the sample spends cached (0 when ``needs_storage`` is False).
    """

    task_id: str
    sample: FluidSample
    source_device: str
    target_device: str
    depart_time: int
    arrive_time: int
    needs_storage: bool
    storage_duration: int

    def __post_init__(self) -> None:
        if self.arrive_time < self.depart_time:
            raise ValueError(f"task {self.task_id}: arrives before it departs")
        if self.storage_duration < 0:
            raise ValueError(f"task {self.task_id}: negative storage duration")

    @property
    def window(self) -> Tuple[int, int]:
        return (self.depart_time, self.arrive_time)

    @property
    def duration(self) -> int:
        return self.arrive_time - self.depart_time

    @property
    def is_eviction(self) -> bool:
        """True for same-device round trips (store-out / fetch-back)."""
        return self.source_device == self.target_device


@dataclass(frozen=True)
class StorageRequirement:
    """A fluid sample that must be cached during ``[start, end)``."""

    sample: FluidSample
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start

    def overlaps(self, other: "StorageRequirement") -> bool:
        return self.start < other.end and other.start < self.end


def extract_transport_tasks(schedule: Schedule) -> List[TransportTask]:
    """Derive all transportation tasks implied by a schedule.

    Rules (``u_c`` = ``schedule.transport_time``):

    * cross-device edge: one task with window ``[parent.end, child.start]``;
      storage is needed when the window exceeds ``u_c`` and lasts
      ``gap - u_c``;
    * same-device edge with an intervening operation on that device: an
      eviction task (source == target); the cache time is the part of the gap
      not spent on the two transports;
    * same-device edge without intervening work: no task (the product waits
      inside the device).
    """
    uc = schedule.transport_time
    tasks: List[TransportTask] = []
    for parent_id, child_id in schedule.graph.device_edges():
        if parent_id not in schedule or child_id not in schedule:
            continue
        parent = schedule.entry(parent_id)
        child = schedule.entry(child_id)
        gap = child.start - parent.end
        sample = FluidSample(
            sample_id=f"{parent_id}->{child_id}",
            producer=parent_id,
            consumer=child_id,
        )
        if parent.device_id != child.device_id:
            needs_storage = gap > uc
            storage_duration = max(0, gap - uc)
            tasks.append(
                TransportTask(
                    task_id=f"{parent_id}->{child_id}",
                    sample=sample,
                    source_device=parent.device_id,
                    target_device=child.device_id,
                    depart_time=parent.end,
                    arrive_time=child.start,
                    needs_storage=needs_storage,
                    storage_duration=storage_duration,
                )
            )
        else:
            device_id = parent.device_id
            if gap > 0 and schedule.device_busy_between(
                device_id, parent.end, child.start, exclude=(parent_id, child_id)
            ):
                transports = min(gap, 2 * uc)
                tasks.append(
                    TransportTask(
                        task_id=f"{parent_id}->{child_id}",
                        sample=sample,
                        source_device=device_id,
                        target_device=device_id,
                        depart_time=parent.end,
                        arrive_time=child.start,
                        needs_storage=True,
                        storage_duration=max(0, gap - transports),
                    )
                )
    return sorted(tasks, key=lambda t: (t.depart_time, t.task_id))


def storage_requirements(schedule: Schedule) -> List[StorageRequirement]:
    """Storage intervals implied by the schedule (one per caching task).

    The cache window starts once the sample has been transported away from
    its producer (``depart + u_c``) and ends when it must start moving toward
    its consumer (``arrive - u_c``), clamped to a non-empty sensible window
    for short gaps.
    """
    uc = schedule.transport_time
    requirements: List[StorageRequirement] = []
    for task in extract_transport_tasks(schedule):
        if not task.needs_storage:
            continue
        start = task.depart_time + min(uc, task.duration // 2)
        end = max(start, task.arrive_time - min(uc, task.duration // 2))
        if end == start:
            end = start + 1  # zero-length cache still occupies a cell/segment briefly
        requirements.append(StorageRequirement(sample=task.sample, start=start, end=end))
    return requirements


def peak_storage_demand(schedule: Schedule) -> int:
    """Maximum number of samples stored simultaneously.

    This is the capacity a dedicated storage unit would need for this
    schedule (the "required storage capacity" of the paper's Fig. 2), and the
    number of channel segments that must be simultaneously devoted to caching
    in the distributed architecture.
    """
    requirements = storage_requirements(schedule)
    events: List[Tuple[int, int]] = []
    for req in requirements:
        events.append((req.start, 1))
        events.append((req.end, -1))
    events.sort(key=lambda item: (item[0], item[1]))
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def total_storage_time(schedule: Schedule) -> int:
    """Sum of all cache durations — the quantity the paper's objective (6) minimizes."""
    return sum(req.duration for req in storage_requirements(schedule))


def transport_count(schedule: Schedule) -> int:
    """Number of transportation tasks (store + fetch movements count once each)."""
    return len(extract_transport_tasks(schedule))


def cross_device_gap_sum(schedule: Schedule) -> int:
    """The paper's objective term ``sum u_ij`` over cross-device edges."""
    total = 0
    for parent_id, child_id in schedule.graph.device_edges():
        if parent_id in schedule and child_id in schedule and not schedule.same_device(parent_id, child_id):
            total += schedule.gap(parent_id, child_id)
    return total
