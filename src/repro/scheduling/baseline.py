"""Execution-time-only scheduling baseline (Fig. 9).

The paper evaluates its storage-aware objective by comparing against the same
flow with the storage term removed — i.e. minimizing only the assay
completion time.  This module wraps the two scheduling engines with that
setting so experiments can call one class for either engine.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph
from repro.scheduling.ilp_scheduler import IlpScheduler, IlpSchedulerConfig
from repro.scheduling.list_scheduler import ListScheduler, ListSchedulerConfig
from repro.scheduling.schedule import Schedule


class ExecutionTimeOnlyScheduler:
    """Scheduler that ignores storage when optimizing (the Fig. 9 baseline).

    Parameters
    ----------
    library:
        Devices available for binding.
    engine:
        ``"ilp"`` for the exact formulation with ``beta = 0`` or ``"list"``
        for the heuristic with the storage-aware tie-break disabled.
    transport_time:
        The constant transport time ``u_c``.
    time_limit_s:
        Solver cap for the ILP engine.
    """

    def __init__(
        self,
        library: DeviceLibrary,
        engine: str = "list",
        transport_time: int = 10,
        time_limit_s: Optional[float] = 60.0,
    ) -> None:
        if engine not in ("ilp", "list"):
            raise ValueError(f"unknown engine {engine!r}; expected 'ilp' or 'list'")
        self.engine = engine
        if engine == "ilp":
            self._scheduler = IlpScheduler(
                library,
                IlpSchedulerConfig(
                    transport_time=transport_time,
                    alpha=1.0,
                    beta=0.0,
                    time_limit_s=time_limit_s,
                ),
            )
        else:
            self._scheduler = ListScheduler(
                library,
                ListSchedulerConfig(transport_time=transport_time, storage_aware=False),
            )

    def schedule(self, graph: SequencingGraph) -> Schedule:
        """Produce the execution-time-only schedule."""
        return self._scheduler.schedule(graph)
