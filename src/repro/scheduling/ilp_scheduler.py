"""Exact ILP scheduler (paper Section 3.1, Table 1, constraints (1)–(7)).

Formulation
-----------
For every device operation ``o_i``:

* integer start time ``ts_i`` (the end time is ``ts_i + duration_i``;
  constraint (2) is satisfied by construction),
* binary ``s_ik`` for every compatible device ``d_k`` with uniqueness
  constraint (1).

Precedence (3): for a sequencing-graph edge ``(o_i, o_j)`` between device
operations, ``ts_j >= te_i + u_c * (1 - same_ij)`` where ``same_ij`` is a
linearized AND over the per-device products ``s_ik * s_jk`` — the gap must
cover a transport unless both ends share the device.

Non-overlap (4): for every unordered pair of operations not related by
precedence, an ordering binary + big-M pair of constraints forces one to
finish before the other starts whenever both are bound to the same device.

Completion time (5): ``tE >= te_i``.

Objective (6): ``minimize alpha * tE + beta * sum w_ij`` where
``w_ij >= (ts_j - te_i) - M * same_ij`` captures the cross-device gap of each
edge (same-device edges contribute nothing, exactly as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.devices.device import DeviceLibrary
from repro.graph.analysis import critical_path_length
from repro.graph.sequencing_graph import SequencingGraph
from repro.ilp import (
    Model,
    SolverLimitError,
    SolverOptions,
    SolverStatus,
    WarmStart,
    lin_sum,
    linearize_and,
)
from repro.scheduling.schedule import Schedule


@dataclass
class IlpSchedulerConfig:
    """Configuration of the exact scheduler.

    ``alpha`` and ``beta`` are the objective weights of completion time and
    storage (gap) time; the paper gives completion time priority
    (``alpha >> beta``).  ``beta = 0`` reproduces the execution-time-only
    baseline of Fig. 9.

    ``solver``, when set, is used verbatim for the solve (it is how the flow
    threads :func:`repro.synthesis.config.solver_options_for` — the single
    ``FlowConfig`` → ``SolverOptions`` construction point — down to this
    engine, backend choice included).  When ``None`` the legacy fields
    ``time_limit_s``/``mip_rel_gap`` are assembled into options on the
    default backend, preserving the historical direct-construction API.
    """

    transport_time: int = 10
    alpha: float = 100.0
    beta: float = 1.0
    time_limit_s: Optional[float] = 60.0
    mip_rel_gap: Optional[float] = None
    horizon: Optional[int] = None
    solver: Optional[SolverOptions] = None
    #: Seed every solve with the storage-aware list heuristic's schedule
    #: translated into a full ILP assignment (a :class:`WarmStart`), unless
    #: the caller supplies an external hint.  Backends that cannot consume
    #: warm starts (HiGHS through scipy) simply ignore it; the
    #: branch-and-bound backend uses it to bound its search from node one.
    #: A warm start never changes the solved status or objective.
    warm_start_heuristic: bool = True

    def solver_options(self) -> SolverOptions:
        """The options every solve of this scheduler runs under."""
        if self.solver is not None:
            return self.solver
        return SolverOptions(time_limit_s=self.time_limit_s, mip_rel_gap=self.mip_rel_gap)


class IlpScheduler:
    """Schedules and binds a sequencing graph by solving the paper's ILP."""

    def __init__(self, library: DeviceLibrary, config: Optional[IlpSchedulerConfig] = None) -> None:
        if len(library) == 0:
            raise ValueError("the device library is empty")
        self.library = library
        self.config = config or IlpSchedulerConfig()
        #: Populated after :meth:`schedule` with solver diagnostics.
        self.last_status: Optional[SolverStatus] = None
        self.last_wall_time_s: float = 0.0
        self.last_objective: Optional[float] = None
        #: Which backend produced the last schedule, and whether the
        #: portfolio had to abandon its primary to get it.
        self.last_backend: Optional[str] = None
        self.last_fallback_used: bool = False
        #: Whether the last solve's backend consumed a warm start.
        self.last_warm_start_used: bool = False

    # ------------------------------------------------------------------ API
    def schedule(self, graph: SequencingGraph,
                 warm_hint: Optional[Schedule] = None) -> Schedule:
        """Solve the ILP and return a validated :class:`Schedule`.

        Parameters
        ----------
        graph:
            The assay's sequencing graph.
        warm_hint:
            Optional known-good schedule of the *same graph* (typically from
            a neighboring flow configuration in an exploration sweep) that is
            translated into a solver warm start.  A hint that does not fit
            this scheduler's device library or constraints is silently
            ignored — the solve is unaffected beyond the attempt.

        Raises
        ------
        RuntimeError
            If the solver proves infeasibility or returns no usable solution
            within the time limit.
        """
        cfg = self.config
        operations = graph.device_operations()
        if not operations:
            schedule = Schedule(graph, self.library, cfg.transport_time)
            return schedule

        compatible = self._compatible_devices(graph)
        horizon = cfg.horizon or self._default_horizon(graph)
        big_m = horizon + 1

        model = Model(f"schedule-{graph.name}")

        start: Dict[str, object] = {}
        end_expr: Dict[str, object] = {}
        assign: Dict[Tuple[str, str], object] = {}
        durations: Dict[str, int] = {}

        for op in operations:
            devices = compatible[op.op_id]
            if not devices:
                raise RuntimeError(
                    f"no device in the library can execute operation {op.op_id!r} ({op.kind.value})"
                )
            ts = model.add_integer(f"ts[{op.op_id}]", low=0, up=horizon)
            start[op.op_id] = ts
            durations[op.op_id] = op.duration
            end_expr[op.op_id] = ts + op.duration
            binaries = []
            for device in devices:
                var = model.add_binary(f"s[{op.op_id},{device.device_id}]")
                assign[(op.op_id, device.device_id)] = var
                binaries.append(var)
            model.add_constraint(lin_sum(binaries) == 1, name=f"uniq[{op.op_id}]")

        # Same-device indicators for sequencing-graph edges (for precedence
        # slack and the storage objective term).
        same: Dict[Tuple[str, str], object] = {}
        device_edges = [
            (p, c)
            for p, c in graph.device_edges()
            if p in start and c in start
        ]
        for parent_id, child_id in device_edges:
            shared = [
                d for d in compatible[parent_id] if d in compatible[child_id]
            ]
            per_device = []
            for device in shared:
                both = linearize_and(
                    model,
                    f"both[{parent_id},{child_id},{device.device_id}]",
                    [assign[(parent_id, device.device_id)], assign[(child_id, device.device_id)]],
                )
                per_device.append(both)
            if per_device:
                same_var = model.add_binary(f"same[{parent_id},{child_id}]")
                model.add_constraint(lin_sum(per_device) == same_var)
                same[(parent_id, child_id)] = same_var
            else:
                same[(parent_id, child_id)] = 0

        # Precedence (3): gap >= u_c unless same device.
        for parent_id, child_id in device_edges:
            same_term = same[(parent_id, child_id)]
            model.add_constraint(
                start[child_id] - end_expr[parent_id]
                >= cfg.transport_time - cfg.transport_time * same_term,
                name=f"prec[{parent_id},{child_id}]",
            )

        # Non-overlap (4) for pairs that could share a device and are not
        # already ordered by precedence.
        ordering = self._add_non_overlap(
            model, graph, operations, compatible, assign, start, durations, big_m
        )

        # Completion time (5).
        t_end = model.add_integer("tE", low=0, up=horizon)
        for op in operations:
            model.add_constraint(t_end >= end_expr[op.op_id])

        # Storage terms w_ij for cross-device edges (objective (6)).
        gap_terms = []
        for parent_id, child_id in device_edges:
            w = model.add_continuous(f"w[{parent_id},{child_id}]", low=0, up=horizon)
            same_term = same[(parent_id, child_id)]
            model.add_constraint(
                w >= (start[child_id] - end_expr[parent_id]) - big_m * same_term
            )
            gap_terms.append(w)

        objective = cfg.alpha * t_end
        if gap_terms and cfg.beta:
            objective = objective + cfg.beta * lin_sum(gap_terms)
        model.minimize(objective)

        options = cfg.solver_options()
        warm = self._build_warm_start(
            graph, warm_hint, operations, compatible, device_edges, ordering, big_m
        )
        if warm is not None:
            # A copy: the options object is shared flow-wide configuration,
            # the warm start is advice for this one solve.
            options = replace(options, warm_start=warm)
        result = model.solve(options)
        self.last_status = result.status
        self.last_wall_time_s = result.wall_time_s
        self.last_objective = result.objective
        self.last_backend = result.backend_name
        self.last_fallback_used = result.fallback_used
        self.last_warm_start_used = result.warm_start_used

        if not result.status.is_feasible():
            message = (
                f"ILP scheduling of {graph.name!r} failed: {result.status.value} ({result.message})"
            )
            if result.status is SolverStatus.TIME_LIMIT:
                # Limit-induced, no incumbent: load-dependent, so raised as a
                # distinct type the batch engine knows not to memoize.
                raise SolverLimitError(message)
            raise RuntimeError(message)

        return self._extract_schedule(graph, start, assign, compatible)

    # ------------------------------------------------------------ internals
    def _compatible_devices(self, graph: SequencingGraph):
        return {
            op.op_id: self.library.devices_for(op.kind)
            for op in graph.device_operations()
        }

    def _default_horizon(self, graph: SequencingGraph) -> int:
        """Serial execution plus one transport per edge — always feasible."""
        serial = sum(op.duration for op in graph.device_operations())
        return serial + self.config.transport_time * (len(graph.device_edges()) + 1)

    def _add_non_overlap(self, model, graph, operations, compatible, assign, start,
                         durations, big_m) -> Dict[Tuple[str, str], Tuple[object, object]]:
        """Add the pairwise ordering constraints; return the ``ord`` binaries
        keyed by operation pair, so a warm start can assign them."""
        ancestor_cache: Dict[str, set] = {}
        ordering: Dict[Tuple[str, str], Tuple[object, object]] = {}

        def ancestors(op_id: str) -> set:
            if op_id not in ancestor_cache:
                ancestor_cache[op_id] = graph.ancestors(op_id)
            return ancestor_cache[op_id]

        for idx, op_i in enumerate(operations):
            for op_j in operations[idx + 1 :]:
                i, j = op_i.op_id, op_j.op_id
                if i in ancestors(j) or j in ancestors(i):
                    continue  # precedence already orders the pair
                shared = [d for d in compatible[i] if d in compatible[j]]
                if not shared:
                    continue
                before = model.add_binary(f"ord[{i},{j}]")
                after = model.add_binary(f"ord[{j},{i}]")
                ordering[(i, j)] = (before, after)
                # i ends before j starts when `before` is set, and vice versa.
                model.add_constraint(
                    start[i] + durations[i] <= start[j] + big_m * (1 - before)
                )
                model.add_constraint(
                    start[j] + durations[j] <= start[i] + big_m * (1 - after)
                )
                # If both run on the same device (for any shared device k),
                # one of the two orderings must be chosen.
                for device in shared:
                    model.add_constraint(
                        before + after
                        >= assign[(i, device.device_id)] + assign[(j, device.device_id)] - 1
                    )
        return ordering

    # ------------------------------------------------------------ warm start
    def _build_warm_start(self, graph, warm_hint, operations, compatible,
                          device_edges, ordering, big_m) -> Optional[WarmStart]:
        """Translate a schedule into a full ILP assignment, best-effort.

        The external ``warm_hint`` (a neighboring configuration's solved
        schedule) wins over the self-seeded list-heuristic schedule; any
        failure to translate — missing operations, a device this library
        does not have — degrades to the heuristic seed (or no warm start)
        rather than an error.  The backend re-verifies the assignment
        against every constraint anyway, so a stale or ill-fitting hint can
        never corrupt a solve.
        """
        attempts = []
        if warm_hint is not None:
            attempts.append((warm_hint, "neighbor"))
        if self.config.warm_start_heuristic:
            attempts.append((self._heuristic_schedule(graph), "list-heuristic"))
        best: Optional[WarmStart] = None
        best_obj = float("inf")
        for hint, label in attempts:
            if hint is None:
                continue
            values = self._hint_values(hint, operations, compatible, device_edges,
                                       ordering, big_m)
            if values is None:
                continue
            # The model's objective over the assignment: both attempts may
            # translate, and the neighbor's schedule is not automatically
            # better than the self-seeded heuristic — keep whichever bounds
            # the search tighter.
            objective = self.config.alpha * values["tE"] + self.config.beta * sum(
                values[f"w[{p},{c}]"] for p, c in device_edges
            )
            if objective < best_obj:
                best = WarmStart(values=values, objective=objective, label=label)
                best_obj = objective
        return best

    def _heuristic_schedule(self, graph) -> Optional[Schedule]:
        from repro.scheduling.list_scheduler import ListScheduler, ListSchedulerConfig

        try:
            return ListScheduler(
                self.library,
                ListSchedulerConfig(
                    transport_time=self.config.transport_time,
                    storage_aware=bool(self.config.beta),
                ),
            ).schedule(graph)
        except Exception:
            # The heuristic is an optional accelerant; scheduling failures
            # (e.g. an exotic library it cannot serve) must not mask the
            # exact solve.
            return None

    def _hint_values(self, hint: Schedule, operations, compatible, device_edges,
                     ordering, big_m) -> Optional[Dict[str, float]]:
        """Values for *every* model variable, derived from a hint schedule.

        Start times and bindings come straight from the hint; the dependent
        variables (``both``/``same`` device indicators, ``ord`` orderings,
        storage gaps ``w``, completion ``tE``) are recomputed under the
        ILP's own semantics — in particular operation ends are ``start +
        duration`` even if the hint's device stretched the execution, so the
        assignment is judged exactly as the model would judge it.
        """
        start_t: Dict[str, int] = {}
        end_t: Dict[str, int] = {}
        dev: Dict[str, str] = {}
        values: Dict[str, float] = {}
        for op in operations:
            if op.op_id not in hint:
                return None
            entry = hint.entry(op.op_id)
            if entry.device_id is None:
                return None
            devices = compatible[op.op_id]
            if all(d.device_id != entry.device_id for d in devices):
                return None  # bound to a device this library lacks
            start_t[op.op_id] = int(entry.start)
            end_t[op.op_id] = int(entry.start) + int(op.duration)
            dev[op.op_id] = entry.device_id
            values[f"ts[{op.op_id}]"] = float(entry.start)
            for device in devices:
                values[f"s[{op.op_id},{device.device_id}]"] = float(
                    device.device_id == entry.device_id
                )
        values["tE"] = float(max(end_t.values(), default=0))
        for parent_id, child_id in device_edges:
            shared = [d for d in compatible[parent_id] if d in compatible[child_id]]
            same_val = 0.0
            for device in shared:
                both = float(
                    dev[parent_id] == device.device_id and dev[child_id] == device.device_id
                )
                values[f"both[{parent_id},{child_id},{device.device_id}]"] = both
                same_val += both
            if shared:
                values[f"same[{parent_id},{child_id}]"] = same_val
            gap = start_t[child_id] - end_t[parent_id]
            values[f"w[{parent_id},{child_id}]"] = float(max(0.0, gap - big_m * same_val))
        for (i, j), (before, after) in ordering.items():
            values[before.name] = float(end_t[i] <= start_t[j])
            values[after.name] = float(end_t[j] <= start_t[i])
        return values

    def _extract_schedule(self, graph, start, assign, compatible) -> Schedule:
        schedule = Schedule(graph, self.library, self.config.transport_time)
        for op in graph.device_operations():
            ts = int(round(start[op.op_id].solution))
            device_id = None
            for device in compatible[op.op_id]:
                if assign[(op.op_id, device.device_id)].as_bool():
                    device_id = device.device_id
                    break
            if device_id is None:
                raise RuntimeError(f"solver returned no binding for operation {op.op_id!r}")
            schedule.assign(op.op_id, device_id, ts, ts + op.duration)
        for op in graph.input_operations():
            schedule.assign(op.op_id, None, 0, op.duration)
        schedule.assert_valid()
        return schedule
