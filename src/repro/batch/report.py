"""Aggregated reporting for batch runs (Table-2-style rows + batch totals).

Since the staged refactor every :class:`JobOutcome` carries its per-stage
execution trail (:class:`~repro.synthesis.pipeline.StageExecution`): which
stages actually *ran* a solver, which were *replayed* from the cache, and
which were *shared* with another job of the same batch.
:meth:`BatchReport.stage_summary` aggregates the trail across the batch —
the number a sweep user cares about is "how many scheduling solves did this
grid cost me", and it is printed with every report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.batch.cache import CacheStats
from repro.synthesis.flow import SynthesisResult
from repro.synthesis.metrics import FlowMetrics, collect_metrics
from repro.synthesis.pipeline import StageExecution
from repro.synthesis.report import format_table2_row, table2_header


@dataclass
class JobOutcome:
    """What happened to one job of a batch.

    Exactly one of ``result`` / ``error`` is set.  ``cache_hit`` records
    whether the job completed without executing a single stage (every
    artifact came from the :class:`~repro.batch.cache.ResultCache` or was
    shared); ``wall_time_s`` is the time the job spent on stages it ran
    itself (zero for cache hits).  ``stages`` is the per-stage trail, in
    pipeline order; it is empty for jobs resolved from the failure memo or
    the assembled-result tier (nothing was even planned for those).
    """

    job_id: str
    cache_key: str
    result: Optional[SynthesisResult] = None
    error: Optional[str] = None
    cache_hit: bool = False
    wall_time_s: float = 0.0
    #: The submitted job's own graph name.  The cache key deliberately
    #: ignores names, so a content-aliased job may share a result whose
    #: ``graph.name`` belongs to another job; metrics are relabeled with
    #: this so every report row shows its own assay.
    graph_name: Optional[str] = None
    stages: List[StageExecution] = field(default_factory=list)
    #: Per-stage span digests from the run's trace recorder (empty unless
    #: tracing was enabled): ``{name, duration_s, action, key}`` rows that
    #: tie this job's stages to spans in the exported trace.
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the job produced a result (as opposed to an error)."""
        return self.result is not None

    def stages_ran(self) -> List[str]:
        """Names of the stages this job executed itself (pipeline order)."""
        return [e.stage for e in self.stages if e.action == "ran"]

    def stages_reused(self) -> List[str]:
        """Names of the stages served from the cache or shared in-batch."""
        return [e.stage for e in self.stages if e.action != "ran"]

    def stage_tag(self) -> str:
        """Compact per-job stage trail, e.g. ``S=hit A=ran P=ran``."""
        if not self.stages:
            return "result=hit" if self.cache_hit else ""
        marks = {"ran": "ran", "replayed": "hit", "shared": "shr"}
        return " ".join(
            f"{e.stage[:5]}={marks.get(e.action, e.action)}" for e in self.stages
        )

    def metrics(self) -> FlowMetrics:
        """Table-2 metrics of the result, relabeled with this job's assay.

        Raises
        ------
        ValueError
            When the job failed (there is no result to measure).
        """
        if self.result is None:
            raise ValueError(f"job {self.job_id!r} failed: {self.error}")
        metrics = collect_metrics(self.result)
        if self.graph_name is not None and metrics.assay != self.graph_name:
            metrics = replace(metrics, assay=self.graph_name)
        return metrics

    def payload(self) -> Dict[str, Any]:
        """JSON-serializable form of this outcome (no result object inside).

        One shared shape for every machine-readable surface: the CLI's
        ``--json`` files and the synthesis service's ``GET /jobs/{id}/result``
        responses are built from exactly this, so downstream tooling parses
        one format.  Failed jobs carry ``error`` and a ``null`` metrics
        block.  Jobs whose config enabled the verify stage additionally
        carry a ``verification`` block — the Monte-Carlo makespan
        distribution (p50/p95/p99), fault-recovery rate, and the
        deterministic replay's propagated diagnostics.  Runs with tracing
        enabled additionally carry a ``spans`` list (per-stage span
        digests linking the payload to the exported trace).
        """
        verification = None
        if self.ok and getattr(self.result, "verification", None) is not None:
            verification = self.result.verification.as_dict()
            verification["simulation_problems"] = list(
                self.result.simulation_problems or []
            )
        extra: Dict[str, Any] = {}
        if self.spans:
            extra["spans"] = list(self.spans)
        return {
            "id": self.job_id,
            "cache_key": self.cache_key,
            "cache_hit": self.cache_hit,
            "wall_time_s": round(self.wall_time_s, 3),
            "error": self.error,
            "stages": [
                {
                    "stage": execution.stage,
                    "action": execution.action,
                    "wall_time_s": round(execution.wall_time_s, 3),
                    "backend": execution.backend,
                    "fallback_used": execution.fallback_used,
                    "warm_start_used": execution.warm_start_used,
                }
                for execution in self.stages
            ],
            "metrics": self.metrics().as_dict() if self.ok else None,
            "verification": verification,
            **extra,
        }


@dataclass
class BatchReport:
    """Outcome of one :meth:`BatchSynthesisEngine.run` call.

    Outcomes appear in job submission order regardless of worker count, so a
    parallel run is directly comparable to a serial one.  ``cache_stats`` is
    the per-batch delta of the cache's counters (a shared cache serves many
    batches; each report describes only its own lookups).
    """

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_time_s: float = 0.0
    max_workers: int = 1
    cache_stats: Optional[CacheStats] = None

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def outcome(self, job_id: str) -> JobOutcome:
        """The outcome with ``job_id``; :class:`KeyError` when absent."""
        for outcome in self.outcomes:
            if outcome.job_id == job_id:
                return outcome
        raise KeyError(f"no job {job_id!r} in this batch")

    def results(self) -> List[SynthesisResult]:
        """Successful results in job order (failed jobs are skipped)."""
        return [o.result for o in self.outcomes if o.result is not None]

    @property
    def num_failed(self) -> int:
        """Number of jobs that ended in an error."""
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def num_cache_hits(self) -> int:
        """Jobs that completed without executing a single stage."""
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def num_executed(self) -> int:
        """Jobs that ran at least one stage themselves (full hits excluded)."""
        return sum(1 for o in self.outcomes if not o.cache_hit)

    @property
    def total_makespan(self) -> int:
        """Sum of the successful jobs' schedule makespans."""
        return sum(o.result.schedule.makespan for o in self.outcomes if o.result is not None)

    def stage_summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-stage aggregate: how many jobs ran / replayed / shared it.

        ``ran`` counts actual solver executions this batch paid for;
        ``replayed`` counts artifacts served from the cache; ``shared``
        counts jobs that rode along on another job's execution within this
        batch.  ``wall_time_s`` sums the execution time of the ``ran``
        entries — the real cost of the stage across the batch.
        ``backends`` counts, per solver backend, how many of the stage's
        artifacts it produced (heuristic stages report no backend and are
        absent from the map); ``fallbacks`` counts artifacts the portfolio
        only obtained by abandoning its primary; ``warm_starts`` counts
        artifacts whose solve consumed a warm-start incumbent.
        """
        summary: Dict[str, Dict[str, Any]] = {}
        for outcome in self.outcomes:
            for execution in outcome.stages:
                row = summary.setdefault(
                    execution.stage,
                    {"ran": 0, "replayed": 0, "shared": 0, "wall_time_s": 0.0,
                     "backends": {}, "fallbacks": 0, "warm_starts": 0},
                )
                row[execution.action] += 1
                if execution.action == "ran":
                    row["wall_time_s"] += execution.wall_time_s
                if execution.backend is not None:
                    backends = row["backends"]
                    backends[execution.backend] = backends.get(execution.backend, 0) + 1
                if execution.fallback_used:
                    row["fallbacks"] += 1
                if execution.warm_start_used:
                    row["warm_starts"] += 1
        for row in summary.values():
            row["wall_time_s"] = round(row["wall_time_s"], 3)
        return summary

    # ----------------------------------------------------------- formatting
    def summary(self) -> Dict[str, Any]:
        """Batch totals plus the per-stage breakdown, JSON-serializable."""
        return {
            "jobs": len(self.outcomes),
            "failed": self.num_failed,
            "cache_hits": self.num_cache_hits,
            "executed": self.num_executed,
            "total_makespan": self.total_makespan,
            "wall_time_s": round(self.wall_time_s, 3),
            "max_workers": self.max_workers,
            "stages": self.stage_summary(),
            # Per-tier hit/miss and single-flight claim counters for this
            # batch; flows verbatim into the service result payload.
            "cache": self.cache_stats.as_dict()
            if self.cache_stats is not None
            else None,
        }

    def to_json_payload(self) -> Dict[str, Any]:
        """The whole report as one JSON-serializable payload.

        ``{"summary": ..., "jobs": [...], "metrics": {...}}`` with the
        batch totals of :meth:`summary`, one :meth:`JobOutcome.payload` per
        job in submission order, and a snapshot of the process-wide
        observability registry (:mod:`repro.obs.metrics`) so ``--json``
        consumers see operational counters next to the results.  Written
        verbatim by ``repro batch --json`` and returned verbatim by the
        synthesis service's result endpoint.
        """
        from repro.obs.metrics import get_registry

        return {
            "summary": self.summary(),
            "jobs": [outcome.payload() for outcome in self.outcomes],
            "metrics": get_registry().snapshot(),
        }

    def deterministic_summary(self) -> str:
        """Run-invariant text form: everything except wall-clock timings.

        Two runs of the same job list — serial or parallel, cold or warm
        cache — must produce byte-identical output here; the regression
        tests rely on that.  (Stage actions are deliberately excluded: a
        warm run replays stages a cold run executed.)
        """
        lines = []
        for outcome in self.outcomes:
            if outcome.result is None:
                lines.append(f"{outcome.job_id}: FAILED {outcome.error}")
                continue
            m = outcome.metrics()
            lines.append(
                f"{outcome.job_id}: tE={m.execution_time} G={m.grid_shape[0]}x{m.grid_shape[1]} "
                f"ne={m.num_edges} nv={m.num_valves} "
                f"dp={m.dim_compact[0]}x{m.dim_compact[1]} "
                f"transports={m.num_transport_tasks} key={outcome.cache_key[:12]}"
            )
        return "\n".join(lines)


def format_stage_summary(report: BatchReport) -> str:
    """The per-stage breakdown as printable lines (one per stage).

    The smoke tests grep these lines — e.g. a warm sweep must show
    ``stage schedule: 0 ran`` — so the format is stable: counts first,
    timing last.
    """
    summary = report.stage_summary()
    if not summary:
        return ""
    lines = []
    for stage_name, row in summary.items():
        lines.append(
            f"stage {stage_name}: {row['ran']} ran, {row['replayed']} replayed, "
            f"{row['shared']} shared, {row['wall_time_s']:.2f} s solve time"
        )
    return "\n".join(lines)


def format_batch_report(report: BatchReport) -> str:
    """Human-readable batch report: Table 2 rows plus batch totals."""
    lines: List[str] = []
    lines.append("job".ljust(12) + " " + table2_header() + " " + "stages".ljust(6))
    for outcome in report.outcomes:
        if outcome.result is None:
            lines.append(f"{outcome.job_id:<12} FAILED: {outcome.error}")
            continue
        row = format_table2_row(outcome.metrics())
        lines.append(f"{outcome.job_id:<12} {row} {outcome.stage_tag()}")
    stage_lines = format_stage_summary(report)
    if stage_lines:
        lines.append(stage_lines)
    stats = report.cache_stats
    cache_line = ""
    if stats is not None:
        shared = f", {stats.shared_hits} shared" if stats.shared_hits else ""
        cache_line = (
            f", cache {stats.hits}/{stats.lookups} hits"
            f" ({stats.memory_hits} memory, {stats.disk_hits} disk{shared})"
        )
    lines.append(
        f"batch: {len(report.outcomes)} jobs ({report.num_failed} failed), "
        f"{report.num_cache_hits} served from cache, "
        f"{report.wall_time_s:.2f} s wall clock on {report.max_workers} worker(s)"
        + cache_line
    )
    return "\n".join(lines)
