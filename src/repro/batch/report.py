"""Aggregated reporting for batch runs (Table-2-style rows + batch totals)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.batch.cache import CacheStats
from repro.synthesis.flow import SynthesisResult
from repro.synthesis.metrics import FlowMetrics, collect_metrics
from repro.synthesis.report import format_table2_row, table2_header


@dataclass
class JobOutcome:
    """What happened to one job of a batch.

    Exactly one of ``result`` / ``error`` is set.  ``cache_hit`` records
    whether the result came out of the :class:`~repro.batch.cache.ResultCache`
    instead of a solver run; ``wall_time_s`` is the per-job time as seen by
    the engine (near zero for cache hits).
    """

    job_id: str
    cache_key: str
    result: Optional[SynthesisResult] = None
    error: Optional[str] = None
    cache_hit: bool = False
    wall_time_s: float = 0.0
    #: The submitted job's own graph name.  The cache key deliberately
    #: ignores names, so a content-aliased job may share a result whose
    #: ``graph.name`` belongs to another job; metrics are relabeled with
    #: this so every report row shows its own assay.
    graph_name: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None

    def metrics(self) -> FlowMetrics:
        if self.result is None:
            raise ValueError(f"job {self.job_id!r} failed: {self.error}")
        metrics = collect_metrics(self.result)
        if self.graph_name is not None and metrics.assay != self.graph_name:
            metrics = replace(metrics, assay=self.graph_name)
        return metrics


@dataclass
class BatchReport:
    """Outcome of one :meth:`BatchSynthesisEngine.run` call.

    Outcomes appear in job submission order regardless of worker count, so a
    parallel run is directly comparable to a serial one.  ``cache_stats`` is
    the per-batch delta of the cache's counters (a shared cache serves many
    batches; each report describes only its own lookups).
    """

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_time_s: float = 0.0
    max_workers: int = 1
    cache_stats: Optional[CacheStats] = None

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def outcome(self, job_id: str) -> JobOutcome:
        for outcome in self.outcomes:
            if outcome.job_id == job_id:
                return outcome
        raise KeyError(f"no job {job_id!r} in this batch")

    def results(self) -> List[SynthesisResult]:
        """Successful results in job order (failed jobs are skipped)."""
        return [o.result for o in self.outcomes if o.result is not None]

    @property
    def num_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def num_cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def num_executed(self) -> int:
        """Jobs that actually ran the synthesis flow (cache misses that succeeded or failed)."""
        return sum(1 for o in self.outcomes if not o.cache_hit)

    @property
    def total_makespan(self) -> int:
        return sum(o.result.schedule.makespan for o in self.outcomes if o.result is not None)

    # ----------------------------------------------------------- formatting
    def summary(self) -> Dict[str, Any]:
        return {
            "jobs": len(self.outcomes),
            "failed": self.num_failed,
            "cache_hits": self.num_cache_hits,
            "executed": self.num_executed,
            "total_makespan": self.total_makespan,
            "wall_time_s": round(self.wall_time_s, 3),
            "max_workers": self.max_workers,
        }

    def deterministic_summary(self) -> str:
        """Run-invariant text form: everything except wall-clock timings.

        Two runs of the same job list — serial or parallel, cold or warm
        cache — must produce byte-identical output here; the regression
        tests rely on that.
        """
        lines = []
        for outcome in self.outcomes:
            if outcome.result is None:
                lines.append(f"{outcome.job_id}: FAILED {outcome.error}")
                continue
            m = outcome.metrics()
            lines.append(
                f"{outcome.job_id}: tE={m.execution_time} G={m.grid_shape[0]}x{m.grid_shape[1]} "
                f"ne={m.num_edges} nv={m.num_valves} "
                f"dp={m.dim_compact[0]}x{m.dim_compact[1]} "
                f"transports={m.num_transport_tasks} key={outcome.cache_key[:12]}"
            )
        return "\n".join(lines)


def format_batch_report(report: BatchReport) -> str:
    """Human-readable batch report: Table 2 rows plus batch totals."""
    lines: List[str] = []
    lines.append("job".ljust(12) + " " + table2_header() + " " + "cache".ljust(6))
    for outcome in report.outcomes:
        if outcome.result is None:
            lines.append(f"{outcome.job_id:<12} FAILED: {outcome.error}")
            continue
        row = format_table2_row(outcome.metrics())
        tag = "hit" if outcome.cache_hit else "miss"
        lines.append(f"{outcome.job_id:<12} {row} {tag:<6}")
    stats = report.cache_stats
    cache_line = ""
    if stats is not None:
        cache_line = (
            f", cache {stats.hits}/{stats.lookups} hits"
            f" ({stats.memory_hits} memory, {stats.disk_hits} disk)"
        )
    lines.append(
        f"batch: {len(report.outcomes)} jobs ({report.num_failed} failed), "
        f"{report.num_cache_hits} served from cache, "
        f"{report.wall_time_s:.2f} s wall clock on {report.max_workers} worker(s)"
        + cache_line
    )
    return "\n".join(lines)
