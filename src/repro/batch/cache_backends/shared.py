"""The shared cache tier: a blocking HTTP client for the cache daemon.

The ``shared`` backend lets N ``repro serve`` replicas (or parallel batch
runs) pool one content-addressed store — and, through the daemon's claim
records, extend single-flight "exactly one process solves each miss"
semantics across process boundaries.  The client half lives here, built on
nothing but stdlib :mod:`http.client` so :mod:`repro.batch` stays free of
any dependency on :mod:`repro.service` (the daemon itself lives in
:mod:`repro.service.cachedaemon`, next to the server that reuses the same
HTTP framing).

Values travel as the same opaque ``(KEY_VERSION, payload)`` pickle
envelopes the disk tier writes; the daemon stores bytes it never decodes,
so a mixed-version replica fleet degrades to per-version misses instead of
poisoning each other.  Like every tier, the network is *soft*: an
unreachable daemon turns reads into misses, writes into no-ops, and claims
into :data:`ClaimOutcome` state ``"unavailable"`` — callers degrade to
process-local behavior, they never crash.

Entries are pickles, so the daemon must only ever be reachable by trusted
replicas (bind it to loopback or a private network), the same trust
posture as the synthesis service itself.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import uuid
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.batch.cache_backends.base import (
    CacheBackend,
    CacheBackendOptions,
    CacheTier,
    decode_envelope,
    encode_envelope,
)
from repro.batch.cache_backends.disk import DiskCacheTier
from repro.obs.trace import TRACE_HEADER, current_context

#: Default lease on a cross-process claim; a claimant that neither
#: publishes nor releases within the lease is presumed dead and taken over.
DEFAULT_LEASE_S = 300.0


def parse_cache_addr(addr: str) -> Tuple[str, int]:
    """Split a ``host:port`` cache address; :class:`ValueError` when malformed."""
    host, sep, port_text = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"cache address {addr!r} is not of the form host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"cache address {addr!r} has a non-numeric port") from None
    if not 0 < port < 65536:
        raise ValueError(f"cache address {addr!r} has an out-of-range port")
    return host, port


@dataclass
class ClaimOutcome:
    """The daemon's answer to one cross-process claim attempt.

    ``state`` is one of:

    * ``"granted"`` — this process owns the claim and must compute the
      value (``takeover`` marks grants that displaced an expired lease);
    * ``"present"`` — the value is already in the shared store, just read it;
    * ``"claimed"`` — another live process holds the claim; poll again in
      at most ``retry_after_s`` seconds;
    * ``"unavailable"`` — the daemon could not be reached; degrade to
      process-local single-flight and compute.

    ``claimant_trace`` is the holding process's serialized span context
    (``trace_id:span_id``), echoed by the daemon on ``"claimed"`` answers
    when the claimant was tracing — it lets a waiting replica's trace link
    to the trace actually doing the work.
    """

    state: str
    takeover: bool = False
    retry_after_s: float = 0.0
    claimant_trace: Optional[str] = None


class SharedCacheTier(CacheTier):
    """Key-value + claim client speaking to one ``repro cache-daemon``.

    One short-lived connection per request (the daemon, like the synthesis
    service, closes after every response), so the tier is safe to call from
    any number of threads without pooling or locking.
    """

    kind = "shared"
    supports_claims = True

    def __init__(self, cache_addr: str, request_timeout_s: float = 10.0) -> None:
        super().__init__()
        self.cache_addr = cache_addr
        self.host, self.port = parse_cache_addr(cache_addr)
        self.request_timeout_s = request_timeout_s
        #: Stable claim-owner identity of this process; the daemon uses it
        #: to make claim/release idempotent per owner.
        self.owner = f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"

    # ------------------------------------------------------------------- tier
    def get(self, key: str) -> Optional[Any]:
        """Fetch and decode one entry; any network failure is a miss."""
        status, body = self._request("GET", f"/kv/{key}")
        if status != 200 or body is None:
            return None
        ok, value = decode_envelope(body)
        if not ok:
            # Entry written by a different key version (mixed-version
            # fleet): a miss for us, but other replicas may still want it,
            # so it is left in place rather than deleted.
            return None
        self._note_observed(key)
        return value

    def put(self, key: str, value: Any) -> bool:
        """Publish one entry (which also releases any claim on its key)."""
        status, _ = self._request("PUT", f"/kv/{key}", body=encode_envelope(value))
        if status != 200:
            return False
        self._note_write(key)
        return True

    def contains(self, key: str) -> bool:
        """Whether the daemon holds ``key`` (``False`` when unreachable)."""
        status, _ = self._request("HEAD", f"/kv/{key}")
        return status == 200

    def clear(self) -> None:
        """Ask the daemon to drop every entry and claim (best effort)."""
        self._request("POST", "/clear")
        self._clean.clear()

    # ------------------------------------------------------------------ claims
    def claim(self, key: str, lease_s: float = DEFAULT_LEASE_S) -> ClaimOutcome:
        """Try to acquire the cross-process claim on ``key``.

        Re-claiming a key this owner already holds refreshes the lease and
        is granted again — which is what lets a process-local takeover
        (original thread presumed dead, same process) inherit the remote
        claim without a round of lease expiry.
        """
        payload = json.dumps({"owner": self.owner, "lease_s": lease_s}).encode("utf-8")
        status, body = self._request("POST", f"/claim/{key}", body=payload)
        if status != 200 or body is None:
            return ClaimOutcome(state="unavailable")
        try:
            answer = json.loads(body.decode("utf-8"))
            state = answer["state"]
            if state not in ("granted", "present", "claimed"):
                raise ValueError(state)
            claimant = answer.get("claimant_trace")
            return ClaimOutcome(
                state=state,
                takeover=bool(answer.get("takeover", False)),
                retry_after_s=float(answer.get("retry_after_s", 0.0)),
                claimant_trace=claimant if isinstance(claimant, str) else None,
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            return ClaimOutcome(state="unavailable")

    def release(self, key: str) -> None:
        """Release this owner's claim on ``key`` (no-op for other owners)."""
        payload = json.dumps({"owner": self.owner}).encode("utf-8")
        self._request("POST", f"/release/{key}", body=payload)

    # -------------------------------------------------------------- internals
    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[Optional[int], Optional[bytes]]:
        """One request/response; ``(None, None)`` on any transport failure.

        When the calling context is tracing, the request carries the active
        span context in the :data:`TRACE_HEADER` header — on claim requests
        the daemon stores it with the claim record and echoes it to waiting
        replicas, which links a cross-replica claim wait to the claimant's
        trace.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.request_timeout_s
        )
        headers = {}
        ctx = current_context()
        if ctx is not None:
            headers[TRACE_HEADER] = ctx.serialize()
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        except (OSError, http.client.HTTPException):
            return None, None
        finally:
            conn.close()


class SharedBackend(CacheBackend):
    """``shared``: optional disk tier, then the networked tier.

    With a ``cache_dir`` configured the disk tier sits in front of the
    network, so each replica answers repeat lookups locally and only pays
    a round trip for entries first computed elsewhere.
    """

    name = "shared"

    def build_tiers(self, options: CacheBackendOptions) -> List[CacheTier]:
        """Disk tier (when ``cache_dir`` is set) + shared tier (required)."""
        if options.cache_addr is None:
            raise ValueError(
                "cache backend 'shared' requires a daemon address (--cache-addr)"
            )
        tiers: List[CacheTier] = []
        if options.cache_dir is not None:
            tiers.append(DiskCacheTier(options.cache_dir))
        tiers.append(
            SharedCacheTier(options.cache_addr, request_timeout_s=options.request_timeout_s)
        )
        return tiers
