"""The on-disk cache tier: live read/write, atomic publishes, soft failures.

What used to be a write-mostly appendix of :class:`ResultCache` is now a
first-class :class:`CacheTier`: reads decode the shared
``(KEY_VERSION, payload)`` envelope and treat anything else — truncated
files, garbage bytes, foreign key versions — as a miss that also unlinks
the bad entry, so a damaged cache directory converges back to health
instead of crashing workers.  Writes stage into a per-writer temp file and
``replace`` it into place, so concurrent processes sharing one directory
never expose partial files to each other.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.batch.cache_backends.base import (
    CacheBackend,
    CacheBackendOptions,
    CacheTier,
    decode_envelope,
    encode_envelope,
)


class DiskCacheTier(CacheTier):
    """Pickled ``<digest>.pkl`` entries under one directory.

    Sharding is unnecessary at the evaluation's scale; the directory is
    created eagerly so a misconfigured path fails at construction.
    """

    kind = "disk"

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        super().__init__()
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)

    def get(self, key: str) -> Optional[Any]:
        """Read and decode one entry; corrupt or stale files are unlinked.

        Entries from another key version (including pre-envelope legacy
        files, which unpickle as a bare object) are stale by definition:
        the payload's semantics may have changed.  They and outright
        garbage degrade to a miss — and are dropped so the directory
        converges to the current version — never to an exception.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        ok, value = decode_envelope(data)
        if not ok:
            path.unlink(missing_ok=True)
            self._forget(key)
            return None
        self._note_observed(key)
        return value

    def put(self, key: str, value: Any) -> bool:
        """Atomically publish one entry; ``True`` on success.

        A unique temp name per writer: several processes may share a
        cache_dir and solve the same miss concurrently; each must publish
        atomically without trampling the other's staging file.  The disk
        tier is an optimization — a full disk or revoked permissions must
        not abort a batch whose solve already succeeded, so failures
        return ``False`` (reads treat bad entries as misses, symmetrically).
        """
        path = self._path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            tmp.write_bytes(encode_envelope(value))
            tmp.replace(path)  # atomic so readers never see partial files
        except OSError:
            tmp.unlink(missing_ok=True)
            return False
        self._note_write(key)
        return True

    def contains(self, key: str) -> bool:
        """Whether an entry file exists (without decoding it)."""
        return self._path(key).exists()

    def clear(self) -> None:
        """Unlink every ``*.pkl`` entry in the directory."""
        for path in self.cache_dir.glob("*.pkl"):
            path.unlink(missing_ok=True)
        self._clean.clear()

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"


class DiskBackend(CacheBackend):
    """``disk``: one :class:`DiskCacheTier` behind the memory LRU."""

    name = "disk"

    def build_tiers(self, options: CacheBackendOptions) -> List[CacheTier]:
        """One disk tier rooted at ``options.cache_dir`` (required)."""
        if options.cache_dir is None:
            raise ValueError(
                "cache backend 'disk' requires a cache directory (--cache-dir)"
            )
        return [DiskCacheTier(options.cache_dir)]
