"""Pluggable durable tiers behind the result cache's in-memory LRU.

The registry maps string keys to :class:`CacheBackend` factories, the same
pattern as :mod:`repro.ilp.backends`:

* ``memory`` — no durable tier; the seed single-process behavior;
* ``disk`` — a live on-disk read/write tier with atomic publishes;
* ``shared`` — a networked tier speaking to ``repro cache-daemon``, which
  also arbitrates cross-process single-flight claims (optionally stacked
  behind a local disk tier).

Importing this package registers the built-ins; third-party tiers register
through :func:`register_cache_backend`.
"""

from repro.batch.cache_backends.base import (
    DEFAULT_CACHE_BACKEND,
    CacheBackend,
    CacheBackendOptions,
    CacheTier,
    MemoryBackend,
    cache_backend_names,
    decode_envelope,
    encode_envelope,
    get_cache_backend,
    register_cache_backend,
    unregister_cache_backend,
)
from repro.batch.cache_backends.disk import DiskBackend, DiskCacheTier
from repro.batch.cache_backends.shared import (
    DEFAULT_LEASE_S,
    ClaimOutcome,
    SharedBackend,
    SharedCacheTier,
    parse_cache_addr,
)

register_cache_backend(MemoryBackend())
register_cache_backend(DiskBackend())
register_cache_backend(SharedBackend())

__all__ = [
    "DEFAULT_CACHE_BACKEND",
    "DEFAULT_LEASE_S",
    "CacheBackend",
    "CacheBackendOptions",
    "CacheTier",
    "ClaimOutcome",
    "DiskBackend",
    "DiskCacheTier",
    "MemoryBackend",
    "SharedBackend",
    "SharedCacheTier",
    "cache_backend_names",
    "decode_envelope",
    "encode_envelope",
    "get_cache_backend",
    "parse_cache_addr",
    "register_cache_backend",
    "unregister_cache_backend",
]
