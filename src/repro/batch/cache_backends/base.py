"""Cache-tier protocol, the string-keyed backend registry, and envelopes.

The :class:`~repro.batch.cache.ResultCache` always owns an in-memory LRU
front tier; everything *behind* that tier is pluggable.  A
:class:`CacheBackend` turns one :class:`CacheBackendOptions` into the
ordered list of durable :class:`CacheTier` instances the cache consults on
a memory miss — lookups walk the tiers front to back, writes go through to
every tier.  The registry maps stable string keys (``"memory"``,
``"disk"``, ``"shared"``) to backend instances so every layer above —
:class:`ResultCache`, :class:`~repro.service.server.ServiceConfig`, the
CLI's ``--cache-backend`` flag — can name a backend without importing it,
exactly like the solver-backend registry of :mod:`repro.ilp.backends`.

Durable entries share one wire/disk format: the ``(KEY_VERSION, payload)``
pickle envelope of :func:`encode_envelope`, validated symmetrically by
:func:`decode_envelope` — an entry written by another key version (or a
truncated/corrupt byte string) decodes to a miss, never an exception, so a
stale or damaged tier degrades instead of crashing a worker.
"""

from __future__ import annotations

import abc
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro import keys

#: Registry key of the backend used when nothing is configured: the plain
#: in-memory LRU with no durable tier behind it.
DEFAULT_CACHE_BACKEND = "memory"


def encode_envelope(value: Any) -> bytes:
    """Serialize ``value`` into the versioned durable-entry envelope.

    The envelope is ``pickle((KEY_VERSION, value))`` — the same shape the
    disk tier has always written, now shared with the networked tier so a
    key-version bump invalidates every durable copy at once.
    """
    return pickle.dumps(
        (keys.KEY_VERSION, value), protocol=pickle.HIGHEST_PROTOCOL
    )


def decode_envelope(data: bytes) -> Tuple[bool, Any]:
    """Decode one durable entry; ``(ok, value)``.

    ``ok`` is ``False`` — never an exception — for truncated or garbage
    bytes, for pre-envelope legacy objects, and for envelopes written under
    a different :data:`repro.keys.KEY_VERSION`: a bad entry is just a miss.
    """
    try:
        envelope = pickle.loads(data)
    except Exception:  # noqa: BLE001 - any corruption is just a miss
        return False, None
    if (
        not isinstance(envelope, tuple)
        or len(envelope) != 2
        or envelope[0] != keys.KEY_VERSION
    ):
        return False, None
    return True, envelope[1]


@dataclass
class CacheBackendOptions:
    """Everything a backend may need to build its tiers.

    One flat options object rather than per-backend kwargs, so the CLI and
    the service config can thread user flags through the registry without
    knowing which backend consumes which field.
    """

    #: Directory of the on-disk tier (``disk`` requires it; ``shared``
    #: stacks a disk tier in front of the network when it is given).
    cache_dir: Optional[Union[str, Path]] = None
    #: ``host:port`` of the shared cache daemon (``shared`` requires it).
    cache_addr: Optional[str] = None
    #: Per-request timeout of the networked tier's HTTP calls.
    request_timeout_s: float = 10.0


class CacheTier(abc.ABC):
    """One durable storage level behind the in-memory LRU.

    Tiers are *soft*: every operation degrades to a miss or a no-op on
    infrastructure failure (full disk, unreachable daemon) — a cache tier
    is an optimization and must never abort a batch whose solve succeeded.
    Each tier tracks the keys it has successfully written or observed
    (:meth:`is_clean`), which is what lets the shutdown flush skip entries
    already persisted instead of rewriting the whole memory tier.
    """

    #: Stats bucket (``"disk"`` or ``"shared"``) and display name.
    kind: str = ""
    #: Whether the tier can arbitrate cross-process single-flight claims
    #: (:meth:`claim`/:meth:`release`); only the networked tier can.
    supports_claims: bool = False

    def __init__(self) -> None:
        #: Successful physical writes this tier performed (the write-counter
        #: the flush double-write regression test pins).
        self.writes = 0
        self._clean: Set[str] = set()

    # ------------------------------------------------------------------- api
    @abc.abstractmethod
    def get(self, key: str) -> Optional[Any]:
        """The decoded value for ``key``, or ``None`` on a miss."""

    @abc.abstractmethod
    def put(self, key: str, value: Any) -> bool:
        """Publish ``key``; ``True`` on success (failure is soft)."""

    @abc.abstractmethod
    def contains(self, key: str) -> bool:
        """Whether ``key`` is present, without counting as a lookup."""

    def clear(self) -> None:
        """Drop every entry this tier holds (best effort)."""

    def close(self) -> None:
        """Release any resources the tier holds (sockets, handles)."""

    def is_clean(self, key: str) -> bool:
        """Whether this process already published or observed ``key`` here.

        The shutdown flush consults this instead of stat-ing (or asking the
        network for) every entry: a key written successfully by :meth:`put`
        — or read back by :meth:`get` — is durable in this tier and must
        not be written again.
        """
        return key in self._clean

    # -------------------------------------------------------------- internals
    def _note_write(self, key: str) -> None:
        """Record one successful physical write of ``key``."""
        self.writes += 1
        self._clean.add(key)

    def _note_observed(self, key: str) -> None:
        """Record that ``key`` was seen present in this tier."""
        self._clean.add(key)

    def _forget(self, key: str) -> None:
        """Drop the clean marker of ``key`` (entry was removed or corrupt)."""
        self._clean.discard(key)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind!r}>"


class CacheBackend(abc.ABC):
    """One named way of arranging durable tiers behind the memory LRU.

    Subclasses set :attr:`name` (the registry key, the ``--cache-backend``
    value, and what :attr:`ResultCache.backend_name` reports) and implement
    :meth:`build_tiers`.  Backends are stateless factories — one shared
    instance serves every cache construction.
    """

    #: Registry key; also what configured caches report back.
    name: str = ""

    @abc.abstractmethod
    def build_tiers(self, options: CacheBackendOptions) -> List["CacheTier"]:
        """The ordered durable tiers for ``options`` (front tier first).

        Raises :class:`ValueError` when ``options`` is missing something
        the backend requires (e.g. ``disk`` without a ``cache_dir``), so a
        misconfiguration fails at construction, not mid-batch.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


class MemoryBackend(CacheBackend):
    """The null backend: nothing behind the in-memory LRU.

    The seed behavior of :class:`ResultCache` without a ``cache_dir`` —
    artifacts live exactly as long as the process does.
    """

    name = "memory"

    def build_tiers(self, options: CacheBackendOptions) -> List[CacheTier]:
        """No durable tiers; the memory LRU is the whole cache."""
        return []


# ------------------------------------------------------------------- registry

_REGISTRY: Dict[str, CacheBackend] = {}


def register_cache_backend(
    backend: CacheBackend, *, replace: bool = False
) -> CacheBackend:
    """Register ``backend`` under its :attr:`~CacheBackend.name`.

    Re-registering an existing name raises unless ``replace=True`` — a
    silent overwrite would re-route every config naming that backend.
    Returns the backend so registration can be used as an expression.
    """
    name = backend.name
    if not name:
        raise ValueError(f"cache backend {backend!r} has no name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"cache backend {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_cache_backend(name: str) -> None:
    """Remove a registered backend (no-op when absent).

    Intended for tests and short-lived experimental backends; the built-in
    names are re-registered only on interpreter restart.
    """
    _REGISTRY.pop(name, None)


def get_cache_backend(name: str) -> CacheBackend:
    """The backend registered under ``name``.

    Raises
    ------
    ValueError
        When no backend has that name, listing the known keys so a flag
        typo is one read away from its fix.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {name!r}; registered backends: {sorted(_REGISTRY)}"
        ) from None


def cache_backend_names() -> Tuple[str, ...]:
    """Sorted names of every registered cache backend."""
    return tuple(sorted(_REGISTRY))
