"""The batch-synthesis engine: fan out, cache, aggregate.

The engine takes a list of :class:`~repro.batch.jobs.BatchJob` and produces a
:class:`~repro.batch.report.BatchReport` whose outcomes are in job order, no
matter how many workers ran them.  Jobs are first resolved against the
:class:`~repro.batch.cache.ResultCache`; only cache misses are dispatched.
With ``max_workers > 1`` misses run in a ``ProcessPoolExecutor`` — each
worker receives the *serialized* graph and config (plain dicts, cheap to
pickle) and sends back the pickled :class:`SynthesisResult`.  With one
worker everything runs inline, which keeps tracebacks simple and lets tests
monkeypatch :func:`repro.synthesis.flow.synthesize` to count solver runs.

Failures are captured per job (``JobOutcome.error``) rather than aborting
the batch — one infeasible assay must not take down a many-user batch — and
never poison the cache.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.batch.cache import CacheStats, ResultCache, cache_key
from repro.batch.jobs import BatchJob
from repro.batch.report import BatchReport, JobOutcome
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.ilp import SolverLimitError
from repro.synthesis import flow
from repro.synthesis.config import FlowConfig
from repro.synthesis.flow import SynthesisResult


def _execute_serialized(
    payload: Tuple[Dict[str, Any], Dict[str, Any]]
) -> Tuple[bool, Any, float]:
    """Worker-side job execution (module-level so it pickles on spawn too).

    The graph is shipped in insertion-order form (:func:`graph_to_dict`) —
    the cheapest faithful serialization.  Synthesis output is
    insertion-order invariant (the schedulers order operations by graph
    structure, and the content-addressed cache key relies on exactly that),
    so parallel results match serial ones regardless of the form shipped.
    Returns ``(ok, result_or_error, elapsed)`` with the
    worker-measured synthesis time, so per-job timings — for failures just as
    for successes — are not distorted by pool queueing.  Failures come back
    as a detached exception (formatted traceback attached as a string) rather
    than raising, so they pickle cleanly and carry their timing along.
    """
    graph_data, config_data = payload
    graph = graph_from_dict(graph_data)
    config = FlowConfig.from_dict(config_data)
    start = time.perf_counter()
    try:
        result = flow.synthesize(graph, config)
    except Exception as exc:  # noqa: BLE001 - shipped back, captured per job
        return False, _detached_failure(exc), time.perf_counter() - start
    return True, result, time.perf_counter() - start


def _error_message(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _detached_failure(exc: BaseException) -> BaseException:
    """A traceback-free copy of ``exc``, safe to memoize and re-raise.

    Storing (or re-raising) the live exception object would pin the failed
    solver run's whole frame stack in the cache and grow the shared object's
    traceback on every re-raise.  The copy keeps the original type when the
    exception reconstructs faithfully from its ``args``; otherwise it falls
    back to a ``RuntimeError`` carrying the formatted message.  The original
    failure's *formatted* traceback travels along as a string — attached as
    an exception note (3.11+) so it prints with the re-raise — preserving
    debuggability without keeping any frame alive.
    """
    try:
        clone = type(exc)(*exc.args)
        if str(clone) != str(exc):
            raise ValueError("lossy reconstruction")
    except Exception:  # noqa: BLE001 - any exotic signature falls back
        clone = RuntimeError(_error_message(exc))
    tb_text = getattr(exc, "_original_traceback", None)
    if tb_text is None and exc.__traceback__ is not None:
        tb_text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    if tb_text:
        clone._original_traceback = tb_text
        if hasattr(clone, "add_note"):  # Python >= 3.11
            clone.add_note("original failure traceback:\n" + tb_text.rstrip())
    return clone


class BatchSynthesisEngine:
    """Run many independent synthesis jobs with caching and parallelism.

    Parameters
    ----------
    max_workers:
        Process count for cache-miss execution.  ``1`` (the default) runs
        inline; higher values fan out over a process pool.
    cache:
        Shared :class:`ResultCache`; a private in-memory cache is created
        when omitted.  Passing an explicit cache lets several engines (or
        repeated CLI invocations via a disk tier) share results.
    fail_fast:
        When true, the first job failure raises instead of being recorded in
        the report.
    memoize_failures:
        When true (the default), a failed job's exception is memoized in the
        cache's memory tier and replayed for identical jobs instead of
        re-running the solver.  Only deterministic failures are memoized:
        limit-induced solver failures (:class:`SolverLimitError`) and worker
        crashes are load-dependent, so those always re-run.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache: Optional[ResultCache] = None,
        fail_fast: bool = False,
        memoize_failures: bool = True,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()
        self.fail_fast = fail_fast
        self.memoize_failures = memoize_failures

    def _record_failure(self, key: str, exc: BaseException) -> None:
        # A SolverLimitError depends on machine load, not on the job's
        # content — an identical re-run may succeed, so it is never memoized.
        if self.memoize_failures and not isinstance(exc, SolverLimitError):
            self.cache.put_failure(key, _detached_failure(exc))

    # ------------------------------------------------------------------- api
    def run(self, jobs: Sequence[BatchJob]) -> BatchReport:
        """Execute ``jobs`` and return their outcomes in submission order."""
        start = time.perf_counter()
        stats_before = replace(self.cache.stats)
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        # Tier 1: resolve every job against the cache first, so a warm batch
        # never spins up the pool at all.  Jobs with identical content keys
        # are solved once; the duplicates are aliases of the first.
        pending: List[Tuple[int, BatchJob, str]] = []
        aliases: Dict[str, List[Tuple[int, BatchJob]]] = {}
        for index, job in enumerate(jobs):
            key = cache_key(job.graph, job.config)
            if key in aliases:
                # Intra-batch duplicate of a job already dispatched: it never
                # performs its own cache lookup, so the stats are not charged
                # a second miss for work this batch does exactly once.
                aliases[key].append((index, job))
                continue
            # The failure memo is consulted before the result tiers so a
            # memoized failure is not also charged as a result-cache miss.
            known_failure = self.cache.get_failure(key)
            if known_failure is not None:
                if self.fail_fast:
                    raise _detached_failure(known_failure)
                outcomes[index] = JobOutcome(
                    job_id=job.job_id,
                    cache_key=key,
                    error=_error_message(known_failure),
                    cache_hit=True,
                    graph_name=job.graph.name,
                )
                continue
            cached = self.cache.get(key)
            if cached is not None:
                outcomes[index] = JobOutcome(
                    job_id=job.job_id,
                    cache_key=key,
                    result=cached,
                    cache_hit=True,
                    graph_name=job.graph.name,
                )
            else:
                aliases[key] = []
                pending.append((index, job, key))

        if pending:
            if self.max_workers > 1 and len(pending) > 1:
                executed = self._run_pool(pending)
            else:
                executed = self._run_inline(pending)
            for index, outcome in executed:
                outcomes[index] = outcome
                for alias_index, alias_job in aliases.get(outcome.cache_key, []):
                    # An alias never executed anything itself — it shares the
                    # first occurrence's outcome (result or failure alike).
                    outcomes[alias_index] = JobOutcome(
                        job_id=alias_job.job_id,
                        cache_key=outcome.cache_key,
                        result=outcome.result,
                        error=outcome.error,
                        cache_hit=True,
                        graph_name=alias_job.graph.name,
                    )

        # Snapshot the cache counters as a per-batch delta: the cache may be
        # shared across many batches, and a report must describe its own.
        after = self.cache.stats
        batch_stats = CacheStats(
            memory_hits=after.memory_hits - stats_before.memory_hits,
            disk_hits=after.disk_hits - stats_before.disk_hits,
            misses=after.misses - stats_before.misses,
            stores=after.stores - stats_before.stores,
            evictions=after.evictions - stats_before.evictions,
        )
        return BatchReport(
            outcomes=[o for o in outcomes if o is not None],
            wall_time_s=time.perf_counter() - start,
            max_workers=self.max_workers,
            cache_stats=batch_stats,
        )

    def run_one(self, job: BatchJob) -> SynthesisResult:
        """Convenience wrapper: run a single job and return its result.

        Raises the underlying synthesis error on failure (the single-job
        caller wants the traceback, not a report row).
        """
        key = cache_key(job.graph, job.config)
        # Failure memo first, mirroring run(): a replayed failure must not be
        # charged as a result-cache miss.
        known_failure = self.cache.get_failure(key)
        if known_failure is not None:
            # Synthesis is deterministic: re-running an identical failed job
            # would reproduce the same error at full solver cost.  A fresh
            # detached copy is raised so repeated raises cannot pile
            # tracebacks onto one shared object.
            raise _detached_failure(known_failure)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        try:
            result = flow.synthesize(job.graph, job.config)
        except Exception as exc:
            self._record_failure(key, exc)
            raise
        self.cache.put(key, result)
        return result

    # -------------------------------------------------------------- internals
    def _run_inline(
        self, pending: List[Tuple[int, BatchJob, str]]
    ) -> List[Tuple[int, JobOutcome]]:
        executed: List[Tuple[int, JobOutcome]] = []
        for index, job, key in pending:
            job_start = time.perf_counter()
            try:
                result = flow.synthesize(job.graph, job.config)
            except Exception as exc:  # noqa: BLE001 - captured per job
                # Memoize even on the fail-fast path: the failure is just as
                # deterministic, and a later run sharing this cache must not
                # pay a full solver run to reproduce it.
                self._record_failure(key, exc)
                if self.fail_fast:
                    raise
                outcome = JobOutcome(
                    job_id=job.job_id,
                    cache_key=key,
                    error=_error_message(exc),
                    wall_time_s=time.perf_counter() - job_start,
                    graph_name=job.graph.name,
                )
            else:
                self.cache.put(key, result)
                outcome = JobOutcome(
                    job_id=job.job_id,
                    cache_key=key,
                    result=result,
                    wall_time_s=time.perf_counter() - job_start,
                    graph_name=job.graph.name,
                )
            executed.append((index, outcome))
        return executed

    def _run_pool(
        self, pending: List[Tuple[int, BatchJob, str]]
    ) -> List[Tuple[int, JobOutcome]]:
        executed: List[Tuple[int, JobOutcome]] = []
        workers = min(self.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_info = {}
            for index, job, key in pending:
                payload = (graph_to_dict(job.graph), job.config.to_dict())
                future = pool.submit(_execute_serialized, payload)
                future_info[future] = (index, job, key, time.perf_counter())
            # Collect as futures complete; the caller re-orders outcomes by
            # index, so determinism of the report does not depend on this.
            for future in as_completed(future_info):
                index, job, key, submit_time = future_info[future]
                crashed = False
                try:
                    ok, value, elapsed = future.result()
                except Exception as exc:  # noqa: BLE001 - worker/pickling crash
                    # A job-level failure comes back tagged; reaching here
                    # means the worker itself died (OOM-kill, broken pool),
                    # so only queue-side timing exists.
                    ok = False
                    crashed = True
                    value = exc
                    elapsed = time.perf_counter() - submit_time
                if not ok:
                    # Infrastructure crashes are not properties of the
                    # (graph, config) key — never memoize them.
                    if not crashed:
                        self._record_failure(key, value)
                    if self.fail_fast:
                        # Abort for real: drop queued jobs so the pool's
                        # __exit__ does not sit out every remaining solve.
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise _detached_failure(value)
                    outcome = JobOutcome(
                        job_id=job.job_id,
                        cache_key=key,
                        error=_error_message(value),
                        wall_time_s=elapsed,
                        graph_name=job.graph.name,
                    )
                else:
                    self.cache.put(key, value)
                    outcome = JobOutcome(
                        job_id=job.job_id,
                        cache_key=key,
                        result=value,
                        wall_time_s=elapsed,
                        graph_name=job.graph.name,
                    )
                executed.append((index, outcome))
        return executed
