"""The batch-synthesis engine: fan out per stage, cache, aggregate.

The engine takes a list of :class:`~repro.batch.jobs.BatchJob` and produces a
:class:`~repro.batch.report.BatchReport` whose outcomes are in job order, no
matter how many workers ran them.  Execution is **stage-granular**: every job
is planned into its :class:`~repro.synthesis.pipeline.SynthesisPipeline`
stage/key chain, and the stages run tier by tier (all schedule solves, then
all architecture syntheses, then all physical designs):

* within each tier, jobs sharing a stage key — e.g. the points of a sweep
  that only varies physical-design knobs — are solved **once**; the others
  share the artifact ("shared" in the report);
* stage keys already in the :class:`~repro.batch.cache.ResultCache` are
  replayed without running anything ("replayed");
* with ``max_workers > 1`` the unique stage executions of a tier fan out
  over a ``ProcessPoolExecutor`` — each worker receives the serialized graph
  and config plus the pickled upstream artifact and sends back the pickled
  stage artifact.  With one worker everything runs inline, which keeps
  tracebacks simple and lets tests monkeypatch the stage classes to count
  or fail solver runs.

Because each tier's artifacts are stored in the cache the moment the tier
completes, a batch interrupted by a worker crash resumes from the last
completed stage on the next run: the schedule that solved before the crash
is replayed, not re-solved.

Failures are captured per job (``JobOutcome.error``) rather than aborting
the batch — one infeasible assay must not take down a many-user batch — and
never poison the cache.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.batch.cache import ResultCache, cache_key
from repro.batch.jobs import BatchJob
from repro.batch.report import BatchReport, JobOutcome
from repro.devices.device import DeviceLibrary
from repro.graph.serialization import graph_from_dict, graph_to_dict
from repro.ilp import SolverLimitError
from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger
from repro.obs.trace import (
    SpanContext,
    TraceRecorder,
    current_context,
    install_recorder,
    recorder as obs_recorder,
    span as obs_span,
    uninstall_recorder,
)
from repro.synthesis.config import FlowConfig
from repro.synthesis.flow import SynthesisResult, build_library
from repro.synthesis.pipeline import (
    PlannedStage,
    StageContext,
    StageExecution,
    SynthesisPipeline,
    graph_fingerprint,
    stage_by_name,
)


_LOG = get_logger("batch")


def _execute_stage_serialized(
    payload: Tuple[str, Dict[str, Any], Dict[str, Any], Any, Optional[Tuple[str, str]]]
) -> Tuple[bool, Any, float, List[Dict[str, Any]]]:
    """Worker-side single-stage execution (module-level so it pickles on spawn).

    The graph is shipped in insertion-order form (:func:`graph_to_dict`) —
    the cheapest faithful serialization.  Synthesis output is
    insertion-order invariant (the schedulers order operations by graph
    structure, and the content-addressed cache keys rely on exactly that),
    so parallel results match serial ones regardless of the form shipped.
    The upstream artifact rides along pickled by the pool itself.  Returns
    ``(ok, artifact_or_error, elapsed, spans)`` with the worker-measured
    stage time, so per-stage timings — for failures just as for successes —
    are not distorted by pool queueing.  Failures come back as a detached
    exception (formatted traceback attached as a string) rather than
    raising, so they pickle cleanly and carry their timing along.

    ``payload``'s final element is the dispatching engine's trace context —
    ``(serialized SpanContext, abbreviated stage key)`` or ``None`` when
    tracing is off.  With a context, the worker records its stage span into
    a child :class:`TraceRecorder` parented under the dispatcher's span and
    ships the finished spans back (the ``spans`` element) for
    :meth:`TraceRecorder.absorb`, so a pooled solve lands on the same
    timeline as an inline one.

    Warm-start hints (:attr:`BatchJob.warm_hint`) are *not* shipped to the
    pool: they are runtime advice with no effect on cache keys, and an
    unseeded pool solve is merely slower, never wrong.  Callers that rely on
    warm starts (the exploration engine) run inline.
    """
    stage_name, graph_data, config_data, upstream, trace_info = payload
    stage = stage_by_name(stage_name)
    graph = graph_from_dict(graph_data)
    config = FlowConfig.from_dict(config_data)
    context = StageContext(graph=graph, config=config, library=build_library(config))
    child: Optional[TraceRecorder] = None
    token = None
    if trace_info is not None:
        parent = SpanContext.deserialize(trace_info[0])
        if parent is not None:
            child = TraceRecorder(parent=parent)
            token = install_recorder(child)
    start = time.perf_counter()
    try:
        with obs_span(
            f"stage:{stage_name}",
            category="stage",
            stage=stage_name,
            action="ran",
            key=trace_info[1] if trace_info else "",
            worker="process",
        ):
            artifact = stage.run(context, upstream)
    except Exception as exc:  # noqa: BLE001 - shipped back, captured per job
        elapsed = time.perf_counter() - start
        spans = child.serialized_spans() if child is not None else []
        if token is not None:
            uninstall_recorder(token)
        return False, _detached_failure(exc), elapsed, spans
    elapsed = time.perf_counter() - start
    spans = child.serialized_spans() if child is not None else []
    if token is not None:
        uninstall_recorder(token)
    return True, artifact, elapsed, spans


def _error_message(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _detached_failure(exc: BaseException) -> BaseException:
    """A traceback-free copy of ``exc``, safe to memoize and re-raise.

    Storing (or re-raising) the live exception object would pin the failed
    solver run's whole frame stack in the cache and grow the shared object's
    traceback on every re-raise.  The copy keeps the original type when the
    exception reconstructs faithfully from its ``args``; otherwise it falls
    back to a ``RuntimeError`` carrying the formatted message.  The original
    failure's *formatted* traceback travels along as a string — attached as
    an exception note (3.11+) so it prints with the re-raise — preserving
    debuggability without keeping any frame alive.
    """
    try:
        clone = type(exc)(*exc.args)
        if str(clone) != str(exc):
            raise ValueError("lossy reconstruction")
    except Exception:  # noqa: BLE001 - any exotic signature falls back
        clone = RuntimeError(_error_message(exc))
    tb_text = getattr(exc, "_original_traceback", None)
    if tb_text is None and exc.__traceback__ is not None:
        tb_text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    if tb_text:
        clone._original_traceback = tb_text
        if hasattr(clone, "add_note"):  # Python >= 3.11
            clone.add_note("original failure traceback:\n" + tb_text.rstrip())
    return clone


@dataclass
class _PendingJob:
    """Book-keeping for one job that was not fully resolved up front."""

    index: int
    job: BatchJob
    run_key: str
    plan: List[PlannedStage]
    library: DeviceLibrary
    artifacts: List[Any] = field(default_factory=list)
    executions: List[StageExecution] = field(default_factory=list)
    error: Optional[BaseException] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def ran_time_s(self) -> float:
        """Time this job spent on stages it executed itself."""
        return sum(e.wall_time_s for e in self.executions if e.action == "ran")


class BatchSynthesisEngine:
    """Run many independent synthesis jobs with stage caching and parallelism.

    Parameters
    ----------
    max_workers:
        Process count for stage execution.  ``1`` (the default) runs
        inline; higher values fan each tier's unique stage executions out
        over a process pool.
    cache:
        Shared :class:`ResultCache`; a private in-memory cache is created
        when omitted.  Passing an explicit cache lets several engines (or
        repeated CLI invocations via a disk tier) share stage artifacts.
    fail_fast:
        When true, the first job failure raises instead of being recorded in
        the report.
    memoize_failures:
        When true (the default), a failed job's exception is memoized in the
        cache's memory tier and replayed for identical jobs instead of
        re-running the solver.  Only deterministic failures are memoized:
        limit-induced solver failures (:class:`SolverLimitError`) and worker
        crashes are load-dependent, so those always re-run.
    pipeline:
        The staged pipeline to execute; defaults to the standard
        schedule → archsyn → physical chain.
    """

    def __init__(
        self,
        max_workers: int = 1,
        cache: Optional[ResultCache] = None,
        fail_fast: bool = False,
        memoize_failures: bool = True,
        pipeline: Optional[SynthesisPipeline] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.cache = cache if cache is not None else ResultCache()
        self.fail_fast = fail_fast
        self.memoize_failures = memoize_failures
        self.pipeline = pipeline if pipeline is not None else SynthesisPipeline()

    def _record_failure(self, key: str, exc: BaseException) -> None:
        # A SolverLimitError depends on machine load, not on the job's
        # content — an identical re-run may succeed, so it is never memoized.
        if self.memoize_failures and not isinstance(exc, SolverLimitError):
            self.cache.put_failure(key, _detached_failure(exc))

    def _abandon_claim(self, key: str) -> None:
        """Release a single-flight claim the cache may hold on ``key``.

        A plain :class:`ResultCache` has no claims and this is a no-op, but
        the synthesis service wraps the shared cache in a single-flight
        layer (:class:`repro.service.singleflight.SingleFlightCache`) whose
        ``get`` *claims* a missed key: concurrent engine runs then block on
        the claim instead of duplicating the solve.  A successful ``put``
        releases the claim; every path that ends without a ``put`` — a
        failed stage, a fail-fast abort — must call this instead, or the
        waiting run would sit out the claim timeout for an artifact that is
        never coming.
        """
        abandon = getattr(self.cache, "abandon", None)
        if abandon is not None:
            abandon(key)

    def _get_nowait(self, key: str) -> Optional[Any]:
        """A cache lookup that never blocks on another engine's claim.

        Run-level keys are resolved with this instead of ``get``: a job's
        run key stays effectively held for its entire run, so *waiting* on
        one from inside another run could chain into a hold-and-wait cycle
        between concurrent engines.  Treating a foreign in-flight run as a
        plain miss costs only the assembled-result shortcut — the job then
        plans its stages, whose claims are deadlock-free (sorted, per-tier)
        and still deduplicate all real solver work.
        """
        getter = getattr(self.cache, "get_nowait", None)
        return getter(key) if getter is not None else self.cache.get(key)

    # ------------------------------------------------------------------- api
    def run(self, jobs: Sequence[BatchJob]) -> BatchReport:
        """Execute ``jobs`` and return their outcomes in submission order."""
        with obs_span("batch", category="engine", jobs=len(jobs)):
            report = self._run_traced(jobs)
        self._attach_span_summaries(report.outcomes)
        return report

    def _run_traced(self, jobs: Sequence[BatchJob]) -> BatchReport:
        """The body of :meth:`run`, executed inside the batch span."""
        start = time.perf_counter()
        _LOG.info("batch starting: %d job(s), %d worker(s)", len(jobs), self.max_workers)
        stats_before = replace(self.cache.stats)
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        # Tier 0: resolve every job against the failure memo and the
        # assembled-result memory tier, so a warm batch never plans a single
        # stage.  Jobs with identical run-level keys are solved once; the
        # duplicates are aliases of the first.
        pending: List[_PendingJob] = []
        aliases: Dict[str, List[Tuple[int, BatchJob]]] = {}
        for index, job in enumerate(jobs):
            # One canonicalization per job: the fingerprint feeds both the
            # run-level key and (for misses) the stage plan.
            fingerprint = graph_fingerprint(job.graph)
            run_key = cache_key(job.graph, job.config, graph_hash=fingerprint)
            if run_key in aliases:
                # Intra-batch duplicate of a job already planned: it never
                # performs its own lookups, so the stats are not charged
                # twice for work this batch does exactly once.
                aliases[run_key].append((index, job))
                continue
            # The failure memo is consulted before the result tiers so a
            # memoized failure is not also charged as a cache miss.
            known_failure = self.cache.get_failure(run_key)
            if known_failure is not None:
                if self.fail_fast:
                    raise _detached_failure(known_failure)
                outcomes[index] = JobOutcome(
                    job_id=job.job_id,
                    cache_key=run_key,
                    error=_error_message(known_failure),
                    cache_hit=True,
                    graph_name=job.graph.name,
                )
                continue
            cached = self._get_nowait(run_key)
            if cached is not None:
                outcomes[index] = JobOutcome(
                    job_id=job.job_id,
                    cache_key=run_key,
                    result=cached,
                    cache_hit=True,
                    graph_name=job.graph.name,
                )
            else:
                aliases[run_key] = []
                pending.append(
                    _PendingJob(
                        index=index,
                        job=job,
                        run_key=run_key,
                        plan=self.pipeline.plan(
                            job.graph, job.config, graph_hash=fingerprint
                        ),
                        library=build_library(job.config),
                    )
                )

        # Tier 1..N: run the pipeline stage by stage across all pending jobs,
        # then assemble outcomes (and alias copies) in submission order.
        # Run-level keys carry no single-flight claims (tier 0 resolves them
        # via _get_nowait), so there is nothing to release for failed jobs —
        # stage-key claims are managed entirely inside _run_tier.  Plans may
        # differ in length (configs with verify=True carry a fourth stage),
        # so the tier count is the longest plan and shorter jobs simply sit
        # out the extra tiers.
        tiers = max((len(p.plan) for p in pending), default=0)
        for tier in range(tiers):
            with obs_span(f"tier:{tier}", category="engine", tier=tier):
                self._run_tier(tier, pending)

        for p in pending:
            outcomes[p.index] = self._finish_pending(p)
            for alias_index, alias_job in aliases.get(p.run_key, []):
                source = outcomes[p.index]
                # An alias never executed anything itself — it shares the
                # first occurrence's outcome (result or failure alike).
                outcomes[alias_index] = JobOutcome(
                    job_id=alias_job.job_id,
                    cache_key=source.cache_key,
                    result=source.result,
                    error=source.error,
                    cache_hit=True,
                    graph_name=alias_job.graph.name,
                )

        # Snapshot the cache counters as a per-batch delta: the cache may be
        # shared across many batches, and a report must describe its own.
        # delta() iterates the CacheStats fields, so tier or claim counters
        # added later flow into per-batch reports without touching this.
        batch_stats = self.cache.stats.delta(stats_before)
        wall = time.perf_counter() - start
        failed = sum(1 for o in outcomes if o is not None and o.error)
        jobs_metric = obs_metrics.jobs_counter()
        jobs_metric.inc(len(jobs) - failed, state="done")
        if failed:
            jobs_metric.inc(failed, state="failed")
        _LOG.info(
            "batch finished: %d job(s), %d failed, %.3fs", len(jobs), failed, wall
        )
        return BatchReport(
            outcomes=[o for o in outcomes if o is not None],
            wall_time_s=wall,
            max_workers=self.max_workers,
            cache_stats=batch_stats,
        )

    @staticmethod
    def _attach_span_summaries(outcomes: Sequence[Optional[JobOutcome]]) -> None:
        """Embed per-stage span digests into each outcome (tracing only).

        Stage spans carry an abbreviated stage key, and so does every
        :class:`StageExecution`, which is how a job's payload points at the
        exact spans — including spans of stages another job of the batch
        paid for ("shared") — that produced its artifacts.  A no-op while
        tracing is disabled.
        """
        rec = obs_recorder()
        if rec is None:
            return
        by_key: Dict[str, Dict[str, Any]] = {}
        for s in rec.spans():
            if s.category != "stage":
                continue
            key = s.attributes.get("key")
            if not key or s.attributes.get("action") == "claimed":
                continue
            by_key[key] = {
                "name": s.name,
                "duration_s": round(s.duration_s, 6),
                "action": s.attributes.get("action", ""),
                "key": key,
            }
        for outcome in outcomes:
            if outcome is None or not outcome.stages:
                continue
            outcome.spans = [
                dict(by_key[e.key[:16]], action=e.action)
                for e in outcome.stages
                if e.key[:16] in by_key
            ]

    def run_one(self, job: BatchJob) -> SynthesisResult:
        """Convenience wrapper: run a single job and return its result.

        Raises the underlying synthesis error on failure (the single-job
        caller wants the traceback, not a report row).  Execution goes
        through the staged pipeline against the shared cache, so even a
        cold run reuses whatever upstream stage artifacts other jobs left
        behind.
        """
        fingerprint = graph_fingerprint(job.graph)
        run_key = cache_key(job.graph, job.config, graph_hash=fingerprint)
        # Failure memo first, mirroring run(): a replayed failure must not be
        # charged as a cache miss.
        known_failure = self.cache.get_failure(run_key)
        if known_failure is not None:
            # Synthesis is deterministic: re-running an identical failed job
            # would reproduce the same error at full solver cost.  A fresh
            # detached copy is raised so repeated raises cannot pile
            # tracebacks onto one shared object.
            raise _detached_failure(known_failure)
        cached = self._get_nowait(run_key)
        if cached is not None:
            return cached
        try:
            result = self.pipeline.run(
                job.graph, job.config, cache=self.cache, graph_hash=fingerprint
            )
        except Exception as exc:
            # No claims to release here: run-level keys are looked up
            # claim-free (_get_nowait) and the pipeline releases the stage
            # claim of a failed stage itself.
            self._record_failure(run_key, exc)
            raise
        # Memory tier only: the stage artifacts persist individually.
        self.cache.put(run_key, result, disk=False)
        return result

    # -------------------------------------------------------------- internals
    def _run_tier(self, tier: int, pending: List[_PendingJob]) -> None:
        """Resolve stage ``tier`` for every live pending job.

        Cache hits are replayed; the remaining work is grouped by stage key
        (one execution per distinct key, shared by every job in the group)
        and run inline or over the pool.
        """
        by_key: Dict[str, List[_PendingJob]] = {}
        for p in pending:
            if p.failed or tier >= len(p.plan):
                continue
            by_key.setdefault(p.plan[tier].key, []).append(p)
        # Resolve the tier's unique keys in *sorted* order.  Under a
        # single-flight cache a miss claims the key and a foreign claim
        # blocks, so concurrent engines must acquire claims in one global
        # order — two engines visiting overlapping keys in opposite orders
        # would otherwise hold-and-wait on each other (ABBA deadlock) until
        # the claim timeout.  All waits happen against same-tier keys (keys
        # embed the stage name, and claims are released when the tier ends),
        # so sorted acquisition per tier rules the cycle out entirely.
        groups: Dict[str, List[_PendingJob]] = {}
        for stage_key in sorted(by_key):
            group = by_key[stage_key]
            # Every job in a group shares one stage key, and keys embed the
            # stage name, so the group's stage comes off any member's plan.
            stage = group[0].plan[tier].stage
            # The span covers the lookup because, under a single-flight
            # cache, this get may *block* on a foreign claim — the claim
            # wait then nests under this stage span, which is what makes a
            # cross-replica wait attributable in the trace.
            lookup_start = time.perf_counter()
            with obs_span(
                f"stage:{stage.name}",
                category="stage",
                stage=stage.name,
                key=stage_key[:16],
            ) as lookup_span:
                artifact = self.cache.get(stage_key)
                lookup_span.set(
                    action="replayed" if artifact is not None else "claimed"
                )
            if artifact is not None:
                obs_metrics.stage_wall_histogram().observe(
                    time.perf_counter() - lookup_start,
                    stage=stage.name,
                    action="replayed",
                )
                for p in group:
                    p.artifacts.append(artifact)
                    p.executions.append(
                        StageExecution(
                            stage=stage.name,
                            key=stage_key,
                            action="replayed",
                            backend=getattr(artifact, "backend_name", None),
                            fallback_used=getattr(artifact, "fallback_used", False),
                            warm_start_used=getattr(artifact, "warm_start_used", False),
                        )
                    )
            else:
                groups[stage_key] = group
        if not groups:
            return

        # Any stage key whose execution does not end in a cache.put must have
        # its single-flight claim (taken by the miss above) released, or a
        # concurrent engine sharing the cache would wait out the claim
        # timeout.  The finally covers failed stages, fail-fast raises, and
        # keys the aborted inline/pool runners never reached.
        stored: set = set()
        try:
            self._resolve_tier(tier, groups, stored)
        finally:
            for stage_key in groups:
                if stage_key not in stored:
                    self._abandon_claim(stage_key)

    def _resolve_tier(
        self, tier: int, groups: Dict[str, List[_PendingJob]], stored: set
    ) -> None:
        """Execute a tier's unique stage keys and distribute the artifacts.

        ``stored`` collects the stage keys whose artifacts were published to
        the cache, so the caller knows which claims are already released.
        """
        if self.max_workers > 1 and len(groups) > 1:
            executed = self._run_tier_pool(tier, groups)
        else:
            executed = self._run_tier_inline(tier, groups)

        for stage_key, (ok, value, elapsed, crashed) in executed.items():
            group = groups[stage_key]
            stage = group[0].plan[tier].stage
            if ok:
                self.cache.put(stage_key, value)
                stored.add(stage_key)
                obs_metrics.stage_wall_histogram().observe(
                    elapsed, stage=stage.name, action="ran"
                )
                for position, p in enumerate(group):
                    p.artifacts.append(value)
                    p.executions.append(
                        StageExecution(
                            stage=stage.name,
                            key=stage_key,
                            action="ran" if position == 0 else "shared",
                            wall_time_s=elapsed if position == 0 else 0.0,
                            backend=getattr(value, "backend_name", None),
                            fallback_used=getattr(value, "fallback_used", False),
                            warm_start_used=getattr(value, "warm_start_used", False),
                        )
                    )
            else:
                for p in group:
                    p.error = value
                    p.executions.append(
                        StageExecution(
                            stage=stage.name,
                            key=stage_key,
                            action="ran",
                            wall_time_s=elapsed,
                        )
                    )
                    # Infrastructure crashes are not properties of the job's
                    # content — never memoize them; deterministic stage
                    # failures are memoized under each sharing job's run key
                    # so identical future jobs replay the error solver-free.
                    if not crashed:
                        self._record_failure(p.run_key, value)
                if self.fail_fast:
                    raise _detached_failure(value)

    def _run_tier_inline(
        self, tier: int, groups: Dict[str, List[_PendingJob]]
    ) -> Dict[str, Tuple[bool, Any, float, bool]]:
        executed: Dict[str, Tuple[bool, Any, float, bool]] = {}
        for stage_key, group in groups.items():
            rep = group[0]
            stage = rep.plan[tier].stage
            upstream = stage.upstream_for(rep.artifacts)
            context = StageContext(
                graph=rep.job.graph,
                config=rep.job.config,
                library=rep.library,
                warm_start=rep.job.warm_hint,
            )
            start = time.perf_counter()
            try:
                with obs_span(
                    f"stage:{stage.name}",
                    category="stage",
                    stage=stage.name,
                    action="ran",
                    key=stage_key[:16],
                ):
                    artifact = stage.run(context, upstream)
            except Exception as exc:  # noqa: BLE001 - captured per job
                executed[stage_key] = (False, exc, time.perf_counter() - start, False)
                if self.fail_fast:
                    # The caller memoizes and raises; skip the doomed rest.
                    return executed
            else:
                executed[stage_key] = (True, artifact, time.perf_counter() - start, False)
        return executed

    def _run_tier_pool(
        self, tier: int, groups: Dict[str, List[_PendingJob]]
    ) -> Dict[str, Tuple[bool, Any, float, bool]]:
        executed: Dict[str, Tuple[bool, Any, float, bool]] = {}
        workers = min(self.max_workers, len(groups))
        # The dispatching side of trace propagation: every pool payload
        # carries the current span context so worker-recorded spans parent
        # under this tier's span.
        context_info = current_context()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_info = {}
            for stage_key, group in groups.items():
                rep = group[0]
                stage = rep.plan[tier].stage
                upstream = stage.upstream_for(rep.artifacts)
                payload = (
                    stage.name,
                    graph_to_dict(rep.job.graph),
                    rep.job.config.to_dict(),
                    upstream,
                    (context_info.serialize(), stage_key[:16])
                    if context_info is not None
                    else None,
                )
                future = pool.submit(_execute_stage_serialized, payload)
                future_info[future] = (stage_key, time.perf_counter())
            # Collect as futures complete; artifacts are keyed by stage key,
            # so determinism of the report does not depend on this order.
            for future in as_completed(future_info):
                stage_key, submit_time = future_info[future]
                try:
                    ok, value, elapsed, child_spans = future.result()
                    crashed = False
                    if child_spans:
                        rec = obs_recorder()
                        if rec is not None:
                            rec.absorb(child_spans)
                except Exception as exc:  # noqa: BLE001 - worker/pickling crash
                    # A stage-level failure comes back tagged; reaching here
                    # means the worker itself died (OOM-kill, broken pool),
                    # so only queue-side timing exists.  Artifacts of earlier
                    # tiers are already in the cache, so the next run resumes
                    # from the last completed stage instead of starting over.
                    ok = False
                    crashed = True
                    value = exc
                    elapsed = time.perf_counter() - submit_time
                if not ok and self.fail_fast:
                    # Abort for real: drop queued stages so the pool's
                    # __exit__ does not sit out every remaining solve.
                    # Deterministic failures are still memoized by the
                    # caller via the executed map before it raises.
                    executed[stage_key] = (ok, value, elapsed, crashed)
                    pool.shutdown(wait=False, cancel_futures=True)
                    return executed
                executed[stage_key] = (ok, value, elapsed, crashed)
        return executed

    def _finish_pending(self, p: _PendingJob) -> JobOutcome:
        if p.failed:
            return JobOutcome(
                job_id=p.job.job_id,
                cache_key=p.run_key,
                error=_error_message(p.error),
                wall_time_s=p.ran_time_s(),
                graph_name=p.job.graph.name,
                stages=list(p.executions),
            )
        schedule_art, arch_art, physical_art = p.artifacts[:3]
        result = SynthesisResult.from_artifacts(
            graph=p.job.graph,
            library=p.library,
            config=p.job.config,
            schedule_artifact=schedule_art,
            architecture_artifact=arch_art,
            physical_artifact=physical_art,
            verification_artifact=p.artifacts[3] if len(p.artifacts) > 3 else None,
        )
        # Memory tier only: the stage artifacts persist individually.
        self.cache.put(p.run_key, result, disk=False)
        ran_any = any(e.action == "ran" for e in p.executions)
        return JobOutcome(
            job_id=p.job.job_id,
            cache_key=p.run_key,
            result=result,
            cache_hit=not ran_any,
            wall_time_s=p.ran_time_s(),
            graph_name=p.job.graph.name,
            stages=list(p.executions),
        )
