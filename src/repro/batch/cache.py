"""Content-addressed artifact cache: in-memory LRU + pluggable durable tiers.

Since the staged-pipeline refactor the cache stores two kinds of entries
under one namespace of SHA-256 keys:

* **stage artifacts** (:mod:`repro.synthesis.pipeline`) under their stage
  keys — ``hash(upstream artifact hash + the config slice the stage
  consumes)`` — so a parameter sweep that only touches routing or
  physical-design knobs replays the untouched upstream stages;
* **assembled results** (:class:`~repro.synthesis.flow.SynthesisResult`)
  under the run-level key of :func:`cache_key` — kept in the memory tier
  only, since they are thin views over stage artifacts that already
  persist individually.

Every synthesis engine is deterministic, so equal keys mean equal content.
Two graphs built in different node orders hash equal; changing any duration,
edge, or config knob changes the key.

The cache is a tier chain:

* an in-memory LRU dictionary bounded by ``max_entries`` — the hot tier that
  serves repeated experiment runs within one process, always present;
* zero or more durable :class:`~repro.batch.cache_backends.CacheTier`
  instances built by the named backend from the
  :mod:`repro.batch.cache_backends` registry — ``memory`` (none), ``disk``
  (pickled envelope files, atomic writes), or ``shared`` (an optional disk
  tier in front of a networked key-value daemon, pooling artifacts across
  ``repro serve`` replicas).  Lookups fall through the chain front to back;
  a tier hit is promoted into memory; durable writes go through to every
  tier.  Durable entries carry a ``(KEY_VERSION, payload)`` envelope, so a
  stale or corrupt tier degrades to misses — it never crashes a run or,
  worse, replays a payload with outdated semantics.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro import keys
from repro.batch.cache_backends import (
    CacheBackendOptions,
    CacheTier,
    get_cache_backend,
)
from repro.graph.sequencing_graph import SequencingGraph
from repro.keys import stable_digest
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.synthesis.config import RUNTIME_ADVICE_FIELDS, FlowConfig
from repro.synthesis.pipeline import graph_fingerprint

# The version constant itself lives in repro.keys so run-level and
# stage-level keys share one source of truth; it is always read through the
# module attribute (keys.KEY_VERSION), never copied, so a bump invalidates
# every key kind at once.


def cache_key(
    graph: SequencingGraph,
    config: FlowConfig,
    graph_hash: Optional[str] = None,
) -> str:
    """Stable hex digest identifying a ``(graph, config)`` synthesis job.

    The run-level key over the complete pair — used for failure memoization
    and intra-batch job aliasing.  (Stage-granular reuse uses the per-stage
    keys of :meth:`repro.synthesis.pipeline.SynthesisPipeline.plan`, which
    hash only the config slice each stage consumes.)  The graph enters via
    the same canonical :func:`~repro.synthesis.pipeline.graph_fingerprint`
    the stage keys build on — insertion order does not matter, and the
    graph *name* is deliberately excluded: renaming an assay does not
    change what gets synthesized.  Callers that already computed the
    fingerprint pass it as ``graph_hash`` to skip re-canonicalizing.
    Runtime-advice fields (``verify_workers``) are excluded too — they
    change how fast the result arrives, never what it is.
    """
    config_payload = config.to_dict()
    for advice_field in RUNTIME_ADVICE_FIELDS:
        config_payload.pop(advice_field, None)
    payload = {
        "version": keys.KEY_VERSION,
        "graph": graph_hash if graph_hash is not None else graph_fingerprint(graph),
        "config": config_payload,
    }
    return stable_digest(payload)


@dataclass
class CacheStats:
    """Hit/miss and single-flight counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    shared_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Single-flight claims this process acquired (local or cross-process).
    claims: int = 0
    #: Times a lookup blocked on a claim held by another thread or process.
    claim_waits: int = 0
    #: Claims inherited from a presumed-dead claimant (local thread timeout
    #: or a remote lease that expired).
    takeovers: int = 0

    @property
    def hits(self) -> int:
        """Total hits across every tier."""
        return self.memory_hits + self.disk_hits + self.shared_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a tier (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Counters plus derived totals, JSON-ready for reports/endpoints."""
        payload: Dict[str, Any] = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        payload["hits"] = self.hits
        payload["lookups"] = self.lookups
        payload["hit_rate"] = self.hit_rate
        return payload

    def delta(self, before: "CacheStats") -> "CacheStats":
        """Field-wise ``self - before``: the activity between two snapshots.

        Iterates the dataclass fields so a future counter cannot be
        silently dropped from per-batch deltas.
        """
        return CacheStats(
            **{
                field.name: getattr(self, field.name) - getattr(before, field.name)
                for field in dataclasses.fields(self)
            }
        )


class ResultCache:
    """Tiered (memory LRU + pluggable durable tiers) content-addressed cache.

    Parameters
    ----------
    max_entries:
        Bound on the in-memory tier; least-recently-used entries are evicted
        first.  ``None`` means unbounded.
    cache_dir:
        Directory for the on-disk tier; consumed by the ``disk`` and
        ``shared`` backends.
    backend:
        Name from the :mod:`repro.batch.cache_backends` registry.  ``None``
        keeps the historical behavior: ``disk`` when a ``cache_dir`` is
        given, plain ``memory`` otherwise.
    cache_addr:
        ``host:port`` of a ``repro cache-daemon``; required by the
        ``shared`` backend.
    request_timeout_s:
        Per-request timeout of the networked tier.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 256,
        cache_dir: Optional[Union[str, Path]] = None,
        backend: Optional[str] = None,
        cache_addr: Optional[str] = None,
        request_timeout_s: float = 10.0,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.backend_name = backend or (
            "disk" if cache_dir is not None else "memory"
        )
        options = CacheBackendOptions(
            cache_dir=cache_dir,
            cache_addr=cache_addr,
            request_timeout_s=request_timeout_s,
        )
        #: Ordered durable tiers behind the memory LRU (may be empty).
        self.tiers: List[CacheTier] = get_cache_backend(
            self.backend_name
        ).build_tiers(options)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        # Keys inserted with put(..., disk=False): thin views over artifacts
        # that persist individually, deliberately excluded from the durable
        # tiers — and therefore also from flush_to_disk().
        self._memory_only: set = set()
        # Failed jobs are memoized in memory only (never durably): synthesis
        # is deterministic, so re-running an identical failed job in the same
        # process just burns a solver run to reproduce the same error.  The
        # exception object itself is kept so callers can re-raise it with its
        # original type and traceback.
        self._failures: Dict[str, BaseException] = {}

    # ------------------------------------------------------------------- api
    @property
    def claim_tier(self) -> Optional[CacheTier]:
        """The first tier that arbitrates cross-process claims, or ``None``.

        :class:`~repro.service.singleflight.SingleFlightCache` consults this
        to decide whether a local miss must also negotiate a claim with the
        shared daemon before computing.
        """
        for tier in self.tiers:
            if tier.supports_claims:
                return tier
        return None

    def get(self, key: str) -> Optional[Any]:
        """Look ``key`` up through the tier chain; ``None`` on a miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            obs_metrics.cache_hits_counter().inc(tier="memory")
            return self._memory[key]
        for tier in self.tiers:
            with obs_span("cache:get", category="cache", tier=tier.kind) as tier_span:
                value = tier.get(key)
                tier_span.set(hit=value is not None, key=key[:16])
            if value is not None:
                if tier.kind == "shared":
                    self.stats.shared_hits += 1
                else:
                    self.stats.disk_hits += 1
                obs_metrics.cache_hits_counter().inc(tier=tier.kind)
                self._store_memory(key, value)
                return value
        self.stats.misses += 1
        obs_metrics.cache_misses_counter().inc()
        return None

    def put(self, key: str, value: Any, disk: bool = True) -> None:
        """Insert into the memory tier and (if any) every durable tier.

        ``disk=False`` keeps an entry memory-only even when durable tiers
        are configured — used for assembled :class:`SynthesisResult` views,
        whose stage artifacts already persist individually (writing the view
        too would double every result's durable footprint).
        """
        self.stats.stores += 1
        self._store_memory(key, value)
        if disk:
            self._memory_only.discard(key)
            for tier in self.tiers:
                tier.put(key, value)
        else:
            self._memory_only.add(key)

    def flush_to_disk(self) -> int:
        """Re-publish durable memory entries a tier does not yet hold.

        The safety net behind the synthesis service's graceful shutdown:
        normal ``put`` calls write through immediately, but a write may
        have soft-failed (full disk, unreachable daemon).  Each tier tracks
        the keys it successfully wrote or observed, and the flush rewrites
        only the *dirty* remainder — an entry the live tier already
        persisted is not written a second time.  Entries stored with
        ``disk=False`` (assembled result views) are skipped; their stage
        artifacts persist individually.  Returns the number of entries
        written to at least one tier; a cache without durable tiers flushes
        nothing.
        """
        if not self.tiers:
            return 0
        written = 0
        for key, value in list(self._memory.items()):
            if key in self._memory_only:
                continue
            wrote = False
            for tier in self.tiers:
                if tier.is_clean(key):
                    continue
                if tier.put(key, value):
                    wrote = True
            if wrote:
                written += 1
        return written

    def put_failure(self, key: str, error: BaseException) -> None:
        """Memoize a failed job's exception (memory tier only)."""
        self._failures[key] = error

    def get_failure(self, key: str) -> Optional[BaseException]:
        """The memoized exception for ``key``, or ``None``."""
        return self._failures.get(key)

    def contains(self, key: str) -> bool:
        """Membership test that does not touch the stats or LRU order."""
        if key in self._memory:
            return True
        return any(tier.contains(key) for tier in self.tiers)

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and every durable tier with ``disk=True``)."""
        self._memory.clear()
        self._memory_only.clear()
        self._failures.clear()
        if disk:
            for tier in self.tiers:
                tier.clear()

    def close(self) -> None:
        """Close every durable tier (sockets, handles); memory is untouched."""
        for tier in self.tiers:
            tier.close()

    def tier_counters(self) -> List[Dict[str, Any]]:
        """Per-tier write counters, JSON-ready for the stats endpoints."""
        return [
            {"kind": tier.kind, "writes": tier.writes} for tier in self.tiers
        ]

    def __len__(self) -> int:
        return len(self._memory)

    # -------------------------------------------------------------- internals
    def _store_memory(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                evicted, _ = self._memory.popitem(last=False)
                self._memory_only.discard(evicted)
                self.stats.evictions += 1
