"""Content-addressed artifact cache: in-memory LRU tier + optional disk tier.

Since the staged-pipeline refactor the cache stores two kinds of entries
under one namespace of SHA-256 keys:

* **stage artifacts** (:mod:`repro.synthesis.pipeline`) under their stage
  keys — ``hash(upstream artifact hash + the config slice the stage
  consumes)`` — so a parameter sweep that only touches routing or
  physical-design knobs replays the untouched upstream stages;
* **assembled results** (:class:`~repro.synthesis.flow.SynthesisResult`)
  under the run-level key of :func:`cache_key` — kept in the memory tier
  only, since they are thin views over stage artifacts that already live on
  disk.

Every synthesis engine is deterministic, so equal keys mean equal content.
Two graphs built in different node orders hash equal; changing any duration,
edge, or config knob changes the key.

The cache is two-tiered:

* an in-memory LRU dictionary bounded by ``max_entries`` — the hot tier that
  serves repeated experiment runs within one process;
* an optional on-disk tier (``cache_dir``) holding pickled entries, so warm
  re-runs of a batch manifest survive process restarts.  Disk entries are
  wrapped in a ``(KEY_VERSION, payload)`` envelope; an entry written by an
  older (or newer) key version is ignored and dropped — a stale cache
  directory degrades to misses, it never crashes a run or, worse, replays a
  payload with outdated semantics.  Disk hits are promoted into the memory
  tier.
"""

from __future__ import annotations

import os
import pickle
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro import keys
from repro.graph.sequencing_graph import SequencingGraph
from repro.keys import stable_digest
from repro.synthesis.config import FlowConfig
from repro.synthesis.pipeline import graph_fingerprint

# The version constant itself lives in repro.keys so run-level and
# stage-level keys share one source of truth; it is always read through the
# module attribute (keys.KEY_VERSION), never copied, so a bump invalidates
# every key kind at once.


def cache_key(
    graph: SequencingGraph,
    config: FlowConfig,
    graph_hash: Optional[str] = None,
) -> str:
    """Stable hex digest identifying a ``(graph, config)`` synthesis job.

    The run-level key over the complete pair — used for failure memoization
    and intra-batch job aliasing.  (Stage-granular reuse uses the per-stage
    keys of :meth:`repro.synthesis.pipeline.SynthesisPipeline.plan`, which
    hash only the config slice each stage consumes.)  The graph enters via
    the same canonical :func:`~repro.synthesis.pipeline.graph_fingerprint`
    the stage keys build on — insertion order does not matter, and the
    graph *name* is deliberately excluded: renaming an assay does not
    change what gets synthesized.  Callers that already computed the
    fingerprint pass it as ``graph_hash`` to skip re-canonicalizing.
    """
    payload = {
        "version": keys.KEY_VERSION,
        "graph": graph_hash if graph_hash is not None else graph_fingerprint(graph),
        "config": config.to_dict(),
    }
    return stable_digest(payload)


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a tier (0.0 with no lookups)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Two-tier (memory LRU + optional disk) content-addressed cache.

    Parameters
    ----------
    max_entries:
        Bound on the in-memory tier; least-recently-used entries are evicted
        first.  ``None`` means unbounded.
    cache_dir:
        Directory for the persistent tier; ``None`` disables it.  Entries are
        stored as ``<digest>.pkl`` files; sharding is unnecessary at the
        evaluation's scale.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 256,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        # Keys inserted with put(..., disk=False): thin views over artifacts
        # that persist individually, deliberately excluded from the disk
        # tier — and therefore also from flush_to_disk().
        self._memory_only: set = set()
        # Failed jobs are memoized in memory only (never on disk): synthesis
        # is deterministic, so re-running an identical failed job in the same
        # process just burns a solver run to reproduce the same error.  The
        # exception object itself is kept so callers can re-raise it with its
        # original type and traceback.
        self._failures: Dict[str, BaseException] = {}

    # ------------------------------------------------------------------- api
    def get(self, key: str) -> Optional[Any]:
        """Look ``key`` up in both tiers; ``None`` on a miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        value = self._load_from_disk(key)
        if value is not None:
            self.stats.disk_hits += 1
            self._store_memory(key, value)
            return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value: Any, disk: bool = True) -> None:
        """Insert into the memory tier and (if configured) the disk tier.

        ``disk=False`` keeps an entry memory-only even when a ``cache_dir``
        is configured — used for assembled :class:`SynthesisResult` views,
        whose stage artifacts already persist individually (writing the view
        too would double every result's disk footprint).
        """
        self.stats.stores += 1
        self._store_memory(key, value)
        if disk:
            self._memory_only.discard(key)
            if self.cache_dir is not None:
                self._write_disk(key, value)
        else:
            self._memory_only.add(key)

    def flush_to_disk(self) -> int:
        """Write durable memory-tier entries missing from the disk tier.

        The safety net behind the synthesis service's graceful shutdown:
        normal ``put`` calls write through to disk immediately, but a write
        may have soft-failed (full disk, revoked permissions) or an entry
        may have been deleted out from under the process.  Flushing
        re-publishes every durable entry whose ``<key>.pkl`` file is absent,
        so a restarted server resumes from the last completed stage instead
        of re-solving it.  Entries stored with ``disk=False`` (assembled
        result views) are skipped — their stage artifacts persist
        individually.  Returns the number of entries written; a cache
        without a disk tier flushes nothing.
        """
        if self.cache_dir is None:
            return 0
        written = 0
        for key, value in list(self._memory.items()):
            if key in self._memory_only or self._disk_path(key).exists():
                continue
            if self._write_disk(key, value):
                written += 1
        return written

    def put_failure(self, key: str, error: BaseException) -> None:
        """Memoize a failed job's exception (memory tier only)."""
        self._failures[key] = error

    def get_failure(self, key: str) -> Optional[BaseException]:
        """The memoized exception for ``key``, or ``None``."""
        return self._failures.get(key)

    def contains(self, key: str) -> bool:
        """Membership test that does not touch the stats or LRU order."""
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._disk_path(key).exists()

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``)."""
        self._memory.clear()
        self._memory_only.clear()
        self._failures.clear()
        if disk and self.cache_dir is not None:
            for path in self.cache_dir.glob("*.pkl"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    # -------------------------------------------------------------- internals
    def _store_memory(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                evicted, _ = self._memory.popitem(last=False)
                self._memory_only.discard(evicted)
                self.stats.evictions += 1

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _write_disk(self, key: str, value: Any) -> bool:
        """Atomically publish one entry to the disk tier; ``True`` on success."""
        path = self._disk_path(key)
        # Unique temp name per writer: several processes may share a
        # cache_dir and solve the same miss concurrently; each must
        # publish atomically without trampling the other's staging file.
        tmp = path.with_name(f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            envelope = (keys.KEY_VERSION, value)
            tmp.write_bytes(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
            tmp.replace(path)  # atomic so readers never see partial files
        except OSError:
            # The disk tier is an optimization: a full disk or revoked
            # permissions must not abort a batch whose solve already
            # succeeded (reads treat bad entries as misses, symmetrically).
            tmp.unlink(missing_ok=True)
            return False
        return True

    def _load_from_disk(self, key: str) -> Optional[Any]:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            envelope = pickle.loads(path.read_bytes())
        except Exception:  # noqa: BLE001 - a corrupt entry is just a miss
            path.unlink(missing_ok=True)
            return None
        # Entries from another key version (including pre-envelope v1 files,
        # which unpickle as a bare object) are stale by definition: the
        # payload's semantics may have changed.  Treat them as misses and
        # drop them so the directory converges to the current version.
        if (
            not isinstance(envelope, tuple)
            or len(envelope) != 2
            or envelope[0] != keys.KEY_VERSION
        ):
            path.unlink(missing_ok=True)
            return None
        return envelope[1]
