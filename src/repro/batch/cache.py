"""Content-addressed result cache: in-memory LRU tier + optional disk tier.

A synthesis job is fully determined by its sequencing graph and its
:class:`~repro.synthesis.config.FlowConfig` (every engine in the flow is
deterministic), so results are cached under a SHA-256 digest of the
canonically-serialized pair.  Two graphs built in different node orders hash
equal; changing any duration, edge, or config knob changes the key.

The cache is two-tiered:

* an in-memory LRU dictionary bounded by ``max_entries`` — the hot tier that
  serves repeated experiment runs within one process;
* an optional on-disk tier (``cache_dir``) holding pickled
  :class:`~repro.synthesis.flow.SynthesisResult` objects, so warm re-runs of
  a batch manifest survive process restarts.  Disk entries are promoted into
  the memory tier on hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from repro.graph.sequencing_graph import SequencingGraph
from repro.graph.serialization import canonical_graph_dict
from repro.synthesis.config import FlowConfig
from repro.synthesis.flow import SynthesisResult

#: Bump when the cached payload's semantics change (invalidates old entries).
_KEY_VERSION = 1


def cache_key(graph: SequencingGraph, config: FlowConfig) -> str:
    """Stable hex digest identifying a ``(graph, config)`` synthesis job.

    The graph is serialized in canonical (sorted) form so insertion order
    does not matter; the config is serialized field-by-field with enums as
    strings.  The graph *name* is deliberately excluded — renaming an assay
    does not change what gets synthesized.
    """
    graph_payload = canonical_graph_dict(graph)
    graph_payload.pop("name", None)
    payload = {
        "version": _KEY_VERSION,
        "graph": graph_payload,
        "config": config.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Two-tier (memory LRU + optional disk) cache of synthesis results.

    Parameters
    ----------
    max_entries:
        Bound on the in-memory tier; least-recently-used entries are evicted
        first.  ``None`` means unbounded.
    cache_dir:
        Directory for the persistent tier; ``None`` disables it.  Entries are
        stored as ``<digest>.pkl`` files; sharding is unnecessary at the
        evaluation's scale.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 128,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, SynthesisResult]" = OrderedDict()
        # Failed jobs are memoized in memory only (never on disk): synthesis
        # is deterministic, so re-running an identical failed job in the same
        # process just burns a solver run to reproduce the same error.  The
        # exception object itself is kept so callers can re-raise it with its
        # original type and traceback.
        self._failures: Dict[str, BaseException] = {}

    # ------------------------------------------------------------------- api
    def get(self, key: str) -> Optional[SynthesisResult]:
        """Look ``key`` up in both tiers; ``None`` on a miss."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        result = self._load_from_disk(key)
        if result is not None:
            self.stats.disk_hits += 1
            self._store_memory(key, result)
            return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: SynthesisResult) -> None:
        """Insert into the memory tier and (if configured) the disk tier."""
        self.stats.stores += 1
        self._store_memory(key, result)
        if self.cache_dir is not None:
            path = self._disk_path(key)
            # Unique temp name per writer: several processes may share a
            # cache_dir and solve the same miss concurrently; each must
            # publish atomically without trampling the other's staging file.
            tmp = path.with_name(f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
            try:
                tmp.write_bytes(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
                tmp.replace(path)  # atomic so readers never see partial files
            except OSError:
                # The disk tier is an optimization: a full disk or revoked
                # permissions must not abort a batch whose solve already
                # succeeded (reads treat bad entries as misses, symmetrically).
                tmp.unlink(missing_ok=True)

    def put_failure(self, key: str, error: BaseException) -> None:
        """Memoize a failed job's exception (memory tier only)."""
        self._failures[key] = error

    def get_failure(self, key: str) -> Optional[BaseException]:
        """The memoized exception for ``key``, or ``None``."""
        return self._failures.get(key)

    def contains(self, key: str) -> bool:
        """Membership test that does not touch the stats or LRU order."""
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._disk_path(key).exists()

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier with ``disk=True``)."""
        self._memory.clear()
        self._failures.clear()
        if disk and self.cache_dir is not None:
            for path in self.cache_dir.glob("*.pkl"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    # -------------------------------------------------------------- internals
    def _store_memory(self, key: str, result: SynthesisResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        if self.max_entries is not None:
            while len(self._memory) > self.max_entries:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.pkl"

    def _load_from_disk(self, key: str) -> Optional[SynthesisResult]:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            return pickle.loads(path.read_bytes())
        except Exception:  # noqa: BLE001 - a corrupt entry is just a miss
            path.unlink(missing_ok=True)
            return None
