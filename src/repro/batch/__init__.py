"""Stage-granular batch-synthesis engine with content-addressed caching.

The paper's whole evaluation (Table 2, Figs. 8-11) is a *batch* of
independent assay syntheses, and each synthesis is a staged pipeline
(schedule → architecture → physical design).  This package exploits both
structures:

* :class:`~repro.batch.jobs.BatchJob` — one ``(graph, config)`` synthesis
  request, loadable from a JSON manifest (``repro batch manifest.json``) or
  expanded from a parameter grid (``repro sweep spec.json``,
  :func:`~repro.batch.jobs.expand_sweep`);
* :class:`~repro.batch.cache.ResultCache` — a content-addressed cache with
  an in-memory LRU tier and pluggable durable tiers behind it (the
  ``memory``/``disk``/``shared`` backends of
  :mod:`repro.batch.cache_backends`), holding per-stage artifacts (keyed
  by ``hash(upstream hash + the config slice the stage consumes)``) as
  well as assembled results;
* :class:`~repro.batch.engine.BatchSynthesisEngine` — executes jobs stage
  by stage with cross-job sharing (sweep points that agree on a prefix of
  the pipeline solve it once), per-tier process-pool parallelism, and
  resume-from-last-completed-stage after a crash;
* :class:`~repro.batch.report.BatchReport` — per-job makespan / grid size /
  wall-clock aggregation plus the per-stage ran/replayed/shared breakdown.

The experiment drivers (``repro.experiments``) and the CLI both go through
this engine, so a warm-cache re-run of the paper evaluation performs zero
solver invocations — and a sweep that only changes physical-design knobs
performs exactly one scheduling solve.
"""

from repro.batch.cache import CacheStats, ResultCache, cache_key
from repro.batch.cache_backends import (
    cache_backend_names,
    get_cache_backend,
    register_cache_backend,
)
from repro.batch.engine import BatchSynthesisEngine
from repro.batch.jobs import (
    BatchJob,
    expand_sweep,
    job_from_spec,
    load_manifest,
    load_sweep,
    manifest_jobs,
)
from repro.batch.report import (
    BatchReport,
    JobOutcome,
    format_batch_report,
    format_stage_summary,
)

__all__ = [
    "BatchJob",
    "BatchReport",
    "BatchSynthesisEngine",
    "CacheStats",
    "JobOutcome",
    "ResultCache",
    "cache_backend_names",
    "cache_key",
    "expand_sweep",
    "get_cache_backend",
    "register_cache_backend",
    "format_batch_report",
    "format_stage_summary",
    "job_from_spec",
    "load_manifest",
    "load_sweep",
    "manifest_jobs",
]
