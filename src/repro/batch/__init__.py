"""Parallel batch-synthesis engine with content-addressed result caching.

The paper's whole evaluation (Table 2, Figs. 8-11) is a *batch* of
independent assay syntheses.  This package turns that observation into the
repo's service-shaped core:

* :class:`~repro.batch.jobs.BatchJob` — one ``(graph, config)`` synthesis
  request, loadable from a JSON manifest (``repro batch manifest.json``);
* :class:`~repro.batch.cache.ResultCache` — a content-addressed cache keyed
  by a stable hash of the canonically-serialized graph plus the flow
  configuration, with an in-memory LRU tier and an optional on-disk tier;
* :class:`~repro.batch.engine.BatchSynthesisEngine` — fans jobs out over a
  ``ProcessPoolExecutor`` (or runs them inline for ``max_workers=1``) with
  deterministic result ordering, consulting the cache before dispatching;
* :class:`~repro.batch.report.BatchReport` — per-job makespan / grid size /
  wall-clock aggregation in the style of ``repro.synthesis.report``.

The experiment drivers (``repro.experiments``) and the CLI both go through
this engine, so a warm-cache re-run of the paper evaluation performs zero
solver invocations.
"""

from repro.batch.cache import CacheStats, ResultCache, cache_key
from repro.batch.engine import BatchSynthesisEngine
from repro.batch.jobs import BatchJob, job_from_spec, load_manifest
from repro.batch.report import BatchReport, JobOutcome, format_batch_report

__all__ = [
    "BatchJob",
    "BatchReport",
    "BatchSynthesisEngine",
    "CacheStats",
    "JobOutcome",
    "ResultCache",
    "cache_key",
    "format_batch_report",
    "job_from_spec",
    "load_manifest",
]
