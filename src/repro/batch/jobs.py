"""Batch job descriptions and JSON manifest loading.

A manifest describes a batch of synthesis jobs::

    {
      "defaults": {"transport_time": 10},
      "jobs": [
        {"assay": "PCR"},
        {"assay": "IVD", "config": {"num_detectors": 2}},
        {"protocol": "my_assay.json", "id": "custom", "config": {"num_mixers": 3}},
        {"generator": "random_assay", "num_operations": 70, "seed": 3}
      ]
    }

Each job names a built-in paper assay (``"assay"``), a sequencing-graph
JSON file (``"protocol"``, resolved relative to the manifest), or an inline
synthetic-generator spec (``"generator"`` naming a registered generator from
:mod:`repro.graph.generators`; every key besides ``id``/``config`` is a
generator parameter).  ``defaults`` and the per-job ``config`` are
:meth:`~repro.synthesis.config.FlowConfig.from_dict` payloads; per-job keys
override the defaults.  Jobs naming a paper assay start from
:meth:`FlowConfig.paper_defaults_for` so a bare ``{"assay": "RA100"}`` gets
the paper's per-assay device counts and grid size.  A top-level JSON list is
accepted as shorthand for ``{"jobs": [...]}``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.graph.generators import generated_graph, generator_spec_id
from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.graph.sequencing_graph import SequencingGraph
from repro.graph.serialization import load_graph
from repro.keys import stable_digest
from repro.synthesis.config import FlowConfig


@dataclass
class BatchJob:
    """One synthesis request: a sequencing graph plus its flow configuration.

    ``warm_hint`` optionally carries a known-good schedule of the *same
    graph* (typically from a neighboring configuration in an exploration
    sweep) that the schedule stage translates into a solver warm start.  It
    is runtime advice, not part of the problem: cache keys are computed from
    the graph and config alone, so two jobs differing only in their hint
    share one cached artifact.  Hints ride the inline execution tier only —
    the process pool ships serialized payloads and skips them (a pool solve
    is merely unseeded, never wrong).
    """

    job_id: str
    graph: SequencingGraph
    config: FlowConfig
    warm_hint: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")


def job_from_spec(
    spec: Dict[str, Any],
    defaults: Optional[Dict[str, Any]] = None,
    base_dir: Optional[Path] = None,
    index: int = 0,
    graph_cache: Optional[Dict[str, SequencingGraph]] = None,
) -> BatchJob:
    """Build one :class:`BatchJob` from a manifest entry.

    ``graph_cache`` (digest → graph) memoizes generator *and* assay graphs
    across calls: generation is seeded and deterministic but superlinear in
    size, so callers building many jobs over the same workload — the
    exploration engine crosses one workload with a whole axes grid — pass a
    dict here and pay for each distinct workload once.  Graphs are treated
    as immutable everywhere downstream, so sharing one object across jobs
    is safe — and sharing also lets per-graph scratch state (the list
    scheduler's workspace) key off object identity.

    Raises
    ------
    ValueError
        If the entry does not name exactly one of ``assay`` / ``protocol`` /
        ``generator``, names an unknown assay or generator, or carries
        invalid config keys.
    """
    assay = spec.get("assay")
    protocol = spec.get("protocol")
    generator = spec.get("generator")
    sources = [bool(assay), bool(protocol), bool(generator)]
    if sum(sources) != 1:
        raise ValueError(
            f"job {index}: exactly one of 'assay', 'protocol' or 'generator' "
            f"is required, got {spec!r}"
        )
    if generator:
        # Every non-reserved key of a generator job is a generator
        # parameter; the generator itself rejects unknown parameters.
        generator_spec = {
            key: value for key, value in spec.items() if key not in ("id", "config")
        }
        cache_key = (
            stable_digest({"generator_spec": generator_spec})
            if graph_cache is not None
            else None
        )
        graph = graph_cache.get(cache_key) if cache_key is not None else None
        if graph is None:
            try:
                graph = generated_graph(generator_spec)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"job {index}: {exc}") from exc
            if cache_key is not None:
                graph_cache[cache_key] = graph
        base_config = FlowConfig().to_dict()
        default_id = generator_spec_id(generator_spec)
    elif assay:
        unknown = set(spec) - {"assay", "id", "config"}
        if unknown:
            raise ValueError(f"job {index}: unknown keys {sorted(unknown)}")
        if assay not in PAPER_ASSAYS:
            raise ValueError(
                f"job {index}: unknown assay {assay!r} (choose from {sorted(PAPER_ASSAYS)})"
            )
        cache_key = (
            stable_digest({"assay": assay}) if graph_cache is not None else None
        )
        graph = graph_cache.get(cache_key) if cache_key is not None else None
        if graph is None:
            graph = assay_by_name(assay)
            if cache_key is not None:
                graph_cache[cache_key] = graph
        base_config = FlowConfig.paper_defaults_for(assay).to_dict()
        default_id = assay
    else:
        unknown = set(spec) - {"protocol", "id", "config"}
        if unknown:
            raise ValueError(f"job {index}: unknown keys {sorted(unknown)}")
        path = Path(protocol)
        if base_dir is not None and not path.is_absolute():
            path = base_dir / path
        if not path.exists():
            raise ValueError(f"job {index}: protocol file {path} does not exist")
        graph = load_graph(path)
        base_config = FlowConfig().to_dict()
        default_id = graph.name or path.stem

    overrides = dict(defaults or {})
    overrides.update(spec.get("config") or {})
    base_config.update(overrides)
    try:
        config = FlowConfig.from_dict(base_config)
    except (TypeError, ValueError) as exc:
        # from_dict validates keys, enum values, value types and field
        # constraints; add the job's position so manifest errors are
        # addressable.  TypeError is kept as a belt-and-braces net for any
        # constraint __post_init__ evaluates on an exotic value.
        raise ValueError(f"job {index}: {exc}") from exc
    return BatchJob(job_id=str(spec.get("id", default_id)), graph=graph, config=config)


def manifest_jobs(
    payload: Any,
    base_dir: Optional[Path] = None,
    source: str = "manifest",
) -> List[BatchJob]:
    """Build the job list of an already-parsed manifest payload.

    The structural core shared by :func:`load_manifest` (manifest files) and
    the synthesis service (manifest bodies posted over HTTP — there is no
    file, so errors are reported against ``source``).  Duplicate job ids are
    rejected so per-job results stay addressable in reports and JSON output.
    """
    if isinstance(payload, list):
        payload = {"jobs": payload}
    if not isinstance(payload, dict) or not isinstance(payload.get("jobs"), list):
        raise ValueError(f"{source} must be a JSON list or an object with a 'jobs' list")
    unknown = set(payload) - {"defaults", "jobs"}
    if unknown:
        # A typo like "default" would otherwise silently drop every default.
        raise ValueError(f"{source}: unknown top-level keys {sorted(unknown)}")
    defaults = payload.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ValueError(f"{source}: 'defaults' must be an object")

    jobs: List[BatchJob] = []
    used_ids: set = set()
    # One generator-graph memo for the whole manifest: k jobs over the same
    # synthetic workload (different ids/configs) generate its graph once.
    graph_cache: Dict[str, SequencingGraph] = {}
    for index, spec in enumerate(payload["jobs"]):
        if not isinstance(spec, dict):
            raise ValueError(f"{source}: job {index} must be an object")
        job = job_from_spec(
            spec,
            defaults=defaults,
            base_dir=base_dir,
            index=index,
            graph_cache=graph_cache,
        )
        if job.job_id in used_ids:
            if "id" in spec:
                raise ValueError(f"{source}: duplicate job id {job.job_id!r}")
            # Keep auto-derived ids unique when one assay appears twice; the
            # suffix must also dodge explicit ids like "PCR#1".
            suffix = 1
            while f"{job.job_id}#{suffix}" in used_ids:
                suffix += 1
            job.job_id = f"{job.job_id}#{suffix}"
        used_ids.add(job.job_id)
        jobs.append(job)
    return jobs


def load_manifest(path: Union[str, Path]) -> List[BatchJob]:
    """Load a batch manifest file into a list of jobs (manifest order).

    Protocol paths inside the manifest resolve relative to the manifest
    file's directory.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    return manifest_jobs(payload, base_dir=path.parent, source=f"manifest {path}")


# ------------------------------------------------------------------ sweep grids

def _format_sweep_value(value: Any) -> str:
    """Compact, unambiguous value rendering for sweep-point job ids."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def expand_sweep(
    spec: Dict[str, Any],
    base_dir: Optional[Path] = None,
) -> List[BatchJob]:
    """Expand a parameter-grid sweep spec into stage-shared batch jobs.

    A sweep spec names one assay (or protocol file) and a grid of
    :class:`FlowConfig` overrides::

        {
          "assay": "PCR",
          "base": {"ilp_operation_limit": 0},
          "sweep": {"pitch": [5.0, 6.0], "min_channel_spacing": [1.0, 2.0]}
        }

    The cartesian product of the ``sweep`` axes (axes in spec order, values
    in list order) becomes one job per point, with ids like
    ``PCR/pitch=5,min_channel_spacing=1``.  All points share one graph and
    one ``base`` config, so when a sweep only varies downstream knobs the
    batch engine executes the untouched upstream stages exactly once: a
    pitch sweep performs one scheduling solve and one architecture
    synthesis no matter how many points it has.

    Raises
    ------
    ValueError
        On unknown keys, an empty grid, non-list axis values, axes that are
        not :class:`FlowConfig` fields, or invalid config values (reported
        with the offending sweep point's id).
    """
    unknown = set(spec) - {"assay", "protocol", "id", "base", "sweep"}
    if unknown:
        raise ValueError(f"sweep spec: unknown keys {sorted(unknown)}")
    sweep = spec.get("sweep")
    if not isinstance(sweep, dict) or not sweep:
        raise ValueError("sweep spec: 'sweep' must be a non-empty object of field -> values")
    known_fields = {f.name for f in fields(FlowConfig)}
    unknown_axes = set(sweep) - known_fields
    if unknown_axes:
        raise ValueError(f"sweep spec: unknown flow-config axes {sorted(unknown_axes)}")
    for axis, values in sweep.items():
        if not isinstance(values, list) or not values:
            raise ValueError(f"sweep spec: axis {axis!r} must map to a non-empty list")
    base = spec.get("base") or {}
    if not isinstance(base, dict):
        raise ValueError("sweep spec: 'base' must be an object")
    overlap = set(base) & set(sweep)
    if overlap:
        raise ValueError(f"sweep spec: {sorted(overlap)} appear in both 'base' and 'sweep'")

    source = {key: spec[key] for key in ("assay", "protocol") if key in spec}
    prefix = spec.get("id") or spec.get("assay") or Path(str(spec.get("protocol"))).stem

    axes = list(sweep)
    jobs: List[BatchJob] = []
    used_ids: set = set()
    for index, combo in enumerate(itertools.product(*(sweep[a] for a in axes))):
        point = dict(zip(axes, combo))
        point_id = ",".join(f"{a}={_format_sweep_value(v)}" for a, v in point.items())
        job_spec = {**source, "id": f"{prefix}/{point_id}", "config": {**base, **point}}
        job = job_from_spec(job_spec, base_dir=base_dir, index=index)
        if job.job_id in used_ids:
            # Mirrors load_manifest's duplicate-id rejection: axis values that
            # render identically (5 vs 5.0, floats closer than %g resolves)
            # would otherwise produce indistinguishable report rows.
            raise ValueError(
                f"sweep spec: grid point {index} duplicates job id {job.job_id!r} "
                "(axis values render identically)"
            )
        used_ids.add(job.job_id)
        jobs.append(job)
    return jobs


def load_sweep(path: Union[str, Path]) -> List[BatchJob]:
    """Load a sweep spec file and expand it into jobs (grid order)."""
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"sweep spec {path} must be a JSON object")
    return expand_sweep(payload, base_dir=path.parent)
