"""Batch job descriptions and JSON manifest loading.

A manifest describes a batch of synthesis jobs::

    {
      "defaults": {"transport_time": 10},
      "jobs": [
        {"assay": "PCR"},
        {"assay": "IVD", "config": {"num_detectors": 2}},
        {"protocol": "my_assay.json", "id": "custom", "config": {"num_mixers": 3}}
      ]
    }

Each job names either a built-in paper assay (``"assay"``) or a
sequencing-graph JSON file (``"protocol"``, resolved relative to the
manifest).  ``defaults`` and the per-job ``config`` are
:meth:`~repro.synthesis.config.FlowConfig.from_dict` payloads; per-job keys
override the defaults.  Jobs naming a paper assay start from
:meth:`FlowConfig.paper_defaults_for` so a bare ``{"assay": "RA100"}`` gets
the paper's per-assay device counts and grid size.  A top-level JSON list is
accepted as shorthand for ``{"jobs": [...]}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.graph.library import PAPER_ASSAYS, assay_by_name
from repro.graph.sequencing_graph import SequencingGraph
from repro.graph.serialization import load_graph
from repro.synthesis.config import FlowConfig


@dataclass
class BatchJob:
    """One synthesis request: a sequencing graph plus its flow configuration."""

    job_id: str
    graph: SequencingGraph
    config: FlowConfig

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")


def job_from_spec(
    spec: Dict[str, Any],
    defaults: Optional[Dict[str, Any]] = None,
    base_dir: Optional[Path] = None,
    index: int = 0,
) -> BatchJob:
    """Build one :class:`BatchJob` from a manifest entry.

    Raises
    ------
    ValueError
        If the entry names neither/both of ``assay`` and ``protocol``, names
        an unknown assay, or carries invalid config keys.
    """
    unknown = set(spec) - {"assay", "protocol", "id", "config"}
    if unknown:
        raise ValueError(f"job {index}: unknown keys {sorted(unknown)}")
    assay = spec.get("assay")
    protocol = spec.get("protocol")
    if bool(assay) == bool(protocol):
        raise ValueError(
            f"job {index}: exactly one of 'assay' or 'protocol' is required, got {spec!r}"
        )

    if assay:
        if assay not in PAPER_ASSAYS:
            raise ValueError(
                f"job {index}: unknown assay {assay!r} (choose from {sorted(PAPER_ASSAYS)})"
            )
        graph = assay_by_name(assay)
        base_config = FlowConfig.paper_defaults_for(assay).to_dict()
        default_id = assay
    else:
        path = Path(protocol)
        if base_dir is not None and not path.is_absolute():
            path = base_dir / path
        if not path.exists():
            raise ValueError(f"job {index}: protocol file {path} does not exist")
        graph = load_graph(path)
        base_config = FlowConfig().to_dict()
        default_id = graph.name or path.stem

    overrides = dict(defaults or {})
    overrides.update(spec.get("config") or {})
    base_config.update(overrides)
    try:
        config = FlowConfig.from_dict(base_config)
    except (TypeError, ValueError) as exc:
        # from_dict validates keys, enum values, value types and field
        # constraints; add the job's position so manifest errors are
        # addressable.  TypeError is kept as a belt-and-braces net for any
        # constraint __post_init__ evaluates on an exotic value.
        raise ValueError(f"job {index}: {exc}") from exc
    return BatchJob(job_id=str(spec.get("id", default_id)), graph=graph, config=config)


def load_manifest(path: Union[str, Path]) -> List[BatchJob]:
    """Load a batch manifest file into a list of jobs (manifest order).

    Duplicate job ids are rejected so per-job results stay addressable in
    reports and JSON output.
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if isinstance(payload, list):
        payload = {"jobs": payload}
    if not isinstance(payload, dict) or not isinstance(payload.get("jobs"), list):
        raise ValueError(f"manifest {path} must be a JSON list or an object with a 'jobs' list")
    unknown = set(payload) - {"defaults", "jobs"}
    if unknown:
        # A typo like "default" would otherwise silently drop every default.
        raise ValueError(f"manifest {path}: unknown top-level keys {sorted(unknown)}")
    defaults = payload.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ValueError(f"manifest {path}: 'defaults' must be an object")

    jobs: List[BatchJob] = []
    used_ids: set = set()
    for index, spec in enumerate(payload["jobs"]):
        if not isinstance(spec, dict):
            raise ValueError(f"manifest {path}: job {index} must be an object")
        job = job_from_spec(spec, defaults=defaults, base_dir=path.parent, index=index)
        if job.job_id in used_ids:
            if "id" in spec:
                raise ValueError(f"manifest {path}: duplicate job id {job.job_id!r}")
            # Keep auto-derived ids unique when one assay appears twice; the
            # suffix must also dodge explicit ids like "PCR#1".
            suffix = 1
            while f"{job.job_id}#{suffix}" in used_ids:
                suffix += 1
            job.job_id = f"{job.job_id}#{suffix}"
        used_ids.add(job.job_id)
        jobs.append(job)
    return jobs
