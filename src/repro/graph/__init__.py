"""Bioassay sequencing graphs.

A biochemical assay protocol is described by a *sequencing graph*: a directed
acyclic graph whose nodes are operations (mixing, dilution, detection, ...)
and whose edges express data/fluid dependencies — a parent operation's output
fluid is an input of its child (Section 1, Fig. 2(a) of the paper).

This package provides:

* :class:`Operation` and :class:`SequencingGraph` — the core data model;
* :mod:`repro.graph.analysis` — ASAP/ALAP times, critical path, width;
* :mod:`repro.graph.generators` — the seeded random assay generator used for
  the RA30/RA70/RA100 test cases;
* :mod:`repro.graph.library` — the real-world assays (PCR, IVD, CPA);
* :mod:`repro.graph.serialization` — JSON round-tripping.
"""

from repro.graph.sequencing_graph import Operation, OperationType, SequencingGraph
from repro.graph.analysis import (
    GraphAnalysis,
    analyze,
    asap_times,
    alap_times,
    critical_path,
    critical_path_length,
    max_parallelism,
)
from repro.graph.generators import RandomAssayConfig, random_assay
from repro.graph.library import (
    build_pcr,
    build_ivd,
    build_cpa,
    build_protein_split,
    assay_by_name,
    PAPER_ASSAYS,
)
from repro.graph.serialization import graph_to_dict, graph_from_dict, save_graph, load_graph
from repro.graph.validation import GraphValidationError, validate_graph

__all__ = [
    "Operation",
    "OperationType",
    "SequencingGraph",
    "GraphAnalysis",
    "analyze",
    "asap_times",
    "alap_times",
    "critical_path",
    "critical_path_length",
    "max_parallelism",
    "RandomAssayConfig",
    "random_assay",
    "build_pcr",
    "build_ivd",
    "build_cpa",
    "build_protein_split",
    "assay_by_name",
    "PAPER_ASSAYS",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "GraphValidationError",
    "validate_graph",
]
