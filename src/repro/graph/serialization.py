"""JSON serialization of sequencing graphs.

Allows users to describe their own assay protocols in a simple JSON format
and feed them to the synthesis pipeline, and allows experiments to archive
the exact random graphs they were run on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.graph.sequencing_graph import Operation, OperationType, SequencingGraph

_FORMAT_VERSION = 1


def graph_to_dict(graph: SequencingGraph) -> Dict[str, Any]:
    """Serialize a graph to a plain dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": graph.name,
        "operations": [
            {
                "id": op.op_id,
                "kind": op.kind.value,
                "duration": op.duration,
                "label": op.label,
            }
            for op in graph.operations()
        ],
        "edges": [{"from": parent, "to": child} for parent, child in graph.edges()],
    }


def canonical_graph_dict(graph: SequencingGraph) -> Dict[str, Any]:
    """Serialize a graph to a node-order-independent dictionary.

    :func:`graph_to_dict` preserves insertion order, which is what a human
    editing the JSON expects but makes the payload unsuitable as a cache key:
    two graphs built by adding the same operations in different orders would
    serialize differently.  This variant sorts operations by id and edges by
    ``(parent, child)`` so structurally equal graphs produce identical
    payloads (the batch engine's content-addressed cache hashes this form).
    """
    data = graph_to_dict(graph)
    data["operations"] = sorted(data["operations"], key=lambda op: op["id"])
    data["edges"] = sorted(data["edges"], key=lambda e: (e["from"], e["to"]))
    return data


def graph_from_dict(data: Dict[str, Any]) -> SequencingGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Raises
    ------
    ValueError
        If the payload is malformed or uses an unsupported format version.
    """
    version = data.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported sequencing-graph format version {version}")
    if "operations" not in data or "edges" not in data:
        raise ValueError("sequencing-graph payload must contain 'operations' and 'edges'")

    graph = SequencingGraph(name=data.get("name", "assay"))
    for op_data in data["operations"]:
        try:
            kind = OperationType(op_data.get("kind", "mix"))
        except ValueError as exc:
            raise ValueError(f"unknown operation kind {op_data.get('kind')!r}") from exc
        if "id" not in op_data:
            raise ValueError(f"operation entry {op_data!r} is missing its 'id'")
        graph.add_operation(
            Operation(
                op_id=str(op_data["id"]),
                kind=kind,
                duration=int(op_data.get("duration", 0)),
                label=str(op_data.get("label", "")),
            )
        )
    for edge in data["edges"]:
        if "from" not in edge or "to" not in edge:
            raise ValueError(f"edge entry {edge!r} must contain 'from' and 'to'")
        try:
            graph.add_edge(str(edge["from"]), str(edge["to"]))
        except KeyError as exc:
            raise ValueError(f"edge {edge!r} references an unknown operation") from exc
    return graph


def save_graph(graph: SequencingGraph, path: Union[str, Path]) -> Path:
    """Write a graph to a JSON file and return the path."""
    path = Path(path)
    path.write_text(json.dumps(graph_to_dict(graph), indent=2))
    return path


def load_graph(path: Union[str, Path]) -> SequencingGraph:
    """Load a graph previously written by :func:`save_graph`."""
    payload = json.loads(Path(path).read_text())
    return graph_from_dict(payload)
