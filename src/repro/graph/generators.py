"""Random assay generation and the synthetic-workload generator registry.

The paper evaluates three randomly generated assays (RA30, RA70, RA100) in
addition to the real-world benchmarks.  The original random graphs were not
published, so this module provides a deterministic, seeded generator that
produces statistically similar sequencing graphs: layered DAGs of mixing
operations where every mix has at most two fluid inputs (as a physical mixer
combines two volumes) and durations drawn from the typical mixing-time range.

Beyond the three fixed presets, the generator is the repository's synthetic
*workload family*: batch manifests and exploration specs reference it by
name through the registry at the bottom (``{"generator": "random_assay",
"num_operations": 70, "seed": 3}``), so a design-space exploration can sweep
assay sizes, merge probabilities, and layer widths without shipping graph
files around.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.sequencing_graph import Operation, OperationType, SequencingGraph
from repro.graph.validation import assert_valid
from repro.keys import derive_seed, stable_digest

#: Root seed of all synthetic-graph randomness.  Sub-seeds are derived from
#: it with :func:`repro.keys.derive_seed` (SHA-based, so identical in every
#: worker process — never Python's per-process ``hash()``), which makes
#: synthetic-graph runs bit-reproducible across processes and machines.
DEFAULT_SEED = 2017


@dataclass
class RandomAssayConfig:
    """Parameters for :func:`random_assay`.

    Attributes
    ----------
    num_operations:
        Number of device (mixing) operations to create.
    seed:
        RNG seed; the same seed always produces the same graph.
    durations:
        Pool of operation durations (seconds) to sample from.  The defaults
        follow common mixing times reported for flow-based chips (60–120 s).
    merge_probability:
        Probability that a new operation consumes the outputs of two earlier
        operations (creating a reconvergent structure) instead of one.
    layer_width:
        Hard cap on how many operations may share the same *layer* (an
        operation's layer is one plus the deepest layer among its parents;
        dispensing inputs sit at layer zero) — it bounds how much intrinsic
        parallelism the assay has.  ``None`` (the default) leaves the shape
        unconstrained, which is exactly what the historical RA30/RA70/RA100
        presets were generated with, so their graphs are bit-identical to
        the pinned ones.
    num_inputs:
        Number of dispensing (input) nodes feeding the first layer.  When
        ``None`` it defaults to one input per operation plus one.
    """

    num_operations: int
    seed: int = DEFAULT_SEED
    durations: Sequence[int] = (50, 60, 70, 80, 90, 100)
    merge_probability: float = 0.9
    layer_width: Optional[int] = None
    num_inputs: Optional[int] = None
    name: Optional[str] = None


def random_assay(config: RandomAssayConfig) -> SequencingGraph:
    """Generate a random, valid sequencing graph.

    The construction is generational: operations are created one at a time;
    each new operation picks one or two *open* fluids (outputs that no other
    operation has consumed yet) as its inputs, preferring recent outputs so
    the graph depth grows with size — the same qualitative shape as protocol
    graphs such as PCR (a reduction tree) or serial dilutions (long chains).

    With a ``layer_width`` the parent choice additionally respects a hard
    per-layer cap: a selection whose resulting layer is already full is
    skipped in favor of the next shuffled candidate.  A valid choice always
    exists — the deepest open fluid extends the graph into an empty layer —
    so the cap never deadlocks; with ``layer_width=None`` the selection is
    byte-for-byte the historical unconstrained one.
    """
    if config.num_operations <= 0:
        raise ValueError("num_operations must be positive")
    if config.layer_width is not None and config.layer_width < 1:
        raise ValueError("layer_width must be positive (or None for no cap)")
    if config.num_inputs is not None and config.num_inputs < 1:
        raise ValueError("num_inputs must be positive (or None for the default)")
    if not config.durations:
        raise ValueError("durations pool must be non-empty")
    rng = random.Random(config.seed)
    name = config.name or f"RA{config.num_operations}"
    graph = SequencingGraph(name=name)

    num_inputs = config.num_inputs
    if num_inputs is None:
        # One fresh input per mixing operation (plus one) keeps the pool of
        # open fluids non-empty throughout, so the graph becomes a random
        # reduction forest — wide at the leaves, merging toward a few final
        # products — the same qualitative shape as real protocols such as PCR.
        num_inputs = config.num_operations + 1

    open_fluids: List[str] = []
    depth: Dict[str, int] = {}
    layer_counts: Dict[int, int] = {}
    for idx in range(1, num_inputs + 1):
        op_id = f"i{idx}"
        graph.add_input(op_id, duration=0, label=f"input {idx}")
        open_fluids.append(op_id)
        depth[op_id] = 0

    for idx in range(1, config.num_operations + 1):
        op_id = f"o{idx}"
        duration = rng.choice(list(config.durations))
        graph.add_operation(Operation(op_id, OperationType.MIX, duration, label=f"mix {idx}"))

        want_two = rng.random() < config.merge_probability and len(open_fluids) >= 2
        num_parents = 2 if want_two else 1
        parents = _pick_parents(
            rng, open_fluids, num_parents, config.layer_width, depth, layer_counts
        )
        for parent in parents:
            graph.add_edge(parent, op_id)
            open_fluids.remove(parent)
        open_fluids.append(op_id)
        layer = 1 + max(depth[parent] for parent in parents)
        depth[op_id] = layer
        layer_counts[layer] = layer_counts.get(layer, 0) + 1

        # Occasionally re-open an input so the graph does not collapse into a
        # single chain when merge_probability is high.
        if not open_fluids or (len(open_fluids) < 2 and rng.random() < 0.4):
            extra_id = f"i{len(graph.input_operations()) + 1}"
            if extra_id not in graph:
                graph.add_input(extra_id, duration=0, label="extra input")
                open_fluids.append(extra_id)
                depth[extra_id] = 0

    assert_valid(graph)
    return graph


def _pick_parents(
    rng: random.Random,
    open_fluids: List[str],
    count: int,
    layer_width: Optional[int],
    depth: Dict[str, int],
    layer_counts: Dict[int, int],
) -> List[str]:
    """Pick ``count`` distinct parents uniformly among the open fluids.

    Uniform choice over the whole open-fluid pool produces a random reduction
    forest whose depth grows logarithmically with the operation count, so the
    generated assays keep enough parallelism to exercise several devices at
    once (as the paper's random assays evidently do).

    With ``layer_width`` set, the first selection (in shuffle order) whose
    resulting layer — one plus the deepest chosen parent — still has room is
    used instead of the plain prefix.  The deepest open fluid always opens a
    fresh layer, so a single-parent choice always exists; a pair search that
    finds no valid pair degrades to that single parent.
    """
    count = min(count, len(open_fluids))
    candidates = list(open_fluids)
    rng.shuffle(candidates)
    if layer_width is None:
        return candidates[:count]

    def has_room(parents: Sequence[str]) -> bool:
        layer = 1 + max(depth[parent] for parent in parents)
        return layer_counts.get(layer, 0) < layer_width

    if count == 2:
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                if has_room((candidates[i], candidates[j])):
                    return [candidates[i], candidates[j]]
        # No pair fits the cap; fall through to the guaranteed single parent.
    for candidate in candidates:
        if has_room((candidate,)):
            return [candidate]
    # Unreachable: the deepest open fluid's next layer is always empty (any
    # operation above it would itself be deeper), but never trap a caller on
    # an assertion if an invariant shifts — degrade to the historical choice.
    return candidates[:1]


def paper_random_assay(
    num_operations: int, root_seed: Optional[int] = None
) -> SequencingGraph:
    """The RA30/RA70/RA100 stand-ins used throughout the benchmarks.

    With the default ``root_seed=None`` the historical per-size seed table
    is used, so every experiment (and the golden regression pins) sees the
    exact graphs the seed implementation produced.  Passing a ``root_seed``
    threads one seed through the whole family instead: each size's seed is
    derived from it with :func:`repro.keys.derive_seed`, which is stable
    across processes, so a seeded sweep of synthetic assays is
    bit-reproducible no matter which worker generates which graph.
    """
    if root_seed is None:
        seeds = {30: 30017, 70: 70017, 100: 100017}
        seed = seeds.get(num_operations, DEFAULT_SEED + num_operations)
    else:
        seed = derive_seed(root_seed, f"paper-random-assay/{num_operations}")
    config = RandomAssayConfig(num_operations=num_operations, seed=seed)
    return random_assay(config)


# ------------------------------------------------------------------ registry

def _random_assay_from_params(params: Dict[str, Any]) -> SequencingGraph:
    """Build a :func:`random_assay` graph from JSON generator parameters.

    The parameters are exactly the :class:`RandomAssayConfig` fields;
    ``durations`` accepts a JSON list.  Unknown keys raise so a typo in a
    manifest or exploration spec fails loudly.
    """
    known = {spec.name for spec in fields(RandomAssayConfig)}
    unknown = set(params) - known
    if unknown:
        raise ValueError(
            f"random_assay generator: unknown parameters {sorted(unknown)} "
            f"(known: {sorted(known)})"
        )
    if "num_operations" not in params:
        raise ValueError("random_assay generator requires 'num_operations'")
    params = dict(params)
    if "durations" in params:
        durations = params["durations"]
        if not isinstance(durations, (list, tuple)) or not durations:
            raise ValueError("random_assay generator: 'durations' must be a non-empty list")
        params["durations"] = tuple(durations)
    return random_assay(RandomAssayConfig(**params))


def _paper_random_assay_from_params(params: Dict[str, Any]) -> SequencingGraph:
    """Build a :func:`paper_random_assay` graph from JSON generator parameters."""
    unknown = set(params) - {"num_operations", "root_seed"}
    if unknown:
        raise ValueError(
            f"paper_random_assay generator: unknown parameters {sorted(unknown)} "
            "(known: ['num_operations', 'root_seed'])"
        )
    if "num_operations" not in params:
        raise ValueError("paper_random_assay generator requires 'num_operations'")
    return paper_random_assay(params["num_operations"], root_seed=params.get("root_seed"))


#: Named synthetic-graph generators, keyed by the ``"generator"`` value of
#: an inline job spec (see :func:`generated_graph`).
GENERATORS: Dict[str, Callable[[Dict[str, Any]], SequencingGraph]] = {
    "random_assay": _random_assay_from_params,
    "paper_random_assay": _paper_random_assay_from_params,
}


def generator_names() -> Tuple[str, ...]:
    """Registered generator names, sorted (for error messages and docs)."""
    return tuple(sorted(GENERATORS))


def register_generator(
    name: str, builder: Callable[[Dict[str, Any]], SequencingGraph]
) -> None:
    """Register a custom synthetic-graph generator under ``name``."""
    if not name:
        raise ValueError("generator name must be non-empty")
    GENERATORS[name] = builder


def unregister_generator(name: str) -> None:
    """Remove a registered generator (tests clean up after themselves)."""
    GENERATORS.pop(name, None)


def generated_graph(spec: Dict[str, Any]) -> SequencingGraph:
    """Build a graph from an inline generator spec.

    ``spec`` is ``{"generator": <name>, **params}`` — the shape batch
    manifests and exploration workloads embed directly, e.g.
    ``{"generator": "random_assay", "num_operations": 70, "seed": 3}``.
    Raises :class:`ValueError` on an unknown generator or bad parameters.
    """
    if not isinstance(spec, dict) or not spec.get("generator"):
        raise ValueError("generator spec must be an object with a 'generator' name")
    name = spec["generator"]
    builder = GENERATORS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown generator {name!r}; registered generators: {list(generator_names())}"
        )
    params = {key: value for key, value in spec.items() if key != "generator"}
    return builder(params)


def generator_spec_id(spec: Dict[str, Any]) -> str:
    """Short, deterministic default job id for an inline generator spec.

    ``<graph name>~<digest6>`` — the digest distinguishes two generator jobs
    whose graphs share a name (e.g. two different seeds both named RA30).
    """
    digest = stable_digest({"generator_spec": spec})[:6]
    return f"{generated_graph_name(spec)}~{digest}"


def generated_graph_name(spec: Dict[str, Any]) -> str:
    """The name the generated graph will carry, without building the graph.

    Falls back to the generator name when the spec does not determine it
    cheaply; only used for human-readable default ids.
    """
    if spec.get("name"):
        return str(spec["name"])
    num_operations = spec.get("num_operations")
    if isinstance(num_operations, int):
        return f"RA{num_operations}"
    return str(spec.get("generator", "generated"))
