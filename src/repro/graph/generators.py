"""Random assay generation.

The paper evaluates three randomly generated assays (RA30, RA70, RA100) in
addition to the real-world benchmarks.  The original random graphs were not
published, so this module provides a deterministic, seeded generator that
produces statistically similar sequencing graphs: layered DAGs of mixing
operations where every mix has at most two fluid inputs (as a physical mixer
combines two volumes) and durations drawn from the typical mixing-time range.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.graph.sequencing_graph import Operation, OperationType, SequencingGraph
from repro.graph.validation import assert_valid
from repro.keys import derive_seed

#: Root seed of all synthetic-graph randomness.  Sub-seeds are derived from
#: it with :func:`repro.keys.derive_seed` (SHA-based, so identical in every
#: worker process — never Python's per-process ``hash()``), which makes
#: synthetic-graph runs bit-reproducible across processes and machines.
DEFAULT_SEED = 2017


@dataclass
class RandomAssayConfig:
    """Parameters for :func:`random_assay`.

    Attributes
    ----------
    num_operations:
        Number of device (mixing) operations to create.
    seed:
        RNG seed; the same seed always produces the same graph.
    durations:
        Pool of operation durations (seconds) to sample from.  The defaults
        follow common mixing times reported for flow-based chips (60–120 s).
    merge_probability:
        Probability that a new operation consumes the outputs of two earlier
        operations (creating a reconvergent structure) instead of one.
    layer_width:
        Soft cap on how many operations may share the same "layer";
        controls how much intrinsic parallelism the assay has.
    num_inputs:
        Number of dispensing (input) nodes feeding the first layer.  When
        ``None`` it defaults to roughly one input per three operations.
    """

    num_operations: int
    seed: int = DEFAULT_SEED
    durations: Sequence[int] = (50, 60, 70, 80, 90, 100)
    merge_probability: float = 0.9
    layer_width: int = 8
    num_inputs: Optional[int] = None
    name: Optional[str] = None


def random_assay(config: RandomAssayConfig) -> SequencingGraph:
    """Generate a random, valid sequencing graph.

    The construction is generational: operations are created one at a time;
    each new operation picks one or two *open* fluids (outputs that no other
    operation has consumed yet) as its inputs, preferring recent outputs so
    the graph depth grows with size — the same qualitative shape as protocol
    graphs such as PCR (a reduction tree) or serial dilutions (long chains).
    """
    if config.num_operations <= 0:
        raise ValueError("num_operations must be positive")
    rng = random.Random(config.seed)
    name = config.name or f"RA{config.num_operations}"
    graph = SequencingGraph(name=name)

    num_inputs = config.num_inputs
    if num_inputs is None:
        # One fresh input per mixing operation (plus one) keeps the pool of
        # open fluids non-empty throughout, so the graph becomes a random
        # reduction forest — wide at the leaves, merging toward a few final
        # products — the same qualitative shape as real protocols such as PCR.
        num_inputs = config.num_operations + 1

    open_fluids: List[str] = []
    for idx in range(1, num_inputs + 1):
        op_id = f"i{idx}"
        graph.add_input(op_id, duration=0, label=f"input {idx}")
        open_fluids.append(op_id)

    for idx in range(1, config.num_operations + 1):
        op_id = f"o{idx}"
        duration = rng.choice(list(config.durations))
        graph.add_operation(Operation(op_id, OperationType.MIX, duration, label=f"mix {idx}"))

        want_two = rng.random() < config.merge_probability and len(open_fluids) >= 2
        num_parents = 2 if want_two else 1
        parents = _pick_parents(rng, open_fluids, num_parents, config.layer_width)
        for parent in parents:
            graph.add_edge(parent, op_id)
            open_fluids.remove(parent)
        open_fluids.append(op_id)

        # Occasionally re-open an input so the graph does not collapse into a
        # single chain when merge_probability is high.
        if not open_fluids or (len(open_fluids) < 2 and rng.random() < 0.4):
            extra_id = f"i{len(graph.input_operations()) + 1}"
            if extra_id not in graph:
                graph.add_input(extra_id, duration=0, label="extra input")
                open_fluids.append(extra_id)

    assert_valid(graph)
    return graph


def _pick_parents(
    rng: random.Random,
    open_fluids: List[str],
    count: int,
    layer_width: int,
) -> List[str]:
    """Pick ``count`` distinct parents uniformly among the open fluids.

    Uniform choice over the whole open-fluid pool produces a random reduction
    forest whose depth grows logarithmically with the operation count, so the
    generated assays keep enough parallelism to exercise several devices at
    once (as the paper's random assays evidently do).
    """
    count = min(count, len(open_fluids))
    candidates = list(open_fluids)
    rng.shuffle(candidates)
    return candidates[:count]


def paper_random_assay(
    num_operations: int, root_seed: Optional[int] = None
) -> SequencingGraph:
    """The RA30/RA70/RA100 stand-ins used throughout the benchmarks.

    With the default ``root_seed=None`` the historical per-size seed table
    is used, so every experiment (and the golden regression pins) sees the
    exact graphs the seed implementation produced.  Passing a ``root_seed``
    threads one seed through the whole family instead: each size's seed is
    derived from it with :func:`repro.keys.derive_seed`, which is stable
    across processes, so a seeded sweep of synthetic assays is
    bit-reproducible no matter which worker generates which graph.
    """
    if root_seed is None:
        seeds = {30: 30017, 70: 70017, 100: 100017}
        seed = seeds.get(num_operations, DEFAULT_SEED + num_operations)
    else:
        seed = derive_seed(root_seed, f"paper-random-assay/{num_operations}")
    config = RandomAssayConfig(num_operations=num_operations, seed=seed)
    return random_assay(config)
