"""Static analysis of sequencing graphs.

ASAP/ALAP times and the critical path give lower bounds on the assay
completion time ``t_E`` and are used both by the heuristic scheduler
(priority function) and by tests as invariants that any valid schedule must
respect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.sequencing_graph import SequencingGraph


def asap_times(graph: SequencingGraph, transport_time: int = 0) -> Dict[str, int]:
    """Earliest possible start time of every operation (infinite devices).

    ``transport_time`` is added on every device-to-device edge, matching the
    paper's constant pure transport time ``u_c``.
    """
    start: Dict[str, int] = {}
    for op in graph.iter_topological():
        earliest = 0
        for parent_id in graph.predecessors(op.op_id):
            parent = graph.operation(parent_id)
            hop = transport_time if (parent.needs_device and op.needs_device) else 0
            earliest = max(earliest, start[parent_id] + parent.duration + hop)
        start[op.op_id] = earliest
    return start


def alap_times(graph: SequencingGraph, deadline: int, transport_time: int = 0) -> Dict[str, int]:
    """Latest start time of every operation that still meets ``deadline``."""
    start: Dict[str, int] = {}
    for op_id in reversed(graph.topological_order()):
        op = graph.operation(op_id)
        latest = deadline - op.duration
        for child_id in graph.successors(op_id):
            child = graph.operation(child_id)
            hop = transport_time if (op.needs_device and child.needs_device) else 0
            latest = min(latest, start[child_id] - op.duration - hop)
        start[op_id] = latest
    return start


def critical_path(graph: SequencingGraph, transport_time: int = 0) -> List[str]:
    """Operation ids along (one) longest path through the graph."""
    start = asap_times(graph, transport_time)
    finish = {op.op_id: start[op.op_id] + op.duration for op in graph.operations()}
    if not finish:
        return []
    end_node = max(finish, key=lambda op_id: finish[op_id])
    path = [end_node]
    current = end_node
    while True:
        parents = graph.predecessors(current)
        if not parents:
            break
        current_op = graph.operation(current)
        best_parent = None
        for parent_id in parents:
            parent = graph.operation(parent_id)
            hop = transport_time if (parent.needs_device and current_op.needs_device) else 0
            if finish[parent_id] + hop == start[current]:
                best_parent = parent_id
                break
        if best_parent is None:
            # Start was limited by something else (e.g. time zero); stop here.
            break
        path.append(best_parent)
        current = best_parent
    path.reverse()
    return path


def critical_path_length(graph: SequencingGraph, transport_time: int = 0) -> int:
    """Length of the critical path — a lower bound on any schedule's t_E."""
    start = asap_times(graph, transport_time)
    return max(
        (start[op.op_id] + op.duration for op in graph.operations()),
        default=0,
    )


def max_parallelism(graph: SequencingGraph) -> int:
    """Maximum number of device operations runnable concurrently (ASAP profile).

    This is an optimistic estimate used to sanity-check device counts: with
    fewer devices than the assay ever *needs* concurrently the schedule just
    serializes further, never becomes infeasible.
    """
    start = asap_times(graph)
    events: List[Tuple[int, int]] = []
    for op in graph.device_operations():
        s = start[op.op_id]
        events.append((s, 1))
        events.append((s + max(op.duration, 1), -1))
    events.sort()
    best = current = 0
    for _, delta in events:
        current += delta
        best = max(best, current)
    return best


@dataclass
class GraphAnalysis:
    """Bundle of the standard graph metrics."""

    name: str
    num_operations: int
    num_device_operations: int
    num_edges: int
    critical_path_length: int
    max_parallelism: int
    total_work: int

    def lower_bound_execution_time(self, num_devices: int) -> int:
        """max(critical path, total work / devices) — classic list-scheduling bound."""
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        work_bound = -(-self.total_work // num_devices)  # ceil division
        return max(self.critical_path_length, work_bound)


def analyze(graph: SequencingGraph, transport_time: int = 0) -> GraphAnalysis:
    """Compute the :class:`GraphAnalysis` summary for a graph."""
    device_ops = graph.device_operations()
    return GraphAnalysis(
        name=graph.name,
        num_operations=len(graph),
        num_device_operations=len(device_ops),
        num_edges=len(graph.edges()),
        critical_path_length=critical_path_length(graph, transport_time),
        max_parallelism=max_parallelism(graph),
        total_work=sum(op.duration for op in device_ops),
    )
