"""Structural validation of sequencing graphs."""

from __future__ import annotations

from typing import List

from repro.graph.sequencing_graph import OperationType, SequencingGraph


class GraphValidationError(ValueError):
    """Raised when a sequencing graph violates a structural requirement."""

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("; ".join(problems))


def validate_graph(graph: SequencingGraph, require_inputs: bool = False) -> List[str]:
    """Check structural well-formedness; return the list of problems found.

    Checks performed:

    * acyclicity (via topological sort);
    * every device operation has a positive duration;
    * input operations have no predecessors;
    * mixing operations have at most two fluid inputs (a mixer combines two
      volumes, as in the paper's PCR example);
    * optionally, that the graph has at least one input node.

    Raises
    ------
    GraphValidationError
        If called through :func:`assert_valid` (see below) and problems exist.
    """
    problems: List[str] = []

    try:
        graph.topological_order()
    except ValueError as exc:
        problems.append(str(exc))
        return problems

    if require_inputs and not graph.input_operations():
        problems.append(f"graph {graph.name!r} has no input operations")

    for op in graph.operations():
        if op.needs_device and op.duration <= 0:
            problems.append(f"device operation {op.op_id!r} has non-positive duration {op.duration}")
        if op.kind is OperationType.INPUT and graph.predecessors(op.op_id):
            problems.append(f"input operation {op.op_id!r} has predecessors")
        if op.kind in (OperationType.MIX, OperationType.DILUTE):
            n_parents = graph.in_degree(op.op_id)
            if n_parents > 2:
                problems.append(
                    f"mix/dilute operation {op.op_id!r} has {n_parents} inputs; a mixer combines at most two"
                )

    if len(graph) == 0:
        problems.append("graph is empty")

    return problems


def assert_valid(graph: SequencingGraph, require_inputs: bool = False) -> None:
    """Raise :class:`GraphValidationError` if the graph is not well-formed."""
    problems = validate_graph(graph, require_inputs=require_inputs)
    if problems:
        raise GraphValidationError(problems)
