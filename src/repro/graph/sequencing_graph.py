"""Core sequencing-graph data model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class OperationType(enum.Enum):
    """Kind of a bioassay operation.

    ``INPUT`` nodes model sample/reagent dispensing (the ``i1..i8`` leaves in
    the paper's Fig. 2(a)); they need no device and take a fixed dispense
    time.  All other kinds execute on a device (mixer, heater, detector).
    """

    INPUT = "input"
    MIX = "mix"
    DILUTE = "dilute"
    HEAT = "heat"
    DETECT = "detect"
    WASH = "wash"
    OUTPUT = "output"

    @property
    def needs_device(self) -> bool:
        return self not in (OperationType.INPUT, OperationType.OUTPUT)


@dataclass
class Operation:
    """A single node of the sequencing graph.

    Parameters
    ----------
    op_id:
        Unique string identifier (``"o1"``, ``"i3"`` ...).
    kind:
        The :class:`OperationType`.
    duration:
        Execution time in seconds on its device (0 for inputs by default).
    label:
        Optional human readable description.
    """

    op_id: str
    kind: OperationType = OperationType.MIX
    duration: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"operation {self.op_id!r}: duration must be non-negative")

    @property
    def needs_device(self) -> bool:
        return self.kind.needs_device

    def __hash__(self) -> int:
        return hash(self.op_id)

    def __repr__(self) -> str:
        return f"Operation({self.op_id!r}, {self.kind.value}, {self.duration}s)"


class SequencingGraph:
    """Directed acyclic graph of assay operations.

    Edges ``(parent, child)`` mean the child consumes the fluid produced by
    the parent; the child therefore cannot start before the parent ends plus
    the transport (and possibly storage) time — the paper's precedence
    constraint (3).
    """

    def __init__(self, name: str = "assay") -> None:
        self.name = name
        self._operations: Dict[str, Operation] = {}
        self._successors: Dict[str, List[str]] = {}
        self._predecessors: Dict[str, List[str]] = {}

    # ------------------------------------------------------------- building
    def add_operation(self, operation: Operation) -> Operation:
        if operation.op_id in self._operations:
            raise ValueError(f"duplicate operation id {operation.op_id!r}")
        self._operations[operation.op_id] = operation
        self._successors[operation.op_id] = []
        self._predecessors[operation.op_id] = []
        return operation

    def add_mix(self, op_id: str, duration: int, label: str = "") -> Operation:
        return self.add_operation(Operation(op_id, OperationType.MIX, duration, label))

    def add_input(self, op_id: str, duration: int = 0, label: str = "") -> Operation:
        return self.add_operation(Operation(op_id, OperationType.INPUT, duration, label))

    def add_edge(self, parent_id: str, child_id: str) -> None:
        if parent_id not in self._operations:
            raise KeyError(f"unknown parent operation {parent_id!r}")
        if child_id not in self._operations:
            raise KeyError(f"unknown child operation {child_id!r}")
        if parent_id == child_id:
            raise ValueError(f"self-loop on {parent_id!r} is not allowed")
        if child_id in self._successors[parent_id]:
            return
        if self._would_create_cycle(parent_id, child_id):
            raise ValueError(f"edge {parent_id!r}->{child_id!r} would create a cycle")
        self._successors[parent_id].append(child_id)
        self._predecessors[child_id].append(parent_id)

    def _would_create_cycle(self, parent_id: str, child_id: str) -> bool:
        # A cycle appears iff parent is reachable from child.
        stack = [child_id]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == parent_id:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._successors[node])
        return False

    # -------------------------------------------------------------- queries
    def operation(self, op_id: str) -> Operation:
        return self._operations[op_id]

    def __contains__(self, op_id: str) -> bool:
        return op_id in self._operations

    def __len__(self) -> int:
        return len(self._operations)

    def operations(self) -> List[Operation]:
        """All operations in insertion order."""
        return list(self._operations.values())

    def operation_ids(self) -> List[str]:
        return list(self._operations.keys())

    def device_operations(self) -> List[Operation]:
        """Operations that must be bound to a device (the paper's set ``O``)."""
        return [op for op in self._operations.values() if op.needs_device]

    def input_operations(self) -> List[Operation]:
        return [op for op in self._operations.values() if op.kind is OperationType.INPUT]

    def successors(self, op_id: str) -> List[str]:
        return list(self._successors[op_id])

    def predecessors(self, op_id: str) -> List[str]:
        return list(self._predecessors[op_id])

    def edges(self) -> List[Tuple[str, str]]:
        return [(p, c) for p, children in self._successors.items() for c in children]

    def device_edges(self) -> List[Tuple[str, str]]:
        """Edges between two device-bound operations (candidates for fluid transport)."""
        return [
            (p, c)
            for p, c in self.edges()
            if self._operations[p].needs_device and self._operations[c].needs_device
        ]

    def roots(self) -> List[str]:
        return [op_id for op_id in self._operations if not self._predecessors[op_id]]

    def sinks(self) -> List[str]:
        return [op_id for op_id in self._operations if not self._successors[op_id]]

    def in_degree(self, op_id: str) -> int:
        return len(self._predecessors[op_id])

    def out_degree(self, op_id: str) -> int:
        return len(self._successors[op_id])

    # ------------------------------------------------------------ traversal
    def topological_order(self) -> List[str]:
        """Kahn topological order of all operation ids."""
        in_deg = {op_id: len(parents) for op_id, parents in self._predecessors.items()}
        ready = [op_id for op_id, deg in in_deg.items() if deg == 0]
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for child in self._successors[node]:
                in_deg[child] -= 1
                if in_deg[child] == 0:
                    ready.append(child)
        if len(order) != len(self._operations):
            raise ValueError(f"sequencing graph {self.name!r} contains a cycle")
        return order

    def iter_topological(self) -> Iterator[Operation]:
        for op_id in self.topological_order():
            yield self._operations[op_id]

    def descendants(self, op_id: str) -> Set[str]:
        result: Set[str] = set()
        stack = list(self._successors[op_id])
        while stack:
            node = stack.pop()
            if node in result:
                continue
            result.add(node)
            stack.extend(self._successors[node])
        return result

    def ancestors(self, op_id: str) -> Set[str]:
        result: Set[str] = set()
        stack = list(self._predecessors[op_id])
        while stack:
            node = stack.pop()
            if node in result:
                continue
            result.add(node)
            stack.extend(self._predecessors[node])
        return result

    # ----------------------------------------------------------- statistics
    def total_duration(self) -> int:
        """Sum of all operation durations (a trivial upper bound on t_E)."""
        return sum(op.duration for op in self._operations.values())

    def device_operation_count(self) -> int:
        return len(self.device_operations())

    def subgraph_without_inputs(self) -> "SequencingGraph":
        """Copy of the graph restricted to device operations.

        Edges from inputs are dropped; transitive dependencies between device
        operations are preserved because inputs are always leaves.
        """
        sub = SequencingGraph(name=f"{self.name}-device-ops")
        for op in self.device_operations():
            sub.add_operation(Operation(op.op_id, op.kind, op.duration, op.label))
        for parent, child in self.device_edges():
            sub.add_edge(parent, child)
        return sub

    def copy(self) -> "SequencingGraph":
        clone = SequencingGraph(name=self.name)
        for op in self._operations.values():
            clone.add_operation(Operation(op.op_id, op.kind, op.duration, op.label))
        for parent, child in self.edges():
            clone.add_edge(parent, child)
        return clone

    def __repr__(self) -> str:
        return (
            f"SequencingGraph({self.name!r}, {len(self)} operations, "
            f"{len(self.edges())} edges)"
        )
