"""Library of real-world assays used in the paper's evaluation.

The paper evaluates three real bioassays — PCR (polymerase chain reaction
mixing stage), IVD (in-vitro diagnostics) and CPA (colorimetric protein
assay) — alongside three random assays.  The sequencing graphs below are
reconstructed from the descriptions in the paper and the standard
digital/flow-biochip benchmark suite (Su & Chakrabarty, ICCAD 2004) that the
paper's scheduling formulation cites.

Durations follow common flow-based-chip mixing/detection times and are chosen
so the single-device critical paths fall in the same range as the paper's
Table 2 (see ``EXPERIMENTS.md`` for the paper-vs-measured comparison).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.graph.generators import paper_random_assay
from repro.graph.sequencing_graph import Operation, OperationType, SequencingGraph
from repro.graph.validation import assert_valid

#: Default mixing time (seconds) used by the real assays.
DEFAULT_MIX_TIME = 90
#: Default optical detection time (seconds).
DEFAULT_DETECT_TIME = 30
#: Default dilution time (seconds).
DEFAULT_DILUTE_TIME = 60


def build_pcr(mix_time: int = DEFAULT_MIX_TIME) -> SequencingGraph:
    """PCR mixing stage: 8 input samples reduced by 7 mixing operations.

    This is exactly the sequencing graph of the paper's Fig. 2(a): a balanced
    binary reduction tree (o1..o4 mix the inputs pairwise, o5 mixes o1+o2,
    o6 mixes o3+o4, o7 mixes o5+o6).
    """
    graph = SequencingGraph(name="PCR")
    for idx in range(1, 9):
        graph.add_input(f"i{idx}", label=f"sample {idx}")
    for idx in range(1, 8):
        graph.add_mix(f"o{idx}", mix_time, label=f"mix {idx}")
    graph.add_edge("i1", "o1")
    graph.add_edge("i2", "o1")
    graph.add_edge("i3", "o2")
    graph.add_edge("i4", "o2")
    graph.add_edge("i5", "o3")
    graph.add_edge("i6", "o3")
    graph.add_edge("i7", "o4")
    graph.add_edge("i8", "o4")
    graph.add_edge("o1", "o5")
    graph.add_edge("o2", "o5")
    graph.add_edge("o3", "o6")
    graph.add_edge("o4", "o6")
    graph.add_edge("o5", "o7")
    graph.add_edge("o6", "o7")
    assert_valid(graph)
    return graph


def build_ivd(
    num_samples: int = 3,
    num_reagents: int = 2,
    mix_time: int = 80,
    detect_time: int = DEFAULT_DETECT_TIME,
) -> SequencingGraph:
    """In-vitro diagnostics: every sample is mixed with every reagent, then detected.

    With the default 3 samples x 2 reagents the graph has 12 device
    operations (6 mixes + 6 detections), matching the |O| = 12 reported for
    IVD in Table 2.
    """
    graph = SequencingGraph(name="IVD")
    for s in range(1, num_samples + 1):
        graph.add_input(f"S{s}", label=f"sample {s}")
    for r in range(1, num_reagents + 1):
        graph.add_input(f"R{r}", label=f"reagent {r}")

    op_index = 0
    for s in range(1, num_samples + 1):
        for r in range(1, num_reagents + 1):
            op_index += 1
            mix_id = f"o{op_index}"
            graph.add_mix(mix_id, mix_time, label=f"mix S{s}+R{r}")
            graph.add_edge(f"S{s}", mix_id)
            graph.add_edge(f"R{r}", mix_id)
    num_mixes = op_index
    for m in range(1, num_mixes + 1):
        op_index += 1
        det_id = f"o{op_index}"
        graph.add_operation(Operation(det_id, OperationType.DETECT, detect_time, label=f"detect {m}"))
        graph.add_edge(f"o{m}", det_id)
    assert_valid(graph)
    return graph


def build_cpa(
    dilution_levels: int = 7,
    mix_time: int = DEFAULT_MIX_TIME,
    dilute_time: int = DEFAULT_DILUTE_TIME,
    detect_time: int = DEFAULT_DETECT_TIME,
) -> SequencingGraph:
    """Colorimetric protein assay (Bradford reaction).

    The protocol performs an exponential serial dilution of the protein
    sample, mixes every dilution with the Bradford reagent and finally runs an
    optical detection on each mixture.  With the default parameters the graph
    has 55 device operations, matching |O| = 55 for CPA in Table 2:

    * serial-dilution binary tree over ``dilution_levels`` stages
      (here: 1 + 2 + 4 + ... capped to produce 13 dilution nodes),
    * one reagent mix per final dilution (21 mixes),
    * one detection per mix (21 detections).
    """
    graph = SequencingGraph(name="CPA")
    graph.add_input("sample", label="protein sample")
    graph.add_input("buffer", label="dilution buffer")
    graph.add_input("reagent", label="Bradford reagent")

    # Stage 1: serial dilution chain/tree.  We reproduce the classic CPA
    # structure: each dilution splits its product into two further dilutions
    # until the target count is reached.
    dilution_ids: List[str] = []
    frontier: List[str] = ["sample"]
    op_index = 0
    target_dilutions = 13
    while len(dilution_ids) < target_dilutions:
        source = frontier.pop(0)
        op_index += 1
        dil_id = f"o{op_index}"
        graph.add_operation(Operation(dil_id, OperationType.DILUTE, dilute_time, label=f"dilute {op_index}"))
        graph.add_edge(source, dil_id)
        graph.add_edge("buffer", dil_id)
        dilution_ids.append(dil_id)
        # Each dilution can seed up to two further dilutions.
        frontier.append(dil_id)
        frontier.append(dil_id)

    # Stage 2: mix each of the final dilutions (and the undiluted sample) with
    # the reagent.  21 mixes.
    assay_points = dilution_ids[-target_dilutions:] + dilution_ids[: 21 - target_dilutions]
    mix_ids: List[str] = []
    for point in assay_points[:21]:
        op_index += 1
        mix_id = f"o{op_index}"
        graph.add_mix(mix_id, mix_time, label=f"reagent mix on {point}")
        graph.add_edge(point, mix_id)
        graph.add_edge("reagent", mix_id)
        mix_ids.append(mix_id)

    # Stage 3: optical detection of every mixture.  21 detections.
    for mix_id in mix_ids:
        op_index += 1
        det_id = f"o{op_index}"
        graph.add_operation(Operation(det_id, OperationType.DETECT, detect_time, label=f"detect {mix_id}"))
        graph.add_edge(mix_id, det_id)

    assert_valid(graph)
    return graph


def build_protein_split(levels: int = 3, mix_time: int = DEFAULT_MIX_TIME) -> SequencingGraph:
    """A small exponential-split protein dilution assay (extra example workload).

    Not part of the paper's evaluation; used by examples and ablation
    benchmarks as an additional realistic protocol with high parallelism.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    graph = SequencingGraph(name=f"ProteinSplit{levels}")
    graph.add_input("sample")
    graph.add_input("buffer")
    previous = ["sample"]
    op_index = 0
    for _level in range(levels):
        next_level = []
        for parent in previous:
            for _branch in range(2):
                op_index += 1
                op_id = f"o{op_index}"
                graph.add_mix(op_id, mix_time)
                graph.add_edge(parent, op_id)
                next_level.append(op_id)
        previous = next_level
    assert_valid(graph)
    return graph


#: Builders for the six assays evaluated in the paper, keyed by the names
#: used in Table 2.  Values are zero-argument callables returning a fresh
#: :class:`SequencingGraph`.
PAPER_ASSAYS: Dict[str, Callable[[], SequencingGraph]] = {
    "RA100": lambda: paper_random_assay(100),
    "RA70": lambda: paper_random_assay(70),
    "CPA": build_cpa,
    "RA30": lambda: paper_random_assay(30),
    "IVD": build_ivd,
    # An 80 s mixing time on two mixers reproduces the paper's setting where
    # the PCR schedule genuinely needs intermediate storage (Fig. 2).
    "PCR": lambda: build_pcr(mix_time=80),
}


def assay_by_name(name: str) -> SequencingGraph:
    """Build one of the paper's six assays by its Table 2 name."""
    try:
        builder = PAPER_ASSAYS[name]
    except KeyError:
        known = ", ".join(sorted(PAPER_ASSAYS))
        raise KeyError(f"unknown assay {name!r}; known assays: {known}") from None
    return builder()
