"""Chip-state snapshots (paper Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.archsyn.grid import EdgeId


@dataclass(frozen=True)
class SegmentState:
    """What a channel segment is doing at the snapshot instant."""

    edge: EdgeId
    purpose: str  # "transport" or "storage"
    task_id: str
    sample_id: str


@dataclass
class Snapshot:
    """State of the chip at one time instant."""

    time: int
    #: device id -> operation currently executing on it.
    active_devices: Dict[str, str]
    #: edge -> state, only for segments busy at this instant.
    segments: Dict[EdgeId, SegmentState]
    #: device id -> grid node id.
    placement: Dict[str, str]
    grid_shape: Tuple[int, int]

    def transporting_segments(self) -> List[SegmentState]:
        """Segments carrying a droplet at this instant."""
        return [s for s in self.segments.values() if s.purpose == "transport"]

    def storing_segments(self) -> List[SegmentState]:
        """Segments caching a stored sample at this instant."""
        return [s for s in self.segments.values() if s.purpose == "storage"]

    def busy_segment_count(self) -> int:
        """Number of segments busy (transporting or storing) right now."""
        return len(self.segments)

    def describe(self) -> List[str]:
        """Human-readable lines summarizing the snapshot."""
        lines = [f"t = {self.time}s"]
        for device, op in sorted(self.active_devices.items()):
            lines.append(f"  {device}: executing {op}")
        for state in sorted(self.segments.values(), key=lambda s: tuple(sorted(s.edge))):
            a, b = sorted(state.edge)
            verb = "caching" if state.purpose == "storage" else "transporting"
            lines.append(f"  segment {a}--{b}: {verb} sample {state.sample_id}")
        if len(lines) == 1:
            lines.append("  (idle)")
        return lines


def render_snapshot_ascii(snapshot: Snapshot) -> str:
    """Draw the connection grid with device/switch/segment states as ASCII art.

    Devices are drawn as ``[D]`` with an index, busy segments as ``=`` (when
    transporting) or ``#`` (when caching), idle grid positions as ``.``.
    """
    rows, cols = snapshot.grid_shape
    node_of_device = {node: device for device, node in snapshot.placement.items()}
    device_index = {device: idx + 1 for idx, device in enumerate(sorted(snapshot.placement))}

    def node_id(row: int, col: int) -> str:
        return f"n{row}_{col}"

    def segment_char(node_a: str, node_b: str) -> str:
        for state in snapshot.segments.values():
            if set(state.edge) == {node_a, node_b}:
                return "#" if state.purpose == "storage" else "="
        return " "

    lines: List[str] = []
    for row in range(rows):
        # Node row.
        cells: List[str] = []
        for col in range(cols):
            nid = node_id(row, col)
            if nid in node_of_device:
                cells.append(f"[{device_index[node_of_device[nid]]}]")
            else:
                cells.append(" . ")
            if col + 1 < cols:
                char = segment_char(nid, node_id(row, col + 1))
                cells.append(char * 3 if char != " " else "   ")
        lines.append("".join(cells))
        # Vertical-segment row.
        if row + 1 < rows:
            vcells: List[str] = []
            for col in range(cols):
                char = segment_char(node_id(row, col), node_id(row + 1, col))
                vcells.append(f" {char} " if char != " " else "   ")
                if col + 1 < cols:
                    vcells.append("   ")
            lines.append("".join(vcells))

    legend = [
        f"[{idx}] = {device}" for device, idx in sorted(device_index.items(), key=lambda kv: kv[1])
    ]
    lines.append("legend: " + ", ".join(legend) + "  (= transport, # storage)")
    lines.append(f"time: {snapshot.time}s")
    return "\n".join(lines)
