"""Execution simulation of a synthesized biochip.

The simulator replays a (schedule, architecture) pair on a time axis: device
operations run in their scheduled windows, transportation paths are activated
through the switches, and channel segments hold cached fluid samples.  It is
used to

* double-check that the synthesis result is physically executable (no
  channel-segment double booking — independently of the architecture's own
  validator, the segment objects refuse overlapping reservations),
* extract chip-state *snapshots* at arbitrary times, reproducing the paper's
  Fig. 11 execution snapshots of RA30, and
* gather activity statistics (channel utilization, valve actuations).

Since the verification stage landed, the package also hosts the seeded
Monte-Carlo engine (:mod:`repro.simulation.montecarlo`): stochastic
replays under duration jitter, injected device/channel faults with
retry/migration recovery, and contamination washes, aggregated into a
makespan distribution (p50/p95/p99) and a failure-recovery rate.  The
pipeline's optional ``verify`` stage and the ``repro simulate``
subcommand both run on it.
"""

from repro.simulation.events import SimulationEvent, EventKind
from repro.simulation.montecarlo import (
    MonteCarloConfig,
    MonteCarloEngine,
    ReplayPlan,
    TrialAggregate,
    TrialResult,
    VerificationReport,
)
from repro.simulation.simulator import ChipSimulator, SimulationResult
from repro.simulation.snapshot import Snapshot, SegmentState, render_snapshot_ascii

__all__ = [
    "SimulationEvent",
    "EventKind",
    "ChipSimulator",
    "SimulationResult",
    "MonteCarloConfig",
    "MonteCarloEngine",
    "ReplayPlan",
    "TrialAggregate",
    "TrialResult",
    "VerificationReport",
    "Snapshot",
    "SegmentState",
    "render_snapshot_ascii",
]
