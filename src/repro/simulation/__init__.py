"""Execution simulation of a synthesized biochip.

The simulator replays a (schedule, architecture) pair on a time axis: device
operations run in their scheduled windows, transportation paths are activated
through the switches, and channel segments hold cached fluid samples.  It is
used to

* double-check that the synthesis result is physically executable (no
  channel-segment double booking — independently of the architecture's own
  validator, the segment objects refuse overlapping reservations),
* extract chip-state *snapshots* at arbitrary times, reproducing the paper's
  Fig. 11 execution snapshots of RA30, and
* gather activity statistics (channel utilization, valve actuations).
"""

from repro.simulation.events import SimulationEvent, EventKind
from repro.simulation.simulator import ChipSimulator, SimulationResult
from repro.simulation.snapshot import Snapshot, SegmentState, render_snapshot_ascii

__all__ = [
    "SimulationEvent",
    "EventKind",
    "ChipSimulator",
    "SimulationResult",
    "Snapshot",
    "SegmentState",
    "render_snapshot_ascii",
]
