"""Seeded Monte-Carlo verification of a synthesized schedule.

The deterministic flow emits a single makespan, but a fabricated biochip
sees stochastic operation durations and valve/device/channel failures.
This module replays a :class:`~repro.scheduling.schedule.Schedule` many
times under three perturbation families and reports a *distribution*
instead of one number:

* **Duration jitter** — each operation's duration is inflated by a draw
  from a configurable distribution (``uniform`` or ``normal`` spread).
  Jitter is inflation-only by construction, so a jittered trial can never
  finish before the deterministic schedule; with jitter disabled the
  replay reproduces the deterministic makespan *exactly*, for any seed.
* **Device faults** — with probability ``fault_rate`` the device executing
  an operation faults.  Recovery first retries on the same device (each
  failed attempt burns one full duration), then migrates the operation to
  a compatible spare (plus one transport time); the faulted device stays
  blocked until the migrated operation completes — a repair window that
  keeps every trial's resource-release times pointwise at or above the
  fault-free trial's, so an injected-failure trial can never report a
  makespan below the fault-free one.  A fault with no working spare is
  *unrecovered*: the operation still completes (best effort, one extra
  duration), but the trial's recovery rate drops below 1.
* **Channel faults** — with probability ``channel_fault_rate`` the routing
  channel carrying a fluid transport faults and the droplet is rerouted,
  adding one transport time to the affected precedence edge.  Reroutes
  always succeed and are counted separately from device-fault recovery.
* **Contamination washes** — with ``wash_time > 0``, a wash is inserted
  between consecutive operations on one device unless the later operation
  directly consumes the earlier one's product (a direct graph successor
  needs no wash: the fluid itself moves on).

Determinism: every trial derives two independent :class:`random.Random`
streams — one for jitter, one for faults — via
:func:`repro.keys.derive_seed`, which is SHA-256 based and therefore
identical in every process regardless of ``PYTHONHASHSEED``.  The same
seed yields the same trial sequence bit-for-bit, and enabling faults
leaves the jitter draws untouched (separate streams), which is what makes
the fault-vs-fault-free monotonicity property testable.

Performance architecture (three stacked layers, all bit-identical):

* A :class:`ReplayPlan` is compiled once per engine and lowers the replay
  to integer-indexed arrays — topological entry order, CSR predecessor
  indices with precomputed transport minima, static wash predicates,
  device-index maps, and per-entry spare candidate lists — so no trial
  ever calls ``graph.predecessors()``, hashes a string key, or sorts.
* All trials in a block advance entry by entry as numpy vector operations
  across the trial axis: plain elementwise max/add passes over a
  ``(trials x entries)`` duration matrix when
  ``fault_rate == channel_fault_rate == 0``, and a masked variant (per
  trial fault/retry/migration masks with a per-trial draw cursor) when
  faults are enabled.  The random draws still come from the per-trial
  SHA-derived ``random.Random`` streams — reproduced bit-for-bit across
  the trial axis by :mod:`repro.simulation.mtstream` — and
  ``round``/``np.rint`` agree on float64 (both round half to even), so
  every reported value is bit-identical to the scalar engine.
* ``workers > 1`` shards trial index ranges across a process pool.
  Per-trial streams are derived from the trial *index*, so any shard
  boundary reproduces the exact same draws and the merged report is
  byte-identical for every worker count.

Aggregation is streaming: each shard returns sorted makespans plus
counter sums (a :class:`TrialAggregate`), so a 100k-trial run never holds
100k :class:`TrialResult` objects; per-trial detail is retained only up
to :data:`TRIAL_DETAIL_LIMIT` trials.  Set ``REPRO_MC_SCALAR=1`` to force
the original scalar engine — the differential reference the test suite
pins the fast paths against, mirroring ``REPRO_BB_SCALAR``.
"""

from __future__ import annotations

import math
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph
from repro.keys import derive_seed
from repro.obs import metrics as obs_metrics
from repro.obs.trace import (
    SpanContext,
    TraceRecorder,
    current_context,
    install_recorder,
    recorder,
    span as obs_span,
    tracing_enabled,
    uninstall_recorder,
)
from repro.scheduling.schedule import Schedule
from repro.simulation.mtstream import derive_seed_block, uniform_block

#: Hard cap on the violation diagnostics kept per report, so a
#: pathological configuration cannot balloon artifact payloads.  When the
#: cap truncates, the report's last entry is a ``"... +N more"`` marker.
MAX_DIAGNOSTICS = 32

#: Environment variable forcing the scalar reference engine (mirrors
#: ``REPRO_BB_SCALAR`` on the branch-and-bound kernels).
_SCALAR_ENV = "REPRO_MC_SCALAR"

#: Per-trial :class:`TrialResult` detail is kept only for runs at or
#: below this many trials; larger runs report aggregates only.
TRIAL_DETAIL_LIMIT = 2048

#: Trials per vectorized block — bounds the ``(block x entries)``
#: matrices a batched pass materializes.
VECTOR_BLOCK_TRIALS = 4096

#: Minimum trials worth paying one worker process for; requests for more
#: workers than ``trials // MIN_TRIALS_PER_SHARD`` are quietly clamped.
MIN_TRIALS_PER_SHARD = 64


@dataclass(frozen=True)
class MonteCarloConfig:
    """Knobs of one Monte-Carlo verification run.

    Mirrors the ``verify_*`` slice of
    :class:`~repro.synthesis.config.FlowConfig` (see
    :meth:`from_flow_config`) so the stage's cache key and the engine's
    behavior are driven by the same values.  ``workers`` is runtime
    advice: it shards trials across processes without changing a single
    reported value, so it deliberately sits outside the stage cache key.
    """

    trials: int = 32
    seed: int = 0
    jitter: str = "none"
    jitter_spread: float = 0.1
    fault_rate: float = 0.0
    channel_fault_rate: float = 0.0
    max_retries: int = 1
    wash_time: int = 0
    workers: int = 1

    @classmethod
    def from_flow_config(cls, config: Any) -> "MonteCarloConfig":
        """Build the engine config from a ``FlowConfig``'s verify fields."""
        return cls(
            trials=config.verify_trials,
            seed=config.verify_seed,
            jitter=config.verify_jitter,
            jitter_spread=config.verify_jitter_spread,
            fault_rate=config.verify_fault_rate,
            channel_fault_rate=config.verify_channel_fault_rate,
            max_retries=config.verify_max_retries,
            wash_time=config.verify_wash_time,
            workers=config.verify_workers,
        )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one stochastic replay."""

    trial: int
    makespan: int
    faults_injected: int
    faults_recovered: int
    retries: int
    migrations: int
    reroutes: int
    washes: int

    @property
    def recovered(self) -> bool:
        """True when every injected device fault was recovered."""
        return self.faults_recovered == self.faults_injected


@dataclass
class TrialAggregate:
    """Streaming summary of many trials: sorted makespans + counter sums.

    This is what shards ship back to the coordinator and what the report
    computes its statistics from, so the full per-trial object list never
    has to exist for large runs.  ``sorted_makespans`` is ascending.
    """

    count: int = 0
    sorted_makespans: List[int] = field(default_factory=list)
    makespan_sum: int = 0
    faults_injected: int = 0
    faults_recovered: int = 0
    retries: int = 0
    migrations: int = 0
    reroutes: int = 0
    washes: int = 0

    @classmethod
    def from_trials(cls, trials: List[TrialResult]) -> "TrialAggregate":
        """Aggregate a trial list in one pass (one sort, one scan)."""
        return cls(
            count=len(trials),
            sorted_makespans=sorted(t.makespan for t in trials),
            makespan_sum=sum(t.makespan for t in trials),
            faults_injected=sum(t.faults_injected for t in trials),
            faults_recovered=sum(t.faults_recovered for t in trials),
            retries=sum(t.retries for t in trials),
            migrations=sum(t.migrations for t in trials),
            reroutes=sum(t.reroutes for t in trials),
            washes=sum(t.washes for t in trials),
        )

    @classmethod
    def merged(cls, parts: List["TrialAggregate"]) -> "TrialAggregate":
        """Merge shard aggregates; the result is shard-order independent."""
        spans: List[int] = []
        for part in parts:
            spans.extend(part.sorted_makespans)
        spans.sort()
        return cls(
            count=sum(p.count for p in parts),
            sorted_makespans=spans,
            makespan_sum=sum(p.makespan_sum for p in parts),
            faults_injected=sum(p.faults_injected for p in parts),
            faults_recovered=sum(p.faults_recovered for p in parts),
            retries=sum(p.retries for p in parts),
            migrations=sum(p.migrations for p in parts),
            reroutes=sum(p.reroutes for p in parts),
            washes=sum(p.washes for p in parts),
        )


@dataclass
class VerificationReport:
    """Aggregate of all trials: the distribution the stage reports.

    Percentiles use the nearest-rank method (``sorted[ceil(q/100*n)-1]``),
    which guarantees ``p50 <= p95 <= p99`` and that every reported value
    is an actually-observed makespan.  Statistics are served from a
    :class:`TrialAggregate` computed once (the makespans are sorted a
    single time, at aggregation), not by re-sorting ``trials`` per call.
    ``trials`` carries per-trial detail only for runs at or below
    :data:`TRIAL_DETAIL_LIMIT`; use :attr:`trial_count` for the number of
    trials actually executed.
    """

    trials: List[TrialResult]
    deterministic_makespan: int
    violations: List[str] = field(default_factory=list)
    aggregate: Optional[TrialAggregate] = None

    def __post_init__(self) -> None:
        if self.aggregate is None:
            self.aggregate = TrialAggregate.from_trials(self.trials)

    @property
    def trial_count(self) -> int:
        """Number of trials executed (== ``len(trials)`` unless elided)."""
        return self.aggregate.count

    def _percentile(self, q: int) -> int:
        spans = self.aggregate.sorted_makespans
        rank = max(1, -(-(q * len(spans)) // 100))
        return spans[min(rank, len(spans)) - 1]

    @property
    def makespan_p50(self) -> int:
        """Median trial makespan (nearest rank)."""
        return self._percentile(50)

    @property
    def makespan_p95(self) -> int:
        """95th-percentile trial makespan (nearest rank)."""
        return self._percentile(95)

    @property
    def makespan_p99(self) -> int:
        """99th-percentile trial makespan (nearest rank)."""
        return self._percentile(99)

    @property
    def makespan_mean(self) -> float:
        """Mean trial makespan."""
        return self.aggregate.makespan_sum / self.aggregate.count

    @property
    def makespan_max(self) -> int:
        """Worst observed trial makespan."""
        return self.aggregate.sorted_makespans[-1]

    @property
    def faults_injected(self) -> int:
        """Device faults injected across all trials."""
        return self.aggregate.faults_injected

    @property
    def faults_recovered(self) -> int:
        """Device faults recovered (retry or migration) across all trials."""
        return self.aggregate.faults_recovered

    @property
    def recovery_rate(self) -> float:
        """Recovered / injected device faults (1.0 when none injected)."""
        injected = self.faults_injected
        return 1.0 if injected == 0 else self.faults_recovered / injected

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary for batch/service payloads."""
        agg = self.aggregate
        return {
            "trials": agg.count,
            "deterministic_makespan": self.deterministic_makespan,
            "makespan_p50": self.makespan_p50,
            "makespan_p95": self.makespan_p95,
            "makespan_p99": self.makespan_p99,
            "makespan_mean": round(self.makespan_mean, 3),
            "makespan_max": self.makespan_max,
            "faults_injected": agg.faults_injected,
            "faults_recovered": agg.faults_recovered,
            "recovery_rate": round(self.recovery_rate, 6),
            "reroutes": agg.reroutes,
            "retries": agg.retries,
            "migrations": agg.migrations,
            "washes": agg.washes,
            "violations": list(self.violations),
        }


class ReplayPlan:
    """The replay lowered to integer-indexed arrays, built once per engine.

    Compiling the plan hoists everything that does not depend on the
    trial's random draws out of the per-trial loop:

    * device-bound entries in processing order, with their scheduled
      starts, durations and device indices as flat arrays;
    * a CSR predecessor structure (``pred_indptr``/``pred_pos``) listing,
      for each entry, the *earlier* device-bound parents in sorted-op-id
      order — exactly the parents (and the draw order) the scalar replay
      visits — plus each edge's static precedence minimum for the
      fault-free path, where bindings never move;
    * static wash predicates (in a fault-free replay the device occupancy
      sequence is schedule-determined, so "previous occupant is not a
      direct predecessor" is a compile-time fact per entry);
    * per-entry spare candidate lists (compatible devices minus the
      scheduled one, sorted by id so the scalar ``min`` tie-break is
      reproduced by a linear strict-less scan);
    * the static makespan floor contributed by entries without a device.
    """

    __slots__ = (
        "num_entries",
        "num_devices",
        "transport_time",
        "static_floor",
        "static_wash_count",
        "total_pred_edges",
        "starts",
        "durations",
        "device",
        "preds",
        "pred_sets",
        "spares",
        "spares_np",
        "wash_static",
        "wash_skip",
        "entry_op_ids",
        "device_ids",
        "starts_np",
        "durations_np",
        "pred_indptr",
        "pred_pos",
        "pred_min",
        "jitter_positions",
    )

    def __init__(self, schedule: Schedule, library: DeviceLibrary) -> None:
        graph: SequencingGraph = schedule.graph
        entries = schedule.entries()
        device_entries = [e for e in entries if e.device_id is not None]
        self.num_entries = len(device_entries)
        self.transport_time = schedule.transport_time
        self.static_floor = max(
            (e.end for e in entries if e.device_id is None), default=0
        )

        device_ids = sorted(device.device_id for device in library)
        for entry in device_entries:
            if entry.device_id not in device_ids:
                device_ids.append(entry.device_id)  # defensive: out-of-library binding
        index_of = {device_id: i for i, device_id in enumerate(device_ids)}
        self.device_ids = device_ids
        self.num_devices = len(device_ids)

        pos = {e.op_id: i for i, e in enumerate(device_entries)}
        self.entry_op_ids = [e.op_id for e in device_entries]
        self.starts = [e.start for e in device_entries]
        self.durations = [e.duration for e in device_entries]
        self.device = [index_of[e.device_id] for e in device_entries]

        preds: List[Tuple[int, ...]] = []
        pred_sets: List[FrozenSet[int]] = []
        spares: List[Tuple[int, ...]] = []
        flat_pos: List[int] = []
        flat_min: List[int] = []
        indptr: List[int] = [0]
        for i, entry in enumerate(device_entries):
            parent_ids = graph.predecessors(entry.op_id)
            # The scalar replay visits parents in sorted-op-id order and
            # skips any not yet processed (or not device-bound) — i.e.
            # exactly the device entries with a smaller position.
            visited = tuple(
                pos[p] for p in sorted(parent_ids) if p in pos and pos[p] < i
            )
            preds.append(visited)
            pred_sets.append(frozenset(pos[p] for p in parent_ids if p in pos))
            for p in visited:
                flat_pos.append(p)
                flat_min.append(
                    0
                    if device_entries[p].device_id == entry.device_id
                    else self.transport_time
                )
            indptr.append(len(flat_pos))
            op = graph.operation(entry.op_id)
            spares.append(
                tuple(
                    index_of[d]
                    for d in sorted(
                        device.device_id
                        for device in library.devices_for(op.kind)
                        if device.device_id != entry.device_id
                    )
                )
            )
        self.preds = preds
        self.pred_sets = pred_sets
        self.spares = spares
        self.spares_np = [np.asarray(s, dtype=np.int64) for s in spares]
        self.total_pred_edges = len(flat_pos)

        # Static wash predicates: replay the fault-free occupancy sequence.
        wash_static: List[bool] = []
        last_on: Dict[int, int] = {}
        for i, entry in enumerate(device_entries):
            d = self.device[i]
            prev = last_on.get(d)
            wash_static.append(prev is not None and prev not in pred_sets[i])
            last_on[d] = i
        self.wash_static = wash_static
        self.static_wash_count = sum(wash_static)

        # Dynamic wash lookup: ``wash_skip[e][p]`` is True when a wash is
        # NOT needed after entry ``p`` runs on the device (direct graph
        # predecessor, or the ``num_entries`` "nothing ran yet" sentinel).
        wash_skip = np.zeros((self.num_entries, self.num_entries + 1), dtype=bool)
        for i in range(self.num_entries):
            for p in pred_sets[i]:
                wash_skip[i, p] = True
            wash_skip[i, self.num_entries] = True
        self.wash_skip = wash_skip

        self.starts_np = np.asarray(self.starts, dtype=np.int64)
        self.durations_np = np.asarray(self.durations, dtype=np.int64)
        self.pred_indptr = indptr
        self.pred_pos = flat_pos
        self.pred_min = flat_min
        self.jitter_positions = np.nonzero(self.durations_np > 0)[0]


@dataclass
class _ShardOutcome:
    """What one trial-range replay ships back to the coordinator."""

    aggregate: TrialAggregate
    detail: List[TrialResult]
    notes: List[str]
    notes_total: int
    #: Serialized spans recorded inside the shard worker (empty unless the
    #: coordinator was tracing); absorbed into the parent recorder.
    spans: List[Dict[str, Any]] = field(default_factory=list)


def _shard_bounds(trials: int, workers: int) -> List[Tuple[int, int]]:
    """Split ``range(trials)`` into at most ``workers`` contiguous shards."""
    shards = min(max(1, workers), max(1, trials // MIN_TRIALS_PER_SHARD))
    if shards <= 1:
        return [(0, trials)]
    base, extra = divmod(trials, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _replay_shard(
    schedule: Schedule,
    library: DeviceLibrary,
    config: MonteCarloConfig,
    lo: int,
    hi: int,
    trace: Optional[str] = None,
) -> _ShardOutcome:
    """Process-pool entry point: replay one trial index range.

    ``trace`` is the coordinator's serialized span context; when present the
    shard records a ``verify:shard`` span into a child recorder and ships
    the serialized spans back inside the outcome, so a sharded run's
    timeline nests under the coordinator's verify span.
    """
    if trace is None:
        return MonteCarloEngine(schedule, library, config)._run_range(lo, hi)
    child = TraceRecorder(parent=SpanContext.deserialize(trace))
    token = install_recorder(child)
    try:
        with obs_span("verify:shard", category="verify", lo=lo, hi=hi):
            outcome = MonteCarloEngine(schedule, library, config)._run_range(
                lo, hi
            )
    finally:
        uninstall_recorder(token)
    outcome.spans = child.serialized_spans()
    return outcome


class MonteCarloEngine:
    """Replays one schedule ``config.trials`` times under perturbations.

    The replay is a right-shift retiming over the deterministic processing
    order (``Schedule.entries()``: sorted by start time, then operation
    id): each operation starts at the latest of its scheduled start, its
    parents' perturbed finish times plus the precedence minimum (zero on
    the same device, one transport time otherwise, plus any reroute
    delay), and its device's availability (plus any wash).  Because every
    lower bound includes the scheduled start and every perturbation only
    adds time, the zero-perturbation replay reproduces the deterministic
    schedule exactly and perturbed replays are pointwise monotone.

    Three interchangeable executions produce byte-identical reports: the
    vectorized fault-free fast path, the plan-compiled per-trial kernel
    (used whenever faults are enabled), and the original scalar reference
    (forced with ``REPRO_MC_SCALAR=1``).  ``config.workers`` shards the
    trial range across processes without changing any reported value.
    """

    def __init__(
        self,
        schedule: Schedule,
        library: DeviceLibrary,
        config: Optional[MonteCarloConfig] = None,
    ) -> None:
        self.schedule = schedule
        self.library = library
        self.config = config or MonteCarloConfig()
        self.graph: SequencingGraph = schedule.graph
        self._plan: Optional[ReplayPlan] = None

    # ------------------------------------------------------------------ API
    def run(self) -> VerificationReport:
        """Run all trials (sharded if configured) and aggregate a report."""
        cfg = self.config
        bounds = _shard_bounds(cfg.trials, cfg.workers)
        with obs_span(
            "verify:mc", category="verify", trials=cfg.trials, shards=len(bounds)
        ) as mc_span:
            # Phase split: compiling the replay plan vs. replaying trials.
            # The plan is lazy and shard-local, so timing it here is only
            # meaningful (and only paid for) when a recorder is active; the
            # scalar reference engine never builds a plan at all.
            compile_s = 0.0
            if tracing_enabled() and os.environ.get(_SCALAR_ENV) != "1":
                compile_start = time.perf_counter()
                self.plan()
                compile_s = time.perf_counter() - compile_start
            replay_start = time.perf_counter()
            if len(bounds) <= 1:
                outcomes = [self._run_range(0, cfg.trials)]
            else:
                ctx = current_context()
                trace_wire = ctx.serialize() if ctx is not None else None
                with ProcessPoolExecutor(max_workers=len(bounds)) as pool:
                    futures = [
                        pool.submit(
                            _replay_shard,
                            self.schedule,
                            self.library,
                            cfg,
                            lo,
                            hi,
                            trace_wire,
                        )
                        for lo, hi in bounds
                    ]
                    outcomes = [f.result() for f in futures]
            replay_s = time.perf_counter() - replay_start
            rec = recorder()
            if rec is not None:
                for outcome in outcomes:
                    rec.absorb(outcome.spans)
            obs_metrics.mc_trials_counter().inc(cfg.trials)
            mc_span.set(
                plan_compile_s=round(compile_s, 6),
                replay_s=round(replay_s, 6),
                trials_per_s=round(cfg.trials / replay_s, 3) if replay_s else 0.0,
            )

        aggregate = TrialAggregate.merged([o.aggregate for o in outcomes])
        detail: List[TrialResult] = []
        if cfg.trials <= TRIAL_DETAIL_LIMIT:
            for outcome in outcomes:
                detail.extend(outcome.detail)

        violations: List[str] = []
        notes_total = 0
        for outcome in outcomes:
            notes_total += outcome.notes_total
            for note in outcome.notes:
                if len(violations) >= MAX_DIAGNOSTICS:
                    break
                violations.append(note)
        if notes_total > MAX_DIAGNOSTICS:
            violations.append(f"... +{notes_total - MAX_DIAGNOSTICS} more")

        return VerificationReport(
            trials=detail,
            deterministic_makespan=self.schedule.makespan,
            violations=violations,
            aggregate=aggregate,
        )

    # ------------------------------------------------------------- dispatch
    def plan(self) -> ReplayPlan:
        """The compiled replay plan (built lazily, reused across shards)."""
        if self._plan is None:
            self._plan = ReplayPlan(self.schedule, self.library)
        return self._plan

    def _run_range(self, lo: int, hi: int) -> _ShardOutcome:
        """Replay trials ``[lo, hi)`` with the fastest applicable kernel."""
        cfg = self.config
        keep_detail = cfg.trials <= TRIAL_DETAIL_LIMIT
        if os.environ.get(_SCALAR_ENV) == "1":
            return self._run_range_reference(lo, hi, keep_detail)
        if cfg.fault_rate == 0.0 and cfg.channel_fault_rate == 0.0:
            return self._run_range_vectorized(lo, hi, keep_detail)
        return self._run_range_masked(lo, hi, keep_detail)

    @staticmethod
    def _collect(
        trials: List[TrialResult],
        notes_per_trial: List[List[str]],
        keep_detail: bool,
    ) -> _ShardOutcome:
        """Fold per-trial results into a shard outcome (capped notes)."""
        notes: List[str] = []
        notes_total = 0
        for trial_notes in notes_per_trial:
            notes_total += len(trial_notes)
            if len(notes) < MAX_DIAGNOSTICS:
                notes.extend(trial_notes[: MAX_DIAGNOSTICS - len(notes)])
        return _ShardOutcome(
            aggregate=TrialAggregate.from_trials(trials),
            detail=trials if keep_detail else [],
            notes=notes,
            notes_total=notes_total,
        )

    # --------------------------------------------------- scalar (reference)
    def _run_range_reference(
        self, lo: int, hi: int, keep_detail: bool
    ) -> _ShardOutcome:
        """The original per-trial dict-based engine (``REPRO_MC_SCALAR=1``)."""
        trials: List[TrialResult] = []
        notes_per_trial: List[List[str]] = []
        for index in range(lo, hi):
            trial, notes = self._run_trial(index)
            trials.append(trial)
            notes_per_trial.append(notes)
        return self._collect(trials, notes_per_trial, keep_detail)

    # ------------------------------------------------------- draw matrices
    def _jitter_draw_count(self, plan: ReplayPlan) -> int:
        """Uniform draws the jitter stream consumes per trial."""
        jittered = int(plan.jitter_positions.size)
        if self.config.jitter == "none" or jittered == 0:
            return 0
        if self.config.jitter == "uniform":
            return jittered
        return 2 * ((jittered + 1) // 2)  # gauss consumes uniforms in pairs

    @staticmethod
    def _gauss_values(
        uniforms: np.ndarray, count: int, sigma: float
    ) -> np.ndarray:
        """``Random.gauss(0.0, sigma)`` sequences from raw uniform draws.

        Replicates CPython's polar pair generation (including the cached
        second value) with ``math`` scalar calls — numpy's vectorized
        trig may differ by an ulp, which would break bit-equality with
        the scalar engine after rounding.
        """
        batch = uniforms.shape[0]
        out = np.empty((batch, count), dtype=np.float64)
        pairs = (count + 1) // 2
        cos, sin, log, sqrt = math.cos, math.sin, math.log, math.sqrt
        two_pi = 2.0 * math.pi
        for t in range(batch):
            row = uniforms[t]
            vals = out[t]
            for p in range(pairs):
                x2pi = row[2 * p] * two_pi
                g2rad = sqrt(-2.0 * log(1.0 - row[2 * p + 1]))
                vals[2 * p] = cos(x2pi) * g2rad * sigma
                odd = 2 * p + 1
                if odd < count:
                    vals[odd] = sin(x2pi) * g2rad * sigma
        return out

    def _duration_matrix(
        self,
        plan: ReplayPlan,
        lo: int,
        hi: int,
        uniforms: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Jittered ``(trials x entries)`` durations for ``[lo, hi)``.

        Bit-identical to the scalar ``_jittered``: per-trial SHA-derived
        streams, inflation factors applied in float64, and half-to-even
        rounding (``np.rint`` == ``round``), floored at the nominal
        duration.  Returns a read-only broadcast when jitter is off.
        ``uniforms`` (first jitter-stream draws per trial, possibly wider
        than needed) skips the draw generation — the fault kernel batches
        both streams through one seeding pass.
        """
        cfg = self.config
        block = hi - lo
        draws_per_trial = self._jitter_draw_count(plan)
        if draws_per_trial == 0:
            return np.broadcast_to(plan.durations_np, (block, plan.num_entries))
        if uniforms is None:
            uniforms = uniform_block(
                derive_seed_block(cfg.seed, "jitter-", lo, hi), draws_per_trial
            )
        jittered = int(plan.jitter_positions.size)
        if cfg.jitter == "uniform":
            factors = 1.0 + cfg.jitter_spread * uniforms
        else:
            factors = 1.0 + np.abs(
                self._gauss_values(uniforms, jittered, cfg.jitter_spread)
            )
        base = plan.durations_np[plan.jitter_positions]
        inflated = np.rint(base.astype(np.float64) * factors[:, :jittered])
        inflated = inflated.astype(np.int64)
        np.maximum(inflated, base, out=inflated)
        durations = np.broadcast_to(
            plan.durations_np, (block, plan.num_entries)
        ).copy()
        durations[:, plan.jitter_positions] = inflated
        return durations

    def _fault_draw_width(self, plan: ReplayPlan) -> int:
        """Upper bound on fault-stream draws any single trial can consume."""
        cfg = self.config
        width = 0
        if cfg.channel_fault_rate > 0:
            width += plan.total_pred_edges
        if cfg.fault_rate > 0:
            width += plan.num_entries * (2 + cfg.max_retries)
        return width

    # -------------------------------------------------- masked (fault path)
    def _run_range_masked(
        self, lo: int, hi: int, keep_detail: bool
    ) -> _ShardOutcome:
        """Batched fault-path replay: per-trial masks over the trial axis.

        Faults migrate operations, so bindings, washes and precedence
        minima are dynamic — but each entry's update is still the same
        arithmetic for every trial, just gated by that trial's draws.
        The kernel walks entries once per block, keeping per-trial state
        matrices (finish, device availability, bindings, last occupant)
        and a per-trial cursor into a pre-generated fault-draw matrix, so
        draw *consumption* — and therefore every value — matches the
        scalar engine trial for trial.
        """
        cfg = self.config
        plan = self.plan()
        num_entries = plan.num_entries
        transport = plan.transport_time
        fault_rate = cfg.fault_rate
        channel_rate = cfg.channel_fault_rate
        wash_time = cfg.wash_time
        width = self._fault_draw_width(plan)

        detail: List[TrialResult] = []
        makespan_parts: List[np.ndarray] = []
        totals = [0, 0, 0, 0, 0, 0]  # faults, recovered, retries, mig, rer, wash
        notes: List[str] = []
        notes_total = 0

        jitter_draws = self._jitter_draw_count(plan)

        for block_lo in range(lo, hi, VECTOR_BLOCK_TRIALS):
            block_hi = min(block_lo + VECTOR_BLOCK_TRIALS, hi)
            block = block_hi - block_lo
            rows = np.arange(block)
            # One seeding pass covers both stream families: stream setup
            # dominates at small draw counts, and doubling the batch
            # amortizes it (rows are independent, so fusing cannot change
            # any draw).
            jitter_uniforms: Optional[np.ndarray] = None
            if width and jitter_draws:
                seeds = np.concatenate(
                    [
                        derive_seed_block(cfg.seed, "jitter-", block_lo, block_hi),
                        derive_seed_block(cfg.seed, "fault-", block_lo, block_hi),
                    ]
                )
                fused = uniform_block(seeds, max(jitter_draws, width))
                jitter_uniforms = fused[:block]
                stream = fused[block:, :width]
            elif width:
                stream = uniform_block(
                    derive_seed_block(cfg.seed, "fault-", block_lo, block_hi),
                    width,
                )
            durations = self._duration_matrix(
                plan, block_lo, block_hi, uniforms=jitter_uniforms
            )
            if width:
                fault_draws = np.zeros((block, width + 1), dtype=np.float64)
                fault_draws[:, :width] = stream
                cursor = np.zeros(block, dtype=np.intp)

            finish = np.empty((block, num_entries), dtype=np.int64)
            avail = np.zeros((block, plan.num_devices), dtype=np.int64)
            bound = np.empty((block, num_entries), dtype=np.int64)
            if num_entries:
                bound[:] = np.asarray(plan.device, dtype=np.int64)
            last = np.full((block, plan.num_devices), num_entries, np.int64)
            cnt_faults = np.zeros(block, dtype=np.int64)
            cnt_recovered = np.zeros(block, dtype=np.int64)
            cnt_retries = np.zeros(block, dtype=np.int64)
            cnt_migrations = np.zeros(block, dtype=np.int64)
            cnt_reroutes = np.zeros(block, dtype=np.int64)
            cnt_washes = np.zeros(block, dtype=np.int64)
            block_notes: List[Tuple[int, int, int, int]] = []

            for e in range(num_entries):
                dev = plan.device[e]
                dur_e = durations[:, e]
                ready = np.full(block, plan.starts[e], dtype=np.int64)
                for p in plan.preds[e]:
                    same = bound[:, p] == dev
                    minimum = np.where(same, 0, transport)
                    if channel_rate > 0:
                        cross = ~same
                        vals = fault_draws[rows, cursor]
                        cursor += cross
                        hit = cross & (vals < channel_rate)
                        minimum = minimum + np.where(hit, transport, 0)
                        cnt_reroutes += hit
                    np.maximum(ready, finish[:, p] + minimum, out=ready)

                if wash_time > 0:
                    need = ~plan.wash_skip[e][last[:, dev]]
                    entry_avail = avail[:, dev] + np.where(need, wash_time, 0)
                    cnt_washes += need
                    over = np.nonzero(need & (entry_avail > plan.starts[e]))[0]
                    notes_total += int(over.size)
                    for t in over[:MAX_DIAGNOSTICS]:
                        block_notes.append(
                            (block_lo + int(t), e, 0, int(entry_avail[t]))
                        )
                else:
                    entry_avail = avail[:, dev]
                end = np.maximum(ready, entry_avail) + dur_e

                cur_dev: Optional[np.ndarray] = None
                if fault_rate > 0:
                    vals = fault_draws[rows, cursor]
                    cursor += 1
                    faulted = vals < fault_rate
                    cnt_faults += faulted
                    ok = np.zeros(block, dtype=bool)
                    active = faulted.copy()
                    for _ in range(cfg.max_retries):
                        if not active.any():
                            break
                        end = end + np.where(active, dur_e, 0)
                        cnt_retries += active
                        vals = fault_draws[rows, cursor]
                        cursor += active
                        succeeded = active & (vals >= fault_rate)
                        ok |= succeeded
                        active = active & ~succeeded
                    cnt_recovered += ok
                    unresolved = faulted & ~ok
                    if unresolved.any():
                        candidates = plan.spares_np[e]
                        if candidates.size:
                            spare_avail_all = avail[:, candidates]
                            choice = np.argmin(spare_avail_all, axis=1)
                            spare_col = candidates[choice]
                            spare_avail = spare_avail_all[rows, choice]
                            cnt_migrations += unresolved
                            migrated_end = (
                                np.maximum(end + transport, spare_avail) + dur_e
                            )
                            vals = fault_draws[rows, cursor]
                            cursor += unresolved
                            bad = unresolved & (vals < fault_rate)
                            cnt_recovered += unresolved & ~bad
                            migrated_end = migrated_end + np.where(bad, dur_e, 0)
                            bad_rows = np.nonzero(bad)[0]
                            notes_total += int(bad_rows.size)
                            for t in bad_rows[:MAX_DIAGNOSTICS]:
                                block_notes.append(
                                    (block_lo + int(t), e, 1, int(spare_col[t]))
                                )
                            end = np.where(unresolved, migrated_end, end)
                            # Repair window on the faulted (scheduled) device.
                            avail[:, dev] = np.where(
                                unresolved,
                                np.maximum(avail[:, dev], end),
                                avail[:, dev],
                            )
                            cur_dev = np.where(unresolved, spare_col, dev)
                        else:
                            end = end + np.where(unresolved, dur_e, 0)
                            bad_rows = np.nonzero(unresolved)[0]
                            notes_total += int(bad_rows.size)
                            for t in bad_rows[:MAX_DIAGNOSTICS]:
                                block_notes.append(
                                    (block_lo + int(t), e, 1, -1)
                                )

                finish[:, e] = end
                if cur_dev is None:
                    bound[:, e] = dev
                    np.maximum(avail[:, dev], end, out=avail[:, dev])
                    last[:, dev] = e
                else:
                    bound[:, e] = cur_dev
                    moved = np.nonzero(cur_dev != dev)[0]
                    stayed = np.nonzero(cur_dev == dev)[0]
                    avail[stayed, dev] = np.maximum(
                        avail[stayed, dev], end[stayed]
                    )
                    last[stayed, dev] = e
                    moved_cols = cur_dev[moved]
                    avail[moved, moved_cols] = np.maximum(
                        avail[moved, moved_cols], end[moved]
                    )
                    last[moved, moved_cols] = e

            if num_entries:
                makespans = finish.max(axis=1)
                if plan.static_floor:
                    np.maximum(makespans, plan.static_floor, out=makespans)
            else:
                makespans = np.full(block, plan.static_floor, dtype=np.int64)
            makespan_parts.append(makespans)
            for i, counts in enumerate(
                (cnt_faults, cnt_recovered, cnt_retries,
                 cnt_migrations, cnt_reroutes, cnt_washes)
            ):
                totals[i] += int(counts.sum())

            block_notes.sort()
            for trial_index, e, kind, payload in block_notes:
                if len(notes) >= MAX_DIAGNOSTICS:
                    break
                device_name = plan.device_ids[plan.device[e]]
                op_name = plan.entry_op_ids[e]
                if kind == 0:
                    notes.append(
                        f"trial {trial_index}: wash on {device_name!r} pushes "
                        f"{op_name!r} past its scheduled start "
                        f"({plan.starts[e]} -> {payload})"
                    )
                elif payload >= 0:
                    notes.append(
                        f"trial {trial_index}: fault on {device_name!r} for "
                        f"{op_name!r} unrecovered (spare "
                        f"{plan.device_ids[payload]!r} faulted too)"
                    )
                else:
                    notes.append(
                        f"trial {trial_index}: fault on {device_name!r} for "
                        f"{op_name!r} unrecovered (no compatible spare)"
                    )

            if keep_detail:
                detail.extend(
                    TrialResult(
                        trial=block_lo + t,
                        makespan=int(makespans[t]),
                        faults_injected=int(cnt_faults[t]),
                        faults_recovered=int(cnt_recovered[t]),
                        retries=int(cnt_retries[t]),
                        migrations=int(cnt_migrations[t]),
                        reroutes=int(cnt_reroutes[t]),
                        washes=int(cnt_washes[t]),
                    )
                    for t in range(block)
                )

        all_makespans = (
            np.concatenate(makespan_parts)
            if makespan_parts
            else np.empty(0, dtype=np.int64)
        )
        aggregate = TrialAggregate(
            count=hi - lo,
            sorted_makespans=np.sort(all_makespans).tolist(),
            makespan_sum=int(all_makespans.sum()),
            faults_injected=totals[0],
            faults_recovered=totals[1],
            retries=totals[2],
            migrations=totals[3],
            reroutes=totals[4],
            washes=totals[5],
        )
        return _ShardOutcome(
            aggregate=aggregate,
            detail=detail,
            notes=notes,
            notes_total=notes_total,
        )

    # ------------------------------------------- vectorized (fault-free)
    def _run_range_vectorized(
        self, lo: int, hi: int, keep_detail: bool
    ) -> _ShardOutcome:
        """Batched fault-free replay: numpy passes over trial blocks.

        Without faults the device bindings never move, so every trial
        shares the plan's static precedence minima and wash predicates and
        only the (per-trial) jittered durations differ — which makes the
        whole replay a sequence of elementwise max/add vector operations
        across the trial axis, one short pass per entry.
        """
        cfg = self.config
        plan = self.plan()
        num_entries = plan.num_entries
        wash_time = cfg.wash_time
        indptr = plan.pred_indptr
        pred_pos = plan.pred_pos
        pred_min = plan.pred_min
        washes_per_trial = plan.static_wash_count if wash_time > 0 else 0

        makespan_parts: List[np.ndarray] = []
        notes: List[str] = []
        notes_total = 0

        for block_lo in range(lo, hi, VECTOR_BLOCK_TRIALS):
            block_hi = min(block_lo + VECTOR_BLOCK_TRIALS, hi)
            block = block_hi - block_lo
            dur = self._duration_matrix(plan, block_lo, block_hi)

            finish = np.empty((block, num_entries), dtype=np.int64)
            avail = np.zeros((block, plan.num_devices), dtype=np.int64)
            ready = np.empty(block, dtype=np.int64)
            block_notes: List[Tuple[int, int, int]] = []
            for e in range(num_entries):
                ready.fill(plan.starts[e])
                for k in range(indptr[e], indptr[e + 1]):
                    np.maximum(
                        ready, finish[:, pred_pos[k]] + pred_min[k], out=ready
                    )
                d = plan.device[e]
                entry_avail = avail[:, d]
                if wash_time > 0 and plan.wash_static[e]:
                    entry_avail = entry_avail + wash_time
                    over = np.nonzero(entry_avail > plan.starts[e])[0]
                    if over.size:
                        notes_total += int(over.size)
                        for t in over[:MAX_DIAGNOSTICS]:
                            block_notes.append(
                                (block_lo + int(t), e, int(entry_avail[t]))
                            )
                end = np.maximum(ready, entry_avail) + dur[:, e]
                finish[:, e] = end
                # end >= entry_avail >= the previous availability, so a
                # straight assignment preserves the max semantics.
                avail[:, d] = end

            if num_entries:
                makespans = finish.max(axis=1)
                if plan.static_floor:
                    np.maximum(makespans, plan.static_floor, out=makespans)
            else:
                makespans = np.full(block, plan.static_floor, dtype=np.int64)
            makespan_parts.append(makespans)

            # Re-emit this block's notes in the scalar order (by trial,
            # then entry sequence), formatting only up to the global cap.
            block_notes.sort()
            for trial_index, e, pushed in block_notes:
                if len(notes) >= MAX_DIAGNOSTICS:
                    break
                notes.append(
                    f"trial {trial_index}: wash on "
                    f"{plan.device_ids[plan.device[e]]!r} pushes "
                    f"{plan.entry_op_ids[e]!r} past its scheduled start "
                    f"({plan.starts[e]} -> {pushed})"
                )

        all_makespans = (
            np.concatenate(makespan_parts)
            if makespan_parts
            else np.empty(0, dtype=np.int64)
        )
        sorted_makespans = np.sort(all_makespans).tolist()
        count = hi - lo
        aggregate = TrialAggregate(
            count=count,
            sorted_makespans=sorted_makespans,
            makespan_sum=int(all_makespans.sum()),
            washes=washes_per_trial * count,
        )
        detail: List[TrialResult] = []
        if keep_detail:
            detail = [
                TrialResult(
                    trial=lo + t,
                    makespan=int(makespan),
                    faults_injected=0,
                    faults_recovered=0,
                    retries=0,
                    migrations=0,
                    reroutes=0,
                    washes=washes_per_trial,
                )
                for t, makespan in enumerate(all_makespans)
            ]
        return _ShardOutcome(
            aggregate=aggregate,
            detail=detail,
            notes=notes,
            notes_total=notes_total,
        )

    # ---------------------------------------------------------------- trial
    def _jittered(self, rng: random.Random, duration: int) -> int:
        """Inflate ``duration`` by one draw (identity when jitter is off)."""
        cfg = self.config
        if cfg.jitter == "none" or duration == 0:
            return duration
        if cfg.jitter == "uniform":
            factor = 1.0 + cfg.jitter_spread * rng.random()
        else:  # "normal" — folded so inflation-only
            factor = 1.0 + abs(rng.gauss(0.0, cfg.jitter_spread))
        return max(duration, int(round(duration * factor)))

    def _run_trial(self, index: int) -> Tuple[TrialResult, List[str]]:
        """One stochastic replay; returns the trial and its diagnostics.

        This is the scalar reference implementation the fast paths are
        differentially tested against — keep it boring and readable.
        """
        cfg = self.config
        jitter_rng = random.Random(derive_seed(cfg.seed, f"jitter-{index}"))
        fault_rng = random.Random(derive_seed(cfg.seed, f"fault-{index}"))
        transport = self.schedule.transport_time

        finish: Dict[str, int] = {}
        bound: Dict[str, str] = {}
        device_avail: Dict[str, int] = {}
        device_last_op: Dict[str, Optional[str]] = {}
        notes: List[str] = []
        faults = recovered = retries = migrations = reroutes = washes = 0

        for entry in self.schedule.entries():
            if entry.device_id is None:
                finish[entry.op_id] = entry.end
                continue
            op = self.graph.operation(entry.op_id)
            duration = self._jittered(jitter_rng, entry.duration)

            # Precedence lower bound over device-bound parents, with
            # channel-fault reroutes adding one transport per faulted edge.
            ready = entry.start
            for parent_id in sorted(self.graph.predecessors(entry.op_id)):
                if parent_id not in finish or parent_id not in bound:
                    continue
                same = bound[parent_id] == entry.device_id
                minimum = 0 if same else transport
                if (
                    not same
                    and cfg.channel_fault_rate > 0
                    and fault_rng.random() < cfg.channel_fault_rate
                ):
                    minimum += transport
                    reroutes += 1
                ready = max(ready, finish[parent_id] + minimum)

            # Device availability, plus a wash when the previous occupant
            # is not a direct predecessor (contamination model).
            device_id = entry.device_id
            avail = device_avail.get(device_id, 0)
            prev_op = device_last_op.get(device_id)
            if (
                cfg.wash_time > 0
                and prev_op is not None
                and prev_op not in self.graph.predecessors(entry.op_id)
            ):
                avail += cfg.wash_time
                washes += 1
                if avail > entry.start:
                    notes.append(
                        f"trial {index}: wash on {device_id!r} pushes "
                        f"{entry.op_id!r} past its scheduled start "
                        f"({entry.start} -> {avail})"
                    )
            start = max(ready, avail)

            # Fault injection: retry on the faulted device, then migrate.
            end = start + duration
            if cfg.fault_rate > 0 and fault_rng.random() < cfg.fault_rate:
                faults += 1
                ok = False
                for _ in range(cfg.max_retries):
                    end += duration  # the failed attempt burned a duration
                    retries += 1
                    if fault_rng.random() >= cfg.fault_rate:
                        ok = True
                        break
                if ok:
                    recovered += 1
                else:
                    spare = self._pick_spare(op.kind, device_id, device_avail)
                    if spare is not None:
                        migrations += 1
                        end = max(end + transport, device_avail.get(spare, 0))
                        end += duration
                        if fault_rng.random() >= cfg.fault_rate:
                            recovered += 1
                        else:
                            end += duration  # spare faulted too: best effort
                            notes.append(
                                f"trial {index}: fault on {device_id!r} for "
                                f"{entry.op_id!r} unrecovered (spare "
                                f"{spare!r} faulted too)"
                            )
                        # Repair window: the faulted device stays blocked
                        # until the migrated operation completes, keeping
                        # release times monotone versus the fault-free run.
                        device_avail[device_id] = max(
                            device_avail.get(device_id, 0), end
                        )
                        device_id = spare
                    else:
                        end += duration  # best-effort completion in place
                        notes.append(
                            f"trial {index}: fault on {device_id!r} for "
                            f"{entry.op_id!r} unrecovered (no compatible spare)"
                        )

            finish[entry.op_id] = end
            bound[entry.op_id] = device_id
            device_avail[device_id] = max(device_avail.get(device_id, 0), end)
            device_last_op[device_id] = entry.op_id

        makespan = max(finish.values(), default=0)
        trial = TrialResult(
            trial=index,
            makespan=makespan,
            faults_injected=faults,
            faults_recovered=recovered,
            retries=retries,
            migrations=migrations,
            reroutes=reroutes,
            washes=washes,
        )
        return trial, notes

    def _pick_spare(
        self,
        kind: Any,
        faulted_device: str,
        device_avail: Dict[str, int],
    ) -> Optional[str]:
        """Least-loaded compatible device other than the faulted one."""
        candidates = [
            device.device_id
            for device in self.library.devices_for(kind)
            if device.device_id != faulted_device
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda d: (device_avail.get(d, 0), d))
