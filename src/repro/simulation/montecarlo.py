"""Seeded Monte-Carlo verification of a synthesized schedule.

The deterministic flow emits a single makespan, but a fabricated biochip
sees stochastic operation durations and valve/device/channel failures.
This module replays a :class:`~repro.scheduling.schedule.Schedule` many
times under three perturbation families and reports a *distribution*
instead of one number:

* **Duration jitter** — each operation's duration is inflated by a draw
  from a configurable distribution (``uniform`` or ``normal`` spread).
  Jitter is inflation-only by construction, so a jittered trial can never
  finish before the deterministic schedule; with jitter disabled the
  replay reproduces the deterministic makespan *exactly*, for any seed.
* **Device faults** — with probability ``fault_rate`` the device executing
  an operation faults.  Recovery first retries on the same device (each
  failed attempt burns one full duration), then migrates the operation to
  a compatible spare (plus one transport time); the faulted device stays
  blocked until the migrated operation completes — a repair window that
  keeps every trial's resource-release times pointwise at or above the
  fault-free trial's, so an injected-failure trial can never report a
  makespan below the fault-free one.  A fault with no working spare is
  *unrecovered*: the operation still completes (best effort, one extra
  duration), but the trial's recovery rate drops below 1.
* **Channel faults** — with probability ``channel_fault_rate`` the routing
  channel carrying a fluid transport faults and the droplet is rerouted,
  adding one transport time to the affected precedence edge.  Reroutes
  always succeed and are counted separately from device-fault recovery.
* **Contamination washes** — with ``wash_time > 0``, a wash is inserted
  between consecutive operations on one device unless the later operation
  directly consumes the earlier one's product (a direct graph successor
  needs no wash: the fluid itself moves on).

Determinism: every trial derives two independent :class:`random.Random`
streams — one for jitter, one for faults — via
:func:`repro.keys.derive_seed`, which is SHA-256 based and therefore
identical in every process regardless of ``PYTHONHASHSEED``.  The same
seed yields the same trial sequence bit-for-bit, and enabling faults
leaves the jitter draws untouched (separate streams), which is what makes
the fault-vs-fault-free monotonicity property testable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.devices.device import DeviceLibrary
from repro.graph.sequencing_graph import SequencingGraph
from repro.keys import derive_seed
from repro.scheduling.schedule import Schedule

#: Hard cap on the violation diagnostics kept per report, so a
#: pathological configuration cannot balloon artifact payloads.
MAX_DIAGNOSTICS = 32


@dataclass(frozen=True)
class MonteCarloConfig:
    """Knobs of one Monte-Carlo verification run.

    Mirrors the ``verify_*`` slice of
    :class:`~repro.synthesis.config.FlowConfig` (see
    :meth:`from_flow_config`) so the stage's cache key and the engine's
    behavior are driven by the same values.
    """

    trials: int = 32
    seed: int = 0
    jitter: str = "none"
    jitter_spread: float = 0.1
    fault_rate: float = 0.0
    channel_fault_rate: float = 0.0
    max_retries: int = 1
    wash_time: int = 0

    @classmethod
    def from_flow_config(cls, config: Any) -> "MonteCarloConfig":
        """Build the engine config from a ``FlowConfig``'s verify fields."""
        return cls(
            trials=config.verify_trials,
            seed=config.verify_seed,
            jitter=config.verify_jitter,
            jitter_spread=config.verify_jitter_spread,
            fault_rate=config.verify_fault_rate,
            channel_fault_rate=config.verify_channel_fault_rate,
            max_retries=config.verify_max_retries,
            wash_time=config.verify_wash_time,
        )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one stochastic replay."""

    trial: int
    makespan: int
    faults_injected: int
    faults_recovered: int
    retries: int
    migrations: int
    reroutes: int
    washes: int

    @property
    def recovered(self) -> bool:
        """True when every injected device fault was recovered."""
        return self.faults_recovered == self.faults_injected


@dataclass
class VerificationReport:
    """Aggregate of all trials: the distribution the stage reports.

    Percentiles use the nearest-rank method (``sorted[ceil(q/100*n)-1]``),
    which guarantees ``p50 <= p95 <= p99`` and that every reported value
    is an actually-observed makespan.
    """

    trials: List[TrialResult]
    deterministic_makespan: int
    violations: List[str] = field(default_factory=list)

    def _percentile(self, q: int) -> int:
        spans = sorted(t.makespan for t in self.trials)
        rank = max(1, -(-(q * len(spans)) // 100))
        return spans[min(rank, len(spans)) - 1]

    @property
    def makespan_p50(self) -> int:
        """Median trial makespan (nearest rank)."""
        return self._percentile(50)

    @property
    def makespan_p95(self) -> int:
        """95th-percentile trial makespan (nearest rank)."""
        return self._percentile(95)

    @property
    def makespan_p99(self) -> int:
        """99th-percentile trial makespan (nearest rank)."""
        return self._percentile(99)

    @property
    def makespan_mean(self) -> float:
        """Mean trial makespan."""
        return sum(t.makespan for t in self.trials) / len(self.trials)

    @property
    def makespan_max(self) -> int:
        """Worst observed trial makespan."""
        return max(t.makespan for t in self.trials)

    @property
    def faults_injected(self) -> int:
        """Device faults injected across all trials."""
        return sum(t.faults_injected for t in self.trials)

    @property
    def faults_recovered(self) -> int:
        """Device faults recovered (retry or migration) across all trials."""
        return sum(t.faults_recovered for t in self.trials)

    @property
    def recovery_rate(self) -> float:
        """Recovered / injected device faults (1.0 when none injected)."""
        injected = self.faults_injected
        return 1.0 if injected == 0 else self.faults_recovered / injected

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary for batch/service payloads."""
        return {
            "trials": len(self.trials),
            "deterministic_makespan": self.deterministic_makespan,
            "makespan_p50": self.makespan_p50,
            "makespan_p95": self.makespan_p95,
            "makespan_p99": self.makespan_p99,
            "makespan_mean": round(self.makespan_mean, 3),
            "makespan_max": self.makespan_max,
            "faults_injected": self.faults_injected,
            "faults_recovered": self.faults_recovered,
            "recovery_rate": round(self.recovery_rate, 6),
            "reroutes": sum(t.reroutes for t in self.trials),
            "retries": sum(t.retries for t in self.trials),
            "migrations": sum(t.migrations for t in self.trials),
            "washes": sum(t.washes for t in self.trials),
            "violations": list(self.violations),
        }


class MonteCarloEngine:
    """Replays one schedule ``config.trials`` times under perturbations.

    The replay is a right-shift retiming over the deterministic processing
    order (``Schedule.entries()``: sorted by start time, then operation
    id): each operation starts at the latest of its scheduled start, its
    parents' perturbed finish times plus the precedence minimum (zero on
    the same device, one transport time otherwise, plus any reroute
    delay), and its device's availability (plus any wash).  Because every
    lower bound includes the scheduled start and every perturbation only
    adds time, the zero-perturbation replay reproduces the deterministic
    schedule exactly and perturbed replays are pointwise monotone.
    """

    def __init__(
        self,
        schedule: Schedule,
        library: DeviceLibrary,
        config: Optional[MonteCarloConfig] = None,
    ) -> None:
        self.schedule = schedule
        self.library = library
        self.config = config or MonteCarloConfig()
        self.graph: SequencingGraph = schedule.graph

    # ------------------------------------------------------------------ API
    def run(self) -> VerificationReport:
        """Run all trials and aggregate them into a report."""
        trials = [self._run_trial(i) for i in range(self.config.trials)]
        violations: List[str] = []
        for trial, notes in trials:
            for note in notes:
                if len(violations) >= MAX_DIAGNOSTICS:
                    break
                violations.append(note)
        return VerificationReport(
            trials=[trial for trial, _ in trials],
            deterministic_makespan=self.schedule.makespan,
            violations=violations,
        )

    # ---------------------------------------------------------------- trial
    def _jittered(self, rng: random.Random, duration: int) -> int:
        """Inflate ``duration`` by one draw (identity when jitter is off)."""
        cfg = self.config
        if cfg.jitter == "none" or duration == 0:
            return duration
        if cfg.jitter == "uniform":
            factor = 1.0 + cfg.jitter_spread * rng.random()
        else:  # "normal" — folded so inflation-only
            factor = 1.0 + abs(rng.gauss(0.0, cfg.jitter_spread))
        return max(duration, int(round(duration * factor)))

    def _run_trial(self, index: int) -> Tuple[TrialResult, List[str]]:
        """One stochastic replay; returns the trial and its diagnostics."""
        cfg = self.config
        jitter_rng = random.Random(derive_seed(cfg.seed, f"jitter-{index}"))
        fault_rng = random.Random(derive_seed(cfg.seed, f"fault-{index}"))
        transport = self.schedule.transport_time

        finish: Dict[str, int] = {}
        bound: Dict[str, str] = {}
        device_avail: Dict[str, int] = {}
        device_last_op: Dict[str, Optional[str]] = {}
        notes: List[str] = []
        faults = recovered = retries = migrations = reroutes = washes = 0

        for entry in self.schedule.entries():
            if entry.device_id is None:
                finish[entry.op_id] = entry.end
                continue
            op = self.graph.operation(entry.op_id)
            duration = self._jittered(jitter_rng, entry.duration)

            # Precedence lower bound over device-bound parents, with
            # channel-fault reroutes adding one transport per faulted edge.
            ready = entry.start
            for parent_id in sorted(self.graph.predecessors(entry.op_id)):
                if parent_id not in finish or parent_id not in bound:
                    continue
                same = bound[parent_id] == entry.device_id
                minimum = 0 if same else transport
                if (
                    not same
                    and cfg.channel_fault_rate > 0
                    and fault_rng.random() < cfg.channel_fault_rate
                ):
                    minimum += transport
                    reroutes += 1
                ready = max(ready, finish[parent_id] + minimum)

            # Device availability, plus a wash when the previous occupant
            # is not a direct predecessor (contamination model).
            device_id = entry.device_id
            avail = device_avail.get(device_id, 0)
            prev_op = device_last_op.get(device_id)
            if (
                cfg.wash_time > 0
                and prev_op is not None
                and prev_op not in self.graph.predecessors(entry.op_id)
            ):
                avail += cfg.wash_time
                washes += 1
                if avail > entry.start:
                    notes.append(
                        f"trial {index}: wash on {device_id!r} pushes "
                        f"{entry.op_id!r} past its scheduled start "
                        f"({entry.start} -> {avail})"
                    )
            start = max(ready, avail)

            # Fault injection: retry on the faulted device, then migrate.
            end = start + duration
            if cfg.fault_rate > 0 and fault_rng.random() < cfg.fault_rate:
                faults += 1
                ok = False
                for _ in range(cfg.max_retries):
                    end += duration  # the failed attempt burned a duration
                    retries += 1
                    if fault_rng.random() >= cfg.fault_rate:
                        ok = True
                        break
                if ok:
                    recovered += 1
                else:
                    spare = self._pick_spare(op.kind, device_id, device_avail)
                    if spare is not None:
                        migrations += 1
                        end = max(end + transport, device_avail.get(spare, 0))
                        end += duration
                        if fault_rng.random() >= cfg.fault_rate:
                            recovered += 1
                        else:
                            end += duration  # spare faulted too: best effort
                            notes.append(
                                f"trial {index}: fault on {device_id!r} for "
                                f"{entry.op_id!r} unrecovered (spare "
                                f"{spare!r} faulted too)"
                            )
                        # Repair window: the faulted device stays blocked
                        # until the migrated operation completes, keeping
                        # release times monotone versus the fault-free run.
                        device_avail[device_id] = max(
                            device_avail.get(device_id, 0), end
                        )
                        device_id = spare
                    else:
                        end += duration  # best-effort completion in place
                        notes.append(
                            f"trial {index}: fault on {device_id!r} for "
                            f"{entry.op_id!r} unrecovered (no compatible spare)"
                        )

            finish[entry.op_id] = end
            bound[entry.op_id] = device_id
            device_avail[device_id] = max(device_avail.get(device_id, 0), end)
            device_last_op[device_id] = entry.op_id

        makespan = max(finish.values(), default=0)
        trial = TrialResult(
            trial=index,
            makespan=makespan,
            faults_injected=faults,
            faults_recovered=recovered,
            retries=retries,
            migrations=migrations,
            reroutes=reroutes,
            washes=washes,
        )
        return trial, notes

    def _pick_spare(
        self,
        kind: Any,
        faulted_device: str,
        device_avail: Dict[str, int],
    ) -> Optional[str]:
        """Least-loaded compatible device other than the faulted one."""
        candidates = [
            device.device_id
            for device in self.library.devices_for(kind)
            if device.device_id != faulted_device
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda d: (device_avail.get(d, 0), d))
