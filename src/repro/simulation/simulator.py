"""Discrete replay of a synthesized chip."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.archsyn.architecture import ChipArchitecture
from repro.archsyn.grid import EdgeId
from repro.devices.channel import ChannelSegment
from repro.scheduling.schedule import Schedule
from repro.simulation.events import EventKind, SimulationEvent
from repro.simulation.snapshot import SegmentState, Snapshot


@dataclass
class SimulationResult:
    """Replay outcome: the event timeline plus per-resource statistics."""

    events: List[SimulationEvent]
    segments: Dict[EdgeId, ChannelSegment]
    makespan: int
    total_transports: int
    total_storage_intervals: int
    problems: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """True when the replay hit no resource conflicts (``problems`` empty)."""
        return not self.problems

    def events_at(self, time: int) -> List[SimulationEvent]:
        """All events happening at exactly ``time``."""
        return [e for e in self.events if e.time == time]

    def segment_utilization(self) -> Dict[EdgeId, float]:
        """Busy-time fraction of each channel segment over the makespan."""
        if self.makespan <= 0:
            return {eid: 0.0 for eid in self.segments}
        return {
            eid: min(1.0, segment.busy_time() / self.makespan)
            for eid, segment in self.segments.items()
        }


class ChipSimulator:
    """Replays the schedule and routed transportation tasks of a chip."""

    def __init__(self, schedule: Schedule, architecture: ChipArchitecture) -> None:
        self.schedule = schedule
        self.architecture = architecture

    # ------------------------------------------------------------------ API
    def run(self) -> SimulationResult:
        """Replay everything; returns the event timeline and statistics.

        Channel segments enforce exclusive reservations themselves, so a
        double booking (which a valid synthesis never produces) is reported
        in ``problems`` rather than silently accepted.
        """
        events: List[SimulationEvent] = []
        problems: List[str] = []

        for entry in self.schedule.entries():
            if entry.device_id is None:
                continue
            events.append(SimulationEvent(entry.start, EventKind.OPERATION_START, entry.op_id, entry.device_id))
            events.append(SimulationEvent(entry.end, EventKind.OPERATION_END, entry.op_id, entry.device_id))

        segments: Dict[EdgeId, ChannelSegment] = {}
        for eid in self.architecture.used_edges():
            a, b = self.architecture.grid.edge_endpoints(eid)
            segments[eid] = ChannelSegment(segment_id=f"{a}--{b}", endpoints=(a, b))

        transports = 0
        storage_intervals = 0
        for routed in self.architecture.routed_tasks:
            task = routed.task
            for sub in routed.subpaths:
                start, end = sub.start, max(sub.end, sub.start + 1)
                label = "--".join(sorted(sub.edges[0])) if sub.edges else task.source_device
                if sub.purpose == "transport":
                    transports += 1
                    events.append(SimulationEvent(start, EventKind.TRANSPORT_START, task.task_id, label))
                    events.append(SimulationEvent(end, EventKind.TRANSPORT_END, task.task_id, label))
                else:
                    storage_intervals += 1
                    events.append(SimulationEvent(start, EventKind.STORAGE_START, task.task_id, label))
                    events.append(SimulationEvent(end, EventKind.STORAGE_END, task.task_id, label))
                for eid in sub.edges:
                    try:
                        segments[eid].reserve(start, end, sub.purpose, sample=task.sample)
                    except ValueError as exc:
                        problems.append(str(exc))

        events.sort()
        makespan = max(self.schedule.makespan, max((e.time for e in events), default=0))
        return SimulationResult(
            events=events,
            segments=segments,
            makespan=makespan,
            total_transports=transports,
            total_storage_intervals=storage_intervals,
            problems=problems,
        )

    def snapshot(self, time: int) -> Snapshot:
        """Chip state at one instant (the paper's Fig. 11 view)."""
        active_devices: Dict[str, str] = {}
        for entry in self.schedule.entries():
            if entry.device_id is not None and entry.start <= time < entry.end:
                active_devices[entry.device_id] = entry.op_id

        segment_states: Dict[EdgeId, SegmentState] = {}
        for routed in self.architecture.routed_tasks:
            for sub in routed.subpaths:
                if not (sub.start <= time < max(sub.end, sub.start + 1)):
                    continue
                for eid in sub.edges:
                    segment_states[eid] = SegmentState(
                        edge=eid,
                        purpose=sub.purpose,
                        task_id=routed.task.task_id,
                        sample_id=routed.task.sample.sample_id,
                    )
        return Snapshot(
            time=time,
            active_devices=active_devices,
            segments=segment_states,
            placement=dict(self.architecture.placement),
            grid_shape=self.architecture.grid.shape,
        )
