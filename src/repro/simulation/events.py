"""Timeline events produced by the chip simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class EventKind(enum.Enum):
    """What a timeline event marks: an operation, transport, or storage edge."""

    OPERATION_START = "operation_start"
    OPERATION_END = "operation_end"
    TRANSPORT_START = "transport_start"
    TRANSPORT_END = "transport_end"
    STORAGE_START = "storage_start"
    STORAGE_END = "storage_end"


@dataclass(frozen=True)
class SimulationEvent:
    """One timeline event.

    ``subject`` is the operation id for operation events and the task id for
    transport/storage events; ``location`` is the device id or the channel
    segment (sorted endpoint pair) involved.
    """

    time: int
    kind: EventKind
    subject: str
    location: str

    def __lt__(self, other: "SimulationEvent") -> bool:
        return (self.time, self.kind.value, self.subject) < (other.time, other.kind.value, other.subject)
