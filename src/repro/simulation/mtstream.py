"""Vectorized CPython Mersenne-Twister streams.

The Monte-Carlo engine derives one :class:`random.Random` stream per
trial (see :func:`repro.keys.derive_seed`), which makes sharding trivial
— but seeding a Mersenne Twister costs ~6us per stream in CPython
(``init_by_array`` mixes a 624-word state twice), and at thousands of
trials with only a handful of draws each, stream *setup* dominates the
whole verification run.

This module reproduces CPython's ``_random.Random`` bit-for-bit in numpy
across the *trial axis*: every step of ``init_by_array``, the block
twist, the tempering, and the 53-bit double construction is the same
32-bit arithmetic the C implementation performs, executed for thousands
of seeds at once.  ``uniform_block(seeds, k)`` therefore returns exactly
``[random.Random(int(s)).random() for _ in range(k)]`` per row — a claim
the test suite pins both against ``Random.getstate()`` and against the
draws themselves.

Two cases fall back to per-trial ``random.Random`` (correctness over
speed): seeds below ``2**32``, which CPython seeds with a one-word key
instead of two (probability ~2**-31 for SHA-derived seeds), and empty
batches.
"""

from __future__ import annotations

import hashlib
import random
from typing import List

import numpy as np

#: Mersenne-Twister state size / twist offset (CPython `_randommodule.c`).
_N = 624
_M = 397

_U32 = np.uint32
_MATRIX_A = _U32(0x9908B0DF)
_UPPER = _U32(0x80000000)
_LOWER = _U32(0x7FFFFFFF)


def _init_genrand_base() -> np.ndarray:
    """``init_genrand(19650218)`` — the seed-independent base state."""
    state = np.empty(_N, dtype=np.uint32)
    x = 19650218
    state[0] = x
    for i in range(1, _N):
        x = (1812433253 * (x ^ (x >> 30)) + i) & 0xFFFFFFFF
        state[i] = x
    return state


_GENRAND_BASE = _init_genrand_base()


def derive_seed_block(root_seed: int, prefix: str, lo: int, hi: int) -> np.ndarray:
    """``derive_seed(root_seed, f"{prefix}{i}")`` for ``i`` in ``[lo, hi)``.

    Byte-identical to calling :func:`repro.keys.derive_seed` per index —
    the constant ``"{root_seed}:{prefix}"`` hash prefix is absorbed once
    and only the per-index suffix is hashed per trial.
    """
    base = hashlib.sha256(f"{root_seed}:{prefix}".encode("utf-8"))
    copy = base.copy
    buf = bytearray()
    for i in range(lo, hi):
        h = copy()
        h.update(b"%d" % i)  # == str(i).encode("utf-8") for non-negative i
        buf += h.digest()[:8]
    # Big-endian 8-byte prefixes, top bit dropped — one vectorized pass
    # instead of a per-index int.from_bytes.
    return np.frombuffer(bytes(buf), dtype=">u8").astype(np.uint64) >> np.uint64(1)


def _init_by_array_two_words(seeds: np.ndarray) -> np.ndarray:
    """CPython ``init_by_array`` for two-word keys, across all seeds.

    ``random_seed`` splits an int seed into little-endian 32-bit words;
    for seeds in ``[2**32, 2**64)`` the key is exactly two words.  Each
    of the 1247 mixing steps is sequential in the state index but
    independent across seeds, so it runs as a handful of elementwise
    uint32 operations (wraparound arithmetic, matching C) per step.  The
    state is laid out ``(624, batch)`` so every step touches contiguous
    rows instead of strided columns — the difference between cache-line
    sized accesses and thrashing the whole 10 MB state per step.
    """
    batch = seeds.shape[0]
    # ``+ init_key[j] + j`` folded into one per-word addend.
    key = (
        (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32),
        (seeds >> np.uint64(32)).astype(np.uint32) + _U32(1),
    )
    mt = np.empty((_N, batch), dtype=np.uint32)
    mt[:] = _GENRAND_BASE[:, None]
    scratch = np.empty(batch, dtype=np.uint32)
    # The 1247 steps below are pure dispatch overhead at small batch sizes,
    # so everything loop-invariant — row views, ufunc bindings, uint32
    # scalars (converted per call otherwise) — is hoisted out.
    rows = [mt[i] for i in range(_N)]
    rshift, xor = np.right_shift, np.bitwise_xor
    mul, add, sub = np.multiply, np.add, np.subtract
    thirty = _U32(30)
    mult1 = _U32(1664525)
    mult2 = _U32(1566083941)
    # ``out`` passed positionally — the kwargs path re-parses the dict on
    # every call, measurable at 6235 calls.  ``prev`` is carried across
    # iterations instead of re-indexed: the row written by one step is the
    # next step's input.
    i, j = 1, 0
    prev = rows[0]
    for _ in range(_N):
        row = rows[i]
        rshift(prev, thirty, scratch)
        xor(scratch, prev, scratch)
        mul(scratch, mult1, scratch)
        xor(row, scratch, scratch)
        add(scratch, key[j], row)
        prev = row
        i += 1
        j ^= 1
        if i >= _N:
            rows[0][:] = prev
            i = 1
    addends2 = [_U32(i) for i in range(_N)]
    for _ in range(_N - 1):
        row = rows[i]
        rshift(prev, thirty, scratch)
        xor(scratch, prev, scratch)
        mul(scratch, mult2, scratch)
        xor(row, scratch, scratch)
        sub(scratch, addends2[i], row)
        prev = row
        i += 1
        if i >= _N:
            rows[0][:] = prev
            i = 1
    rows[0][:] = _UPPER
    return mt


def _mix(y: np.ndarray) -> np.ndarray:
    return (y >> _U32(1)) ^ ((y & _U32(1)) * _MATRIX_A)


def _twist(mt: np.ndarray) -> np.ndarray:
    """One generator pass over the 624-word block, vectorized.

    The C loop updates in place, so entries ``227..623`` read words the
    same pass already rewrote; splitting at the 227-word recurrence
    stride keeps every chunk's inputs well-defined.  Layout ``(624, B)``.
    """
    new = np.empty_like(mt)
    y = (mt[0:227] & _UPPER) | (mt[1:228] & _LOWER)
    new[0:227] = mt[397:624] ^ _mix(y)
    y = (mt[227:454] & _UPPER) | (mt[228:455] & _LOWER)
    new[227:454] = new[0:227] ^ _mix(y)
    y = (mt[454:623] & _UPPER) | (mt[455:624] & _LOWER)
    new[454:623] = new[227:396] ^ _mix(y)
    y = (mt[623] & _UPPER) | (new[0] & _LOWER)
    new[623] = new[396] ^ _mix(y)
    return new


def _twist_prefix(mt: np.ndarray, count: int) -> np.ndarray:
    """The first ``count`` (≤ 227) post-twist words, skipping the rest.

    Words ``0..226`` of a twist read only pre-twist state, so when a
    stream needs few draws the other ~400 words never have to exist.
    """
    y = (mt[0:count] & _UPPER) | (mt[1 : count + 1] & _LOWER)
    return mt[397 : 397 + count] ^ _mix(y)


def _temper(y: np.ndarray) -> np.ndarray:
    y = y ^ (y >> _U32(11))
    y = y ^ ((y << _U32(7)) & _U32(0x9D2C5680))
    y = y ^ ((y << _U32(15)) & _U32(0xEFC60000))
    return y ^ (y >> _U32(18))


def state_block(seeds: np.ndarray) -> np.ndarray:
    """The post-seeding MT state per seed — what ``getstate()`` exposes.

    Only valid for seeds in ``[2**32, 2**64)`` (two-word keys); callers
    route smaller seeds through :class:`random.Random` directly.
    """
    return _init_by_array_two_words(
        np.ascontiguousarray(seeds, dtype=np.uint64)
    ).T


def uniform_block(seeds: np.ndarray, draws: int) -> np.ndarray:
    """The first ``draws`` ``random()`` doubles of every seed's stream.

    Row ``t`` equals ``[random.Random(int(seeds[t])).random() for _ in
    range(draws)]`` bit-for-bit: 53-bit doubles assembled from tempered
    32-bit pairs exactly as ``random_random`` does.
    """
    batch = int(seeds.shape[0])
    out = np.empty((batch, draws), dtype=np.float64)
    if batch == 0 or draws == 0:
        return out
    seeds = np.ascontiguousarray(seeds, dtype=np.uint64)
    small = seeds < np.uint64(1 << 32)
    big = np.nonzero(~small)[0]
    if big.size:
        mt = _init_by_array_two_words(seeds[big])
        needed = 2 * draws
        if needed <= 227:
            words = _temper(_twist_prefix(mt, needed))
        else:
            chunks: List[np.ndarray] = []
            while needed > 0:
                mt = _twist(mt)
                take = min(needed, _N)
                chunks.append(_temper(mt[:take]))
                needed -= take
            words = (
                chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)
            )
        a = (words[0::2] >> _U32(5)).astype(np.float64)
        b = (words[1::2] >> _U32(6)).astype(np.float64)
        out[big] = ((a * 67108864.0 + b) * (1.0 / 9007199254740992.0)).T
    for t in np.nonzero(small)[0]:
        rng = random.Random(int(seeds[t]))
        out[t] = [rng.random() for _ in range(draws)]
    return out


def uniform_stream_block(
    root_seed: int, prefix: str, lo: int, hi: int, draws: int
) -> np.ndarray:
    """Draw matrix for trials ``[lo, hi)`` of one derived stream family.

    ``uniform_stream_block(s, "jitter-", lo, hi, k)[t]`` is bit-identical
    to ``random.Random(derive_seed(s, f"jitter-{lo + t}"))`` drawing ``k``
    uniforms — the exact streams the scalar engine consumes.
    """
    return uniform_block(derive_seed_block(root_seed, prefix, lo, hi), draws)


__all__ = [
    "derive_seed_block",
    "state_block",
    "uniform_block",
    "uniform_stream_block",
]
