"""The shared cache daemon: one key-value + claim arbiter for N replicas.

``repro cache-daemon`` runs this tiny asyncio server; every ``repro serve``
replica (or batch run) configured with ``--cache-backend shared`` points
its :class:`~repro.batch.cache_backends.SharedCacheTier` at it.  The
daemon stores *opaque* byte envelopes — it never unpickles a value, so a
buggy or version-skewed client cannot crash it — plus claim records that
extend single-flight semantics across processes:

* ``GET/HEAD/PUT /kv/{key}`` — the key-value store (raw envelope bodies);
  a ``PUT`` also releases any claim on its key, which is how "the solve
  finished" is announced to every waiting replica.
* ``POST /claim/{key}`` — claim arbitration.  The reply is ``present``
  when the value already exists, ``granted`` when the caller may compute
  (with ``takeover: true`` when it displaced an expired lease), or
  ``claimed`` with a ``retry_after_s`` hint while another live owner
  holds the claim.  A claim carries a lease; an owner that neither
  publishes nor releases within it is presumed dead, so a crashed replica
  delays its waiters by at most one lease.
* ``POST /release/{key}`` — voluntary release (owner-checked, idempotent).
* ``GET /stats``, ``GET /metrics`` (Prometheus text exposition),
  ``GET /healthz``, ``POST /clear``, ``POST /shutdown``.

A claim request whose :data:`~repro.obs.trace.TRACE_HEADER` header carries
a span context gets it stored on the claim record; ``claimed`` answers echo
it as ``claimant_trace``, so a replica waiting on a foreign solve can link
its trace to the trace doing the work.  The daemon's counters live in the
process metrics registry (:class:`DaemonStats` is a view over it), which
``GET /metrics`` renders directly.

Everything runs on the event-loop thread — requests are tiny and the store
is in memory, so there are no worker threads and no locks.  Like the
synthesis service, the daemon reuses the hand-rolled HTTP framing of
:mod:`repro.service.http` (one request per connection) and binds loopback
by default: entries are pickles, so only trusted replicas may reach it.
"""

from __future__ import annotations

import asyncio
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.logs import get_logger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.trace import TRACE_HEADER
from repro.service.http import (
    MAX_BODY_BYTES,
    HttpError,
    Request,
    read_request,
    response_bytes,
)

_LOG = get_logger("cachedaemon")

#: Keys are SHA-256 hex digests in practice; the permissive charset also
#: admits test keys, but still rules out path games and header injection.
_KEY_RE = re.compile(r"^[A-Za-z0-9._-]{1,200}$")

#: Ceiling on a single claim's lease; a claimant asking for more is
#: clamped, so one bad client cannot park a key for a day.
MAX_LEASE_S = 3600.0


@dataclass
class CacheDaemonConfig:
    """Everything tunable about one :class:`CacheDaemon` instance."""

    #: Interface to bind; loopback by default — entries are pickles, so the
    #: daemon must only be reachable by trusted replicas.
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (read it back from
    #: :attr:`CacheDaemon.bound_port`).
    port: int = 8643
    #: Bound on stored entries; least-recently-used entries are evicted.
    max_entries: int = 4096
    #: Reject value bodies larger than this (physical artifacts are tens of
    #: KB; the default leaves two orders of magnitude of headroom).
    max_body_bytes: int = MAX_BODY_BYTES
    #: Lease granted when a claim request does not name one.
    default_lease_s: float = 300.0


@dataclass
class _Claim:
    """One live claim record: who owns it and when the lease runs out.

    ``trace`` is the claimant's serialized span context (when it sent one),
    echoed to waiting replicas so their claim-wait spans can reference the
    trace doing the work.
    """

    owner: str
    deadline: float = 0.0
    trace: Optional[str] = None


class DaemonStats:
    """Daemon-side counters: a per-instance view over the metrics registry.

    Events are accumulated in the process-wide
    :func:`repro.obs.metrics.daemon_events_counter`
    (``repro_cachedaemon_events_total{event=...}``), so ``GET /stats`` and
    ``GET /metrics`` always agree.  Each instance snapshots the counter at
    construction and reports *deltas* since then, which preserves the
    historical fresh-counters-per-daemon contract (the ``GET /stats`` JSON
    shape is unchanged) even when several daemons share one test process.
    """

    _EVENTS = (
        "gets",
        "hits",
        "puts",
        "evictions",
        "claims_granted",
        "claims_present",
        "claims_denied",
        "takeovers",
        "releases",
    )

    def __init__(self) -> None:
        self._counter = obs_metrics.daemon_events_counter()
        self._base = {
            event: self._counter.value(event=event) for event in self._EVENTS
        }

    def inc(self, event: str) -> None:
        """Record one daemon event (must be a member of ``_EVENTS``)."""
        if event not in self._EVENTS:
            raise ValueError(f"unknown daemon event {event!r}")
        self._counter.inc(event=event)

    def __getattr__(self, name: str):
        # Dataclass-era reads (daemon.stats.puts, ...) resolve against the
        # registry, minus this instance's construction-time baseline.
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self._EVENTS:
            return int(self._counter.value(event=name) - self._base[name])
        raise AttributeError(name)

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-ready mapping (historical shape)."""
        return {event: getattr(self, event) for event in self._EVENTS}


class CacheDaemon:
    """The daemon object: build once, ``await serve_forever()``.

    Single-use, like :class:`~repro.service.server.SynthesisService`; all
    state mutation happens on the event-loop thread.
    """

    def __init__(self, config: Optional[CacheDaemonConfig] = None) -> None:
        self.config = config or CacheDaemonConfig()
        if self.config.max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.stats = DaemonStats()
        #: Actual bound port once started (differs from config.port for 0).
        self.bound_port: Optional[int] = None
        #: Set once the listener is accepting — lets a hosting thread hand
        #: the bound port to blocking-client code safely.
        self.ready = threading.Event()
        self._store: "OrderedDict[str, bytes]" = OrderedDict()
        self._claims: Dict[str, _Claim] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the listener (non-blocking)."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        self.ready.set()
        _LOG.info(
            "cache daemon listening on %s:%s (max_entries=%s)",
            self.config.host,
            self.bound_port,
            self.config.max_entries,
        )

    async def serve_forever(self) -> None:
        """Run until shutdown is requested, then close the listener."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown_event.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            _LOG.info("cache daemon stopped")

    def request_shutdown(self) -> None:
        """Begin shutdown (callable from handlers or signal hooks)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    def request_shutdown_threadsafe(self) -> None:
        """Like :meth:`request_shutdown`, safe from any thread."""
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self.request_shutdown)

    # -------------------------------------------------------------- requests
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request on one connection, then close it."""
        after_send: Optional[Callable[[], None]] = None
        try:
            try:
                request = await read_request(
                    reader, max_body_bytes=self.config.max_body_bytes
                )
                if request is None:
                    return
                response, after_send = self._route(request)
            except HttpError as exc:
                response = response_bytes(exc.status, {"error": exc.message})
            except Exception as exc:  # noqa: BLE001 - never kill the listener
                response = response_bytes(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:  # noqa: BLE001 - a broken transport is not fatal
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if after_send is not None:
                after_send()

    def _route(
        self, request: Request
    ) -> Tuple[bytes, Optional[Callable[[], None]]]:
        """Dispatch one request; returns the serialized response."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return response_bytes(200, self._healthz_payload()), None
        if path == "/stats" and method == "GET":
            return response_bytes(200, self._stats_payload()), None
        if path == "/metrics" and method == "GET":
            self._update_gauges()
            return (
                response_bytes(
                    200,
                    raw=render_prometheus().encode("utf-8"),
                    content_type=PROMETHEUS_CONTENT_TYPE,
                ),
                None,
            )
        if path == "/shutdown" and method == "POST":
            # The response is written before shutdown fires, so the
            # requesting client always hears the acknowledgement.
            return (
                response_bytes(202, {"status": "shutting down"}),
                self.request_shutdown,
            )
        if path == "/clear" and method == "POST":
            self._store.clear()
            self._claims.clear()
            return response_bytes(200, {"status": "cleared"}), None
        if path.startswith("/kv/"):
            return self._kv_endpoint(method, path[len("/kv/"):], request), None
        if path.startswith("/claim/"):
            return self._claim_endpoint(method, path[len("/claim/"):], request), None
        if path.startswith("/release/"):
            return (
                self._release_endpoint(method, path[len("/release/"):], request),
                None,
            )
        raise HttpError(404, f"no such endpoint: {method} {request.path}")

    def _kv_endpoint(self, method: str, key: str, request: Request) -> bytes:
        """``GET``/``HEAD``/``PUT /kv/{key}``: the raw-envelope store."""
        key = self._check_key(key)
        if method in ("GET", "HEAD"):
            self.stats.inc("gets")
            data = self._store.get(key)
            if data is None:
                return response_bytes(404, {"error": f"no such key: {key}"})
            self.stats.inc("hits")
            self._store.move_to_end(key)
            if method == "HEAD":
                return response_bytes(200, raw=b"", content_type="application/octet-stream")
            return response_bytes(200, raw=data, content_type="application/octet-stream")
        if method == "PUT":
            if not request.body:
                raise HttpError(400, "PUT /kv/{key} requires a non-empty body")
            self.stats.inc("puts")
            self._store[key] = request.body
            self._store.move_to_end(key)
            while len(self._store) > self.config.max_entries:
                self._store.popitem(last=False)
                self.stats.inc("evictions")
            # Publishing the value is the definitive release: every replica
            # polling the claim now sees "present" and just reads.
            self._claims.pop(key, None)
            return response_bytes(200, {"status": "stored"})
        raise HttpError(405, f"{method} not supported on /kv/{{key}}")

    def _claim_endpoint(self, method: str, key: str, request: Request) -> bytes:
        """``POST /claim/{key}``: single-flight claim arbitration."""
        if method != "POST":
            raise HttpError(405, f"{method} not supported on /claim/{{key}}")
        key = self._check_key(key)
        body = request.json()
        if not isinstance(body, dict) or not isinstance(body.get("owner"), str):
            raise HttpError(400, "claim body must be a JSON object with an 'owner'")
        owner = body["owner"]
        lease_s = body.get("lease_s", self.config.default_lease_s)
        if not isinstance(lease_s, (int, float)) or lease_s <= 0:
            lease_s = self.config.default_lease_s
        lease_s = min(float(lease_s), MAX_LEASE_S)

        if key in self._store:
            self.stats.inc("claims_present")
            return response_bytes(200, {"state": "present"})
        now = time.monotonic()
        claim = self._claims.get(key)
        if claim is None or claim.owner == owner:
            takeover = False
        elif claim.deadline <= now:
            # The lease ran out: the claimant is presumed dead, and the
            # caller inherits the claim instead of waiting forever.
            takeover = True
            self.stats.inc("takeovers")
            _LOG.warning(
                "claim on %s taken over from expired owner %s", key[:16], claim.owner
            )
        else:
            self.stats.inc("claims_denied")
            answer = {
                "state": "claimed",
                "retry_after_s": round(claim.deadline - now, 3),
            }
            if claim.trace is not None:
                answer["claimant_trace"] = claim.trace
            return response_bytes(200, answer)
        self._claims[key] = _Claim(
            owner=owner,
            deadline=now + lease_s,
            trace=request.headers.get(TRACE_HEADER) or None,
        )
        self.stats.inc("claims_granted")
        return response_bytes(200, {"state": "granted", "takeover": takeover})

    def _release_endpoint(self, method: str, key: str, request: Request) -> bytes:
        """``POST /release/{key}``: owner-checked voluntary claim release."""
        if method != "POST":
            raise HttpError(405, f"{method} not supported on /release/{{key}}")
        key = self._check_key(key)
        body = request.json()
        owner = body.get("owner") if isinstance(body, dict) else None
        claim = self._claims.get(key)
        if claim is not None and claim.owner == owner:
            del self._claims[key]
            self.stats.inc("releases")
            return response_bytes(200, {"status": "released"})
        return response_bytes(200, {"status": "ignored"})

    def _healthz_payload(self) -> Any:
        """``GET /healthz``: liveness plus store gauges."""
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_at, 3)
            if self._started_at is not None
            else 0.0,
            "entries": len(self._store),
            "claims": len(self._claims),
        }

    def _stats_payload(self) -> Any:
        """``GET /stats``: counters plus store gauges."""
        payload = self.stats.as_dict()
        payload["entries"] = len(self._store)
        payload["claims"] = len(self._claims)
        payload["max_entries"] = self.config.max_entries
        return payload

    def _update_gauges(self) -> None:
        """Refresh the live-object gauges right before a ``/metrics`` scrape."""
        gauge = obs_metrics.daemon_entries_gauge()
        gauge.set(len(self._store), kind="entries")
        gauge.set(len(self._claims), kind="claims")

    @staticmethod
    def _check_key(key: str) -> str:
        """Validate one key path segment; :class:`HttpError` 400 otherwise."""
        if not _KEY_RE.match(key):
            raise HttpError(400, f"malformed cache key: {key[:80]!r}")
        return key
